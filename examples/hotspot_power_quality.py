"""HotSpot end-to-end power-quality study (Figure 15 / Table 5 row 1).

Runs the thermal simulation precisely and with every imprecise unit
enabled, prints the GPUWattch-style component breakdown, the Figure-12
system savings estimate, the quality metrics, and an ASCII temperature map
showing that the "hot spots" are preserved.

Run:  python examples/hotspot_power_quality.py
"""

import numpy as np

from repro import IHWConfig, PowerQualityFramework
from repro.apps import hotspot
from repro.quality import mae, wed

ROWS = COLS = 96
ITERATIONS = 40
SHADES = " .:-=+*#%@"


def ascii_heatmap(grid: np.ndarray, width: int = 48) -> str:
    step = max(1, grid.shape[0] // 24), max(1, grid.shape[1] // width)
    sampled = grid[:: step[0], :: step[1]]
    lo, hi = grid.min(), grid.max()
    scaled = ((sampled - lo) / max(hi - lo, 1e-12) * (len(SHADES) - 1)).astype(int)
    return "\n".join("".join(SHADES[v] for v in row) for row in scaled)


def main():
    framework = PowerQualityFramework(
        run_app=lambda cfg: hotspot.run(cfg, ROWS, COLS, ITERATIONS),
        quality_metric=mae,
    )

    print(f"HotSpot {ROWS}x{COLS}, {ITERATIONS} time steps\n")
    print("--- GPUWattch-style breakdown of the precise run (Figure 2) ---")
    print(framework.reference_breakdown.format_rows())

    evaluation = framework.evaluate(IHWConfig.all_imprecise())
    ref = framework.reference.output
    print("\n--- Quality (Figure 15) ---")
    print(f"temperature range: {ref.min():.2f} .. {ref.max():.2f} K")
    print(f"MAE: {evaluation.quality:.4f} K   WED: {wed(evaluation.output, ref):.4f} K")
    print(f"(paper: MAE 0.05 K with no perceptible degradation)")

    print("\nprecise die map:")
    print(ascii_heatmap(ref))
    print("\nimprecise die map:")
    print(ascii_heatmap(evaluation.output))

    print("\n--- System-level power savings (Figure 12 / Table 5) ---")
    print(evaluation.savings.format_row())
    print("(paper: 32.06% holistic, 91.54% arithmetic)")


if __name__ == "__main__":
    main()
