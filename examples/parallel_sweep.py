"""Parallel configuration sweep with the content-addressed result cache.

Evaluates a family of imprecise-hardware configurations on HotSpot through
:class:`repro.runtime.ExperimentRunner`: once cold (every configuration
computed, results written to the cache) and once warm (every configuration
served from disk).  The same sweep is also exposed on the command line as
``python -m repro sweep hotspot --family units --workers 4``.

Run:  python examples/parallel_sweep.py
"""

import tempfile

from repro import ExperimentRunner, ExperimentSpec, IHWConfig, ResultCache
from repro.quality import pareto_front, sweep_design_points


def build_configs():
    configs = {"precise": IHWConfig.precise()}
    for unit in ("add", "mul", "div", "rcp", "rsqrt", "sqrt", "log2", "fma"):
        configs[unit] = IHWConfig.units(unit)
    for th in (4, 8, 12):
        configs[f"all_th{th}"] = IHWConfig.all_imprecise(adder_threshold=th)
    return configs


def main():
    spec = ExperimentSpec.create(
        "hotspot", metric="mae", rows=48, cols=48, iterations=20
    )
    configs = build_configs()

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        print(f"=== Cold sweep: {len(configs)} configurations ===")
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        results = runner.sweep(spec, configs)
        for name, ev in results.items():
            print(f"{name:>10s}  quality={ev.quality:10.6f}  "
                  f"holistic={ev.savings.system_savings:7.2%}  "
                  f"arith={ev.savings.arithmetic_savings:7.2%}")
        print(runner.stats.summary())
        print()

        print("=== Warm rerun: served from the result cache ===")
        warm = ExperimentRunner(cache=ResultCache(cache_dir))
        warm.sweep(spec, configs)
        print(warm.stats.summary())
        print()

        print("=== Pareto frontier over the cached sweep ===")
        points = sweep_design_points(
            spec, configs,
            runner=ExperimentRunner(max_workers=1, cache=ResultCache(cache_dir)),
        )
        for point in pareto_front(points):
            print(f"{point.name:>10s}  cost={point.cost:.4f}  loss={point.loss:.6f}")


if __name__ == "__main__":
    main()
