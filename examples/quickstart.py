"""Quickstart: the imprecise arithmetic units and the instrumented context.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ArithmeticContext,
    IHWConfig,
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
)
from repro.erroranalysis import characterize_unit


def main():
    print("=== Individual imprecise units ===")
    a, b = np.float32(1.75), np.float32(1.75)
    print(f"precise   1.75 * 1.75 = {float(a) * float(b)}")
    print(f"Table-1   1.75 * 1.75 = {imprecise_multiply(a, b)}   (drops Ma*Mb)")
    print(f"log path  1.75 * 1.75 = {configurable_multiply(a, b, MultiplierConfig('log'))}")
    print(f"full path 1.75 * 1.75 = {configurable_multiply(a, b, MultiplierConfig('full'))}")
    print()
    print(f"threshold adder (TH=8):  1024 + 0.5   = "
          f"{imprecise_add(np.float32(1024.0), np.float32(0.5))} "
          "(exponent gap > TH: small operand vanishes)")
    print(f"linear SFU reciprocal:   1/3          = "
          f"{imprecise_reciprocal(np.float32(3.0)):.6f} (true {1/3:.6f})")
    print(f"linear SFU rsqrt:        1/sqrt(2)    = "
          f"{imprecise_rsqrt(np.float32(2.0)):.6f} (true {2**-0.5:.6f})")

    print("\n=== Instrumented context: kernels run against a configuration ===")
    config = IHWConfig.units("rcp", "add", "sqrt")  # the Figure-17(b) setting
    ctx = ArithmeticContext(config)
    x = ctx.array(np.linspace(0.5, 8.0, 8))
    y = ctx.mul(x, x)          # mul unit disabled -> precise
    z = ctx.rcp(ctx.sqrt(y))   # both imprecise
    print(f"config: {config.describe()}")
    print(f"x:          {np.asarray(x)}")
    print(f"rcp(sqrt(x^2)) = {np.asarray(z)}")
    print(f"performance counters: {ctx.op_counts()}  by class: {ctx.counts_by_class()}")

    print("\n=== Error characterization (Figure 8 style) ===")
    pmf = characterize_unit("ifpmul", n_samples=1 << 15)
    print(pmf.format_rows())


if __name__ == "__main__":
    main()
