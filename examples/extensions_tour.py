"""Tour of the future-work extensions (Chapter 6 made runnable).

1. Measured error-sensitivity analysis replaces the hand-picked tuning
   order.
2. The automatic multiplier tuner finds the cheapest acceptable
   configuration by binary search.
3. The dual-mode multiplier integrates a precise mode and prices its duty
   cycle.
4. Quadratic SFUs add a second accuracy point to the special functions.
5. IHW composes with DVFS for further savings.

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro import IHWConfig, PowerQualityFramework
from repro.apps import raytrace
from repro.core import DualModeMultiplier, MultiplierConfig
from repro.erroranalysis import analyze_sensitivity
from repro.gpu import DVFSPoint, combined_savings
from repro.hardware import dual_mode_fp_multiplier, dw_rsqrt, ihw_rsqrt, quadratic_sfu
from repro.quality import MultiplierAutoTuner, ssim

SIZE = 56


def main():
    framework = PowerQualityFramework(
        run_app=lambda cfg: raytrace.run(cfg, SIZE, SIZE, depth=1),
        quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
    )
    evaluate = framework.quality_evaluator()

    print("=== 1. Measured error sensitivity (replaces the hand ordering) ===")
    report = analyze_sensitivity(
        evaluate, units=("mul", "rsqrt", "add", "sqrt", "rcp")
    )
    print(report.format_rows())
    print(f"disable order for the tuner: {report.ranking()}\n")

    print("=== 2. Automatic multiplier tuning (SSIM >= 0.85) ===")
    tuner = MultiplierAutoTuner(evaluate, lambda q: q >= 0.85, max_truncation=22)
    result = tuner.tune()
    print(f"selected {result.multiplier.name}: quality {result.quality:.3f}, "
          f"{result.power_mw:.2f} mW, {result.evaluations} evaluations\n")

    print("=== 3. Dual-mode multiplier (precise-mode integration) ===")
    dm = DualModeMultiplier(MultiplierConfig("full", 0))
    a = np.full(80, 1.75, dtype=np.float32)
    dm.multiply(a, a)                      # shading work, imprecise
    dm.multiply(a[:20], a[:20], precise=True)  # geometry setup, precise
    hw = dual_mode_fp_multiplier(32).metrics()
    blended = dm.average_power_mw(hw.power_mw, 1.11)
    print(f"duty cycle {dm.duty_cycle:.0%} imprecise -> "
          f"{blended:.2f} mW average (precise-mode unit: {hw.power_mw:.2f} mW)\n")

    print("=== 4. Quadratic SFUs (second accuracy point) ===")
    lin_cfg = IHWConfig.units("rcp", "rsqrt", "sqrt")
    for label, cfg in (("linear", lin_cfg),
                       ("quadratic", lin_cfg.with_sfu_mode("quadratic"))):
        ev = framework.evaluate(cfg)
        print(f"  {label:10s} SSIM={ev.quality:.3f}")
    print(f"  rsqrt unit power: linear {ihw_rsqrt(32).metrics().power_mw:.2f} mW, "
          f"quadratic {quadratic_sfu(32).metrics().power_mw:.2f} mW, "
          f"DWIP {dw_rsqrt(32).metrics().power_mw:.2f} mW\n")

    print("=== 5. IHW x DVFS composition ===")
    ihw = framework.evaluate(
        IHWConfig.units("rcp", "add", "sqrt").with_multiplier(
            "mitchell", config="fp_tr0"
        )
    ).savings.system_savings
    for f in (1.0, 0.9, 0.8):
        print(" ", combined_savings(ihw, DVFSPoint(f)).format_row())


if __name__ == "__main__":
    main()
