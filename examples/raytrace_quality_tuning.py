"""RayTracing iterative quality tuning — the Figure-10 feedback loop.

Starts from the all-imprecise configuration and walks the Figure-10 loop:
evaluate quality (SSIM against the precise render), disable the most
error-sensitive unit when the fidelity constraint fails, repeat.  Ray
tracing is the paper's multiplication-sensitive stress case, so the tuner
must shed the multiplier first — and then demonstrates the paper's Figure-18
recovery: swapping in the full-path Mitchell multiplier instead of turning
multiplication precision back on.

Run:  python examples/raytrace_quality_tuning.py
"""

from repro import IHWConfig, PowerQualityFramework
from repro.apps import raytrace
from repro.quality import QualityTuner, ssim

SIZE = 72
SSIM_CONSTRAINT = 0.90


def main():
    framework = PowerQualityFramework(
        run_app=lambda cfg: raytrace.run(cfg, SIZE, SIZE),
        quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
    )

    print(f"RayTracing {SIZE}x{SIZE}, fidelity constraint: SSIM >= {SSIM_CONSTRAINT}\n")
    print("--- Figure-10 tuning loop from the all-imprecise start ---")
    tuner = QualityTuner(
        framework.quality_evaluator(), lambda q: q >= SSIM_CONSTRAINT
    )
    result = tuner.tune()
    for i, step in enumerate(result.steps):
        status = "meets constraint" if step.satisfied else "fails"
        print(f"  step {i}: SSIM={step.quality:.3f} ({status})  "
              f"config: {step.config.describe()}")
    final = framework.evaluate(result.config)
    print(f"\ntuned configuration: {result.config.describe()}")
    print(final.summary())

    print("\n--- Figure-18: recover multiplication savings with the "
          "full-path Mitchell multiplier ---")
    improved = result.config.with_multiplier("mitchell", config="fp_tr0")
    ev = framework.evaluate(improved)
    print(ev.summary())
    print("(paper: SSIM 0.85 at 13.56% system savings — more power saved "
          "than any Table-1-only configuration that keeps the image intact)")


if __name__ == "__main__":
    main()
