"""Explore the configurable multiplier's power-quality design space (Fig 14).

Sweeps the log path, full path, and intuitive-truncation baseline at single
and double precision, pairing each configuration's measured maximum error
(quasi-Monte-Carlo) with its power reduction from the structural 45 nm
gate-level model — the full Figure-14 Pareto picture in text form.

Run:  python examples/multiplier_design_space.py
"""

import numpy as np

from repro.core import MultiplierConfig
from repro.erroranalysis import characterize_multiplier_config
from repro.hardware import bt_fp_multiplier, dw_fp_multiplier, mitchell_fp_multiplier

N = 1 << 15


def sweep(bits: int):
    dtype = np.float32 if bits == 32 else np.float64
    dw = dw_fp_multiplier(bits).metrics().power_mw
    mantissa = 23 if bits == 32 else 52
    truncations = [0, mantissa // 4, mantissa // 2, int(mantissa * 0.82)]

    print(f"\n=== {bits}-bit design space (DW baseline: {dw:.2f} mW) ===")
    print(f"{'config':10s} {'power mW':>9s} {'reduction':>10s} {'eps_max':>9s} "
          f"{'eps_mean':>9s}")
    for path in ("full", "log"):
        for tr in truncations:
            cfg = MultiplierConfig(path, tr)
            power = mitchell_fp_multiplier(bits, cfg).metrics().power_mw
            pmf = characterize_multiplier_config(cfg, N, dtype=dtype)
            print(f"{cfg.name:10s} {power:9.3f} {dw / power:9.1f}x "
                  f"{pmf.stats.eps_max:9.2%} {pmf.stats.eps_mean:9.2%}")
    for tr in truncations[1:]:
        power = bt_fp_multiplier(bits, tr).metrics().power_mw
        pmf = characterize_multiplier_config(f"bt_{tr}", N, dtype=dtype)
        print(f"{'bt_' + str(tr):10s} {power:9.3f} {dw / power:9.1f}x "
              f"{pmf.stats.eps_max:9.2%} {pmf.stats.eps_mean:9.2%}")


def main():
    print("Accuracy-configurable FP multiplier: power vs maximum error")
    print("(paper anchors: >25x at ~18% for lp_tr19 fp32; 49x for fp64; "
          "intuitive truncation stuck in single digits)")
    sweep(32)
    sweep(64)
    print("\nReading: at any error level the Mitchell paths deliver several")
    print("times the power reduction of intuitive bit truncation — the")
    print("paper's conclusion that conventional truncation is suboptimal.")


if __name__ == "__main__":
    main()
