"""Tests for the synthesis-flow facade."""

import pytest

from repro.hardware import (
    SynthesisReport,
    dw_fp_divider,
    dw_fp_multiplier,
    ihw_fp_adder,
    ihw_fp_multiplier_table1,
    pipeline_stages_required,
    synthesize,
)


class TestPipelineStages:
    def test_fast_unit_single_stage(self):
        assert pipeline_stages_required(ihw_fp_multiplier_table1(32), 1.43) == 1

    def test_slow_unit_pipelined(self):
        assert pipeline_stages_required(dw_fp_divider(32), 1.43) >= 2

    def test_faster_clock_more_stages(self):
        design = dw_fp_multiplier(32)
        assert pipeline_stages_required(design, 0.5) > pipeline_stages_required(
            design, 2.0
        )

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            pipeline_stages_required(dw_fp_multiplier(32), 0.0)


class TestSynthesize:
    def test_timing_met_single_stage(self):
        report = synthesize(dw_fp_multiplier(32), clock_ns=1.43)
        assert report.timing_met
        assert report.pipeline_stages == 1
        assert report.slack_ns > 0

    def test_pipelining_closes_timing(self):
        report = synthesize(dw_fp_divider(32), clock_ns=1.43)
        assert report.timing_met
        assert report.pipeline_stages >= 2
        assert any(name == "pipeline_registers" for name, _ in report.block_power)

    def test_register_overhead_grows_power(self):
        design = dw_fp_divider(32)
        relaxed = synthesize(design, clock_ns=10.0)
        tight = synthesize(design, clock_ns=1.0)
        assert tight.pipeline_stages > relaxed.pipeline_stages
        assert tight.power_mw > relaxed.power_mw

    def test_block_breakdown_sorted_and_complete(self):
        report = synthesize(dw_fp_multiplier(32))
        powers = [mw for _, mw in report.block_power]
        assert powers == sorted(powers, reverse=True)
        assert sum(powers) == pytest.approx(report.power_mw)

    def test_mantissa_multiplier_dominates_dwip(self):
        report = synthesize(dw_fp_multiplier(32))
        top_name, top_mw = report.block_power[0]
        assert top_name == "mantissa_multiplier"
        assert top_mw / report.power_mw > 0.5

    def test_metrics_latency_in_clock_units(self):
        report = synthesize(dw_fp_divider(32), clock_ns=1.43)
        assert report.metrics.latency_ns == pytest.approx(
            report.pipeline_stages * 1.43
        )

    def test_report_renders(self):
        text = synthesize(ihw_fp_adder(32, 8)).format_report()
        assert "MET" in text or "VIOLATED" in text
        assert "mW" in text

    def test_is_dataclass_report(self):
        assert isinstance(synthesize(dw_fp_multiplier(32)), SynthesisReport)
