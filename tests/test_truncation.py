"""Tests for the bit-truncation baseline multiplier (bt_N)."""

import numpy as np
import pytest

from repro.core import round_mantissa, truncated_multiply, truncation_max_error
from repro.core.floatops import BINARY32


class TestRoundMantissa:
    def test_identity_at_full_width(self):
        x = np.array([1.2345678], dtype=np.float32)
        np.testing.assert_array_equal(round_mantissa(x, 23), x)

    def test_rounds_to_nearest(self):
        # One fraction bit kept: representable mantissas are 1.0 and 1.5.
        assert round_mantissa(np.array([1.5], np.float32), 1)[0] == 1.5
        # 1.75 is the tie point and rounds away from zero to 2.0.
        assert round_mantissa(np.array([1.75], np.float32), 1)[0] == 2.0
        # 1.625 is closer to 1.5.
        assert round_mantissa(np.array([1.625], np.float32), 1)[0] == 1.5

    def test_carry_into_exponent(self):
        # 1.9999 rounds up to 2.0 when few bits are kept.
        out = round_mantissa(np.array([1.9999], np.float32), 2)
        assert out[0] == 2.0

    def test_specials_preserved(self):
        x = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        out = round_mantissa(x, 3)
        assert np.isposinf(out[0]) and np.isneginf(out[1]) and np.isnan(out[2])

    def test_rejects_bad_keep(self):
        with pytest.raises(ValueError):
            round_mantissa(np.array([1.0], np.float32), 24)

    def test_error_half_ulp(self):
        rng = np.random.default_rng(40)
        x = rng.uniform(1, 2, 10000).astype(np.float32)
        for keep in (2, 8, 15):
            out = round_mantissa(x, keep, BINARY32).astype(np.float64)
            rel = np.abs(out / x.astype(np.float64) - 1)
            assert rel.max() <= 2.0 ** -(keep + 1) + 1e-9


class TestTruncatedMultiply:
    def test_no_truncation_near_exact(self):
        rng = np.random.default_rng(41)
        a = rng.uniform(-100, 100, 10000).astype(np.float32)
        b = rng.uniform(-100, 100, 10000).astype(np.float32)
        out = truncated_multiply(a, b, 0).astype(np.float64)
        true = a.astype(np.float64) * b.astype(np.float64)
        rel = np.abs((out - true) / true)
        assert rel.max() < 2.0 ** -22  # result truncation only

    @pytest.mark.parametrize("tr", [10, 15, 19, 21])
    def test_analytic_bound(self, tr):
        rng = np.random.default_rng(42)
        a = rng.uniform(-100, 100, 50000).astype(np.float32)
        b = rng.uniform(-100, 100, 50000).astype(np.float32)
        out = truncated_multiply(a, b, tr).astype(np.float64)
        true = a.astype(np.float64) * b.astype(np.float64)
        rel = np.abs((out - true) / true)
        assert rel.max() <= truncation_max_error(tr) + 2.0 ** -22

    def test_bt21_matches_paper_band(self):
        # Figure 14: intuitive truncation of 21 bits gives ~21% max error.
        rng = np.random.default_rng(43)
        a = rng.uniform(0.1, 100, 200000).astype(np.float32)
        b = rng.uniform(0.1, 100, 200000).astype(np.float32)
        out = truncated_multiply(a, b, 21).astype(np.float64)
        true = a.astype(np.float64) * b.astype(np.float64)
        rel = np.abs((out - true) / true)
        assert 0.15 <= rel.max() <= 0.30

    def test_error_grows_with_truncation(self):
        rng = np.random.default_rng(44)
        a = rng.uniform(0.1, 100, 20000).astype(np.float32)
        b = rng.uniform(0.1, 100, 20000).astype(np.float32)
        true = a.astype(np.float64) * b.astype(np.float64)
        means = []
        for tr in (0, 5, 10, 15, 20):
            out = truncated_multiply(a, b, tr).astype(np.float64)
            means.append(np.abs((out - true) / true).mean())
        assert means == sorted(means)

    def test_plain_truncation_mode(self):
        rng = np.random.default_rng(45)
        a = rng.uniform(0.1, 100, 20000).astype(np.float32)
        b = rng.uniform(0.1, 100, 20000).astype(np.float32)
        true = a.astype(np.float64) * b.astype(np.float64)
        out = truncated_multiply(a, b, 21, rounding=False).astype(np.float64)
        # Pure truncation always underestimates the magnitude.
        assert (np.abs(out) <= np.abs(true) + 1e-9).all()

    def test_float64(self):
        rng = np.random.default_rng(46)
        a = rng.uniform(0.1, 100, 10000)
        b = rng.uniform(0.1, 100, 10000)
        out = truncated_multiply(a, b, 44, dtype=np.float64)
        rel = np.abs(out / (a * b) - 1)
        assert rel.max() <= truncation_max_error(44, np.float64) + 1e-9

    def test_rejects_bad_truncation(self):
        with pytest.raises(ValueError):
            truncated_multiply(np.float32(1), np.float32(1), 24)

    def test_specials(self):
        assert np.isnan(truncated_multiply(np.float32(np.nan), np.float32(1.0), 5))
        assert np.isposinf(truncated_multiply(np.float32(np.inf), np.float32(2.0), 5))
        assert truncated_multiply(np.float32(0.0), np.float32(5.0), 5) == 0.0


class TestAnalyticErrorModel:
    def test_monotone_in_truncation(self):
        errs = [truncation_max_error(t) for t in range(0, 23)]
        assert errs == sorted(errs)

    def test_zero_truncation_zero_error(self):
        assert truncation_max_error(0, rounding=False) == 0.0

    def test_rounding_smaller_than_truncating(self):
        assert truncation_max_error(21, rounding=True) < truncation_max_error(
            21, rounding=False
        )
