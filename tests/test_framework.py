"""Tests for the power-quality framework and experiment registry."""

import pytest

from repro.apps import hotspot, raytrace
from repro.core import IHWConfig
from repro.framework import (
    EXPERIMENTS,
    PowerQualityFramework,
    RAY_CONFIGS,
    table5_configurations,
)
from repro.quality import QualityTuner, mae, ssim


def hotspot_framework():
    return PowerQualityFramework(
        run_app=lambda cfg: hotspot.run(cfg, 32, 32, 20),
        quality_metric=mae,
    )


class TestPowerQualityFramework:
    def test_reference_cached(self):
        fw = hotspot_framework()
        assert fw.reference is fw.reference

    def test_evaluate_all_imprecise(self):
        fw = hotspot_framework()
        ev = fw.evaluate(IHWConfig.all_imprecise())
        assert ev.quality < 1.0  # MAE in Kelvin stays small
        assert 0.0 < ev.savings.system_savings < 0.5
        assert ev.savings.arithmetic_savings > 0.8

    def test_precise_config_zero_savings(self):
        fw = hotspot_framework()
        ev = fw.evaluate(IHWConfig.precise())
        assert ev.quality == 0.0
        assert ev.savings.system_savings == 0.0

    def test_breakdown_in_figure2_band(self):
        fw = hotspot_framework()
        assert 0.2 <= fw.reference_breakdown.arithmetic_share <= 0.45

    def test_sweep(self):
        fw = hotspot_framework()
        results = fw.sweep(
            {"all": IHWConfig.all_imprecise(), "add": IHWConfig.units("add")}
        )
        assert set(results) == {"all", "add"}
        assert (
            results["all"].savings.system_savings
            > results["add"].savings.system_savings
        )

    def test_summary_renders(self):
        fw = hotspot_framework()
        text = fw.evaluate(IHWConfig.units("add")).summary()
        assert "savings" in text

    def test_integrates_with_tuner(self):
        # The Figure-10 loop: ray tracing tuned to an SSIM constraint.
        fw = PowerQualityFramework(
            run_app=lambda cfg: raytrace.run(cfg, 32, 32, depth=1),
            quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
        )
        tuner = QualityTuner(fw.quality_evaluator(), lambda q: q >= 0.9)
        result = tuner.tune()
        assert result.satisfied
        assert not result.config.is_enabled("mul")  # mul must go first


class TestExperimentRegistry:
    def test_every_table_and_figure_present(self):
        expected = {
            "fig1", "fig2", "table1", "fig8", "fig9", "fig10-11", "table2",
            "table3", "table4", "fig14", "fig15", "fig16", "fig17", "fig18",
            "table5", "table6", "fig19", "fig20", "fig21a", "fig21b", "table7",
        }
        assert expected == set(EXPERIMENTS)

    def test_experiments_carry_bench_paths(self):
        for exp in EXPERIMENTS.values():
            assert exp.bench.startswith("benchmarks/")
            assert exp.modules

    def test_table5_configurations(self):
        cfgs = table5_configurations()
        assert set(cfgs) == {
            "hotspot",
            "srad",
            "ray_rcp_add_sqrt",
            "ray_rcp_add_sqrt_rsqrt",
            "ray_rcp_add_sqrt_fpmul_fp",
        }
        assert cfgs["hotspot"].is_enabled("mul")
        assert not cfgs["ray_rcp_add_sqrt"].is_enabled("mul")

    def test_ray_configs_ladder(self):
        assert RAY_CONFIGS["ray_rcp_add_sqrt_fpmul_fp"].multiplier_mode == "mitchell"
        with pytest.raises(KeyError):
            RAY_CONFIGS["ray_everything"]
