"""Tests for the application-level quality metrics and the tuning loop."""

import numpy as np
import pytest

from repro.core import IHWConfig
from repro.quality import (
    QualityTuner,
    error_percent,
    mae,
    mse,
    pratt_fom,
    psnr,
    rmse,
    ssim,
    wed,
    word_accuracy,
)


class TestScalarMetrics:
    def test_mae(self):
        assert mae([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_mse_and_rmse(self):
        assert mse([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.0)
        assert rmse([0.0, 4.0], [0.0, 0.0]) == pytest.approx(np.sqrt(8.0))

    def test_wed(self):
        assert wed([1.0, 5.0], [1.0, 2.0]) == pytest.approx(3.0)

    def test_identical_inputs_zero_error(self):
        x = np.random.default_rng(0).standard_normal(100)
        assert mae(x, x) == 0.0
        assert wed(x, x) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])

    def test_psnr(self):
        ref = np.zeros((8, 8))
        noisy = ref.copy()
        noisy[0, 0] = 0.1
        assert psnr(noisy, ref, data_range=1.0) > 30
        assert psnr(ref, ref, data_range=1.0) == np.inf

    def test_error_percent(self):
        assert error_percent(101.0, 100.0) == pytest.approx(1.0)
        assert error_percent(-99.0, -100.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            error_percent(1.0, 0.0)


class TestSSIM:
    def test_identical_images(self):
        img = np.random.default_rng(1).random((32, 32))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self):
        rng = np.random.default_rng(2)
        img = rng.random((32, 32))
        light = np.clip(img + rng.normal(0, 0.02, img.shape), 0, 1)
        heavy = np.clip(img + rng.normal(0, 0.3, img.shape), 0, 1)
        assert ssim(heavy, img) < ssim(light, img) < 1.0

    def test_structural_destruction(self):
        rng = np.random.default_rng(3)
        img = np.zeros((32, 32))
        img[8:24, 8:24] = 1.0
        scrambled = rng.permutation(img.ravel()).reshape(img.shape)
        assert ssim(scrambled, img, data_range=1.0) < 0.3

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ssim(np.zeros(10), np.zeros(10))

    def test_rejects_bad_window(self):
        img = np.zeros((16, 16))
        with pytest.raises(ValueError):
            ssim(img, img, window=20)

    def test_symmetricish_range(self):
        rng = np.random.default_rng(4)
        a = rng.random((24, 24))
        b = rng.random((24, 24))
        v = ssim(a, b, data_range=1.0)
        assert -1.0 <= v <= 1.0


class TestPrattFOM:
    def test_perfect_match(self):
        edges = np.zeros((16, 16), dtype=bool)
        edges[8, 2:14] = True
        assert pratt_fom(edges, edges) == pytest.approx(1.0)

    def test_displaced_edges_penalized(self):
        ideal = np.zeros((16, 16), dtype=bool)
        ideal[8, 2:14] = True
        near = np.zeros_like(ideal)
        near[9, 2:14] = True  # one pixel off
        far = np.zeros_like(ideal)
        far[14, 2:14] = True
        assert pratt_fom(far, ideal) < pratt_fom(near, ideal) < 1.0

    def test_empty_detected(self):
        ideal = np.zeros((8, 8), dtype=bool)
        ideal[4, 4] = True
        assert pratt_fom(np.zeros_like(ideal), ideal) == 0.0

    def test_empty_ideal_rejected(self):
        with pytest.raises(ValueError):
            pratt_fom(np.ones((4, 4), dtype=bool), np.zeros((4, 4), dtype=bool))

    def test_spurious_edges_penalized(self):
        ideal = np.zeros((16, 16), dtype=bool)
        ideal[8, 2:14] = True
        noisy = ideal.copy()
        noisy[2, 2] = noisy[13, 13] = True
        assert pratt_fom(noisy, ideal) < 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pratt_fom(np.zeros((4, 4), dtype=bool), np.zeros((5, 5), dtype=bool))


class TestWordAccuracy:
    def test_all_correct(self):
        assert word_accuracy([1, 2, 3], [1, 2, 3]) == (3, 3)

    def test_partial(self):
        assert word_accuracy([1, 9, 3], [1, 2, 3]) == (2, 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            word_accuracy([1], [1, 2])


class TestQualityTuner:
    def _fake_app(self):
        """Quality improves as units are disabled; mul hurts the most."""

        def evaluate(config: IHWConfig) -> float:
            penalty = {"mul": 0.5, "rsqrt": 0.2, "sqrt": 0.05, "add": 0.02}
            q = 1.0
            for unit, cost in penalty.items():
                if config.is_enabled(unit):
                    q -= cost
            return q

        return evaluate

    def test_tunes_until_constraint_met(self):
        tuner = QualityTuner(self._fake_app(), lambda q: q >= 0.9)
        result = tuner.tune()
        assert result.satisfied
        assert result.quality >= 0.9
        assert not result.config.is_enabled("mul")  # first unit disabled

    def test_keeps_all_units_if_already_good(self):
        tuner = QualityTuner(self._fake_app(), lambda q: q >= 0.1)
        result = tuner.tune()
        assert result.satisfied
        assert result.iterations == 1
        assert result.config.is_enabled("mul")

    def test_sensitivity_order_respected(self):
        order = ("rsqrt", "mul", "add", "fma", "div", "log2", "sqrt", "rcp")
        tuner = QualityTuner(self._fake_app(), lambda q: q >= 0.45, order)
        result = tuner.tune()
        # Disabling rsqrt first (+0.2) reaches 0.43 -> not enough; then mul.
        assert not result.config.is_enabled("rsqrt")

    def test_gives_up_at_precise(self):
        tuner = QualityTuner(lambda cfg: 0.0, lambda q: q > 1.0)
        result = tuner.tune()
        assert not result.satisfied
        assert not result.config.enabled  # fell back to fully precise

    def test_records_steps(self):
        tuner = QualityTuner(self._fake_app(), lambda q: q >= 0.9)
        result = tuner.tune()
        assert len(result.steps) == result.iterations
        assert result.steps[-1].satisfied

    def test_rejects_unknown_sensitivity_units(self):
        with pytest.raises(ValueError):
            QualityTuner(self._fake_app(), lambda q: True, ("warp",))

    def test_max_iterations_cap(self):
        calls = []

        def evaluate(cfg):
            calls.append(cfg)
            return 0.0

        tuner = QualityTuner(evaluate, lambda q: False)
        tuner.tune(max_iterations=3)
        assert len(calls) == 3


class TestPareto:
    def _points(self):
        from repro.quality import DesignPoint

        return [
            DesignPoint("a", cost=1.0, loss=0.20),
            DesignPoint("b", cost=2.0, loss=0.10),
            DesignPoint("c", cost=4.0, loss=0.05),
            DesignPoint("dominated", cost=3.0, loss=0.20),
        ]

    def test_front_excludes_dominated(self):
        from repro.quality import pareto_front

        front = pareto_front(self._points())
        assert [p.name for p in front] == ["a", "b", "c"]

    def test_dominates(self):
        from repro.quality import DesignPoint, dominates

        a = DesignPoint("a", 1.0, 0.1)
        b = DesignPoint("b", 2.0, 0.2)
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, a)  # equal points do not dominate

    def test_tolerance(self):
        from repro.quality import DesignPoint, dominates

        a = DesignPoint("a", 1.0, 0.101)
        b = DesignPoint("b", 2.0, 0.100)
        assert not dominates(a, b)
        assert dominates(a, b, tolerance=0.01)

    def test_family_dominates(self):
        from repro.quality import DesignPoint, family_dominates

        mitchell = [DesignPoint("lp", 0.3, 0.18), DesignPoint("fp", 1.1, 0.02)]
        bt = [DesignPoint("bt21", 2.2, 0.23), DesignPoint("bt19", 2.5, 0.06)]
        assert family_dominates(mitchell, bt)
        assert not family_dominates(bt, mitchell)

    def test_family_validation(self):
        from repro.quality import family_dominates

        with pytest.raises(ValueError):
            family_dominates([], [])

    def test_point_validation(self):
        from repro.quality import DesignPoint

        with pytest.raises(ValueError):
            DesignPoint("bad", -1.0, 0.0)

    def test_empty_front(self):
        from repro.quality import pareto_front

        assert pareto_front([]) == []

    def test_figure14_families_pareto(self):
        """The real Figure-14 claim with measured data."""
        from repro.core import MultiplierConfig
        from repro.erroranalysis import characterize_multiplier_config
        from repro.hardware import bt_fp_multiplier, mitchell_fp_multiplier
        from repro.quality import DesignPoint, family_dominates

        def mitchell_point(path, tr):
            power = mitchell_fp_multiplier(32, MultiplierConfig(path, tr)).metrics().power_mw
            eps = characterize_multiplier_config(
                MultiplierConfig(path, tr), 1 << 13
            ).stats.eps_max
            return DesignPoint(f"{path}_{tr}", power, eps)

        def bt_point(tr):
            power = bt_fp_multiplier(32, tr).metrics().power_mw
            eps = characterize_multiplier_config(f"bt_{tr}", 1 << 13).stats.eps_max
            return DesignPoint(f"bt_{tr}", power, eps)

        mitchell = [mitchell_point("full", t) for t in (0, 10, 15)] + [
            mitchell_point("log", t) for t in (0, 15, 19)
        ]
        # The aggressive-saving regime (the Figure-14 claim): every deep
        # truncation point is dominated by a Mitchell configuration.
        bt_deep = [bt_point(t) for t in (19, 21)]
        assert family_dominates(mitchell, bt_deep, tolerance=1e-6)
        # Shallow truncation (bt_15, error ~0.3%) is the one regime the
        # Mitchell paths cannot reach — their floor is the 2.04% full path.
        shallow = bt_point(15)
        assert not any(p.loss <= shallow.loss for p in mitchell)
