"""Tests for the command line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for exp_id in ("fig2", "table5", "fig14", "table7"):
            assert exp_id in text

    def test_mentions_bench_paths(self):
        _, text = run_cli("list")
        assert "benchmarks/" in text


class TestInfo:
    def test_shows_machine_and_library(self):
        code, text = run_cli("info")
        assert code == 0
        assert "GFLOPS" in text
        assert "mul" in text and "P ratio" in text


class TestCharacterize:
    def test_unit_by_name(self):
        code, text = run_cli("characterize", "ifpmul", "--samples", "4096")
        assert code == 0
        assert "eps_max" in text
        assert "error rate" in text

    def test_multiplier_config(self):
        code, text = run_cli("characterize", "fp_tr0", "--samples", "4096")
        assert code == 0
        assert "eps_max" in text

    def test_bt_config(self):
        code, text = run_cli("characterize", "bt_19", "--samples", "4096")
        assert code == 0

    def test_double_precision(self):
        code, text = run_cli(
            "characterize", "lp_tr44", "--samples", "4096", "--double"
        )
        assert code == 0

    def test_unknown_unit_exit_code(self):
        code, _ = run_cli("characterize", "bogus_unit", "--samples", "256")
        assert code == 2


class TestEvaluate:
    def test_hotspot_all(self):
        code, text = run_cli(
            "evaluate", "hotspot", "--rows", "32", "--iterations", "10"
        )
        assert code == 0
        assert "holistic" in text
        assert "MAE" in text

    def test_raytracing_with_multiplier(self):
        code, text = run_cli(
            "evaluate", "raytracing", "--config", "rcp,add,sqrt",
            "--multiplier", "fp_tr0", "--size", "32",
        )
        assert code == 0
        assert "SSIM" in text
        assert "fp_tr0" in text

    def test_precise_config(self):
        code, text = run_cli(
            "evaluate", "hotspot", "--config", "precise", "--rows", "16",
            "--iterations", "5",
        )
        assert code == 0
        assert "precise" in text

    def test_bt_multiplier(self):
        code, text = run_cli(
            "evaluate", "cp", "--config", "precise", "--multiplier", "bt_19",
            "--size", "16",
        )
        assert code == 0
        assert "bt_19" in text

    def test_quadratic_sfu_mode(self):
        code, text = run_cli(
            "evaluate", "raytracing", "--config", "rsqrt",
            "--sfu-mode", "quadratic", "--size", "32",
        )
        assert code == 0
        assert "quadratic" in text

    def test_unknown_app(self):
        code, _ = run_cli("evaluate", "doom", "--rows", "16")
        assert code == 2

    def test_bad_config_units(self):
        code, _ = run_cli("evaluate", "hotspot", "--config", "warp,drive")
        assert code == 2


class TestSweepMultiplier:
    def test_fp32_sweep(self):
        code, text = run_cli("sweep-multiplier", "--samples", "2048")
        assert code == 0
        assert "fp_tr0" in text and "lp_tr" in text and "bt_" in text

    def test_fp64_sweep(self):
        code, text = run_cli("sweep-multiplier", "--bits", "64", "--samples", "2048")
        assert code == 0
        assert "lp_tr" in text


class TestSensitivity:
    def test_cp_sensitivity(self):
        code, text = run_cli("sensitivity", "cp", "--size", "24")
        assert code == 0
        assert "disable order" in text
        # CP is rsqrt/mul dominated; one of them must rank first.
        first = text.rsplit("disable order:", 1)[1].split(",")[0].strip()
        assert first in ("mul", "rsqrt")

    def test_unknown_app(self):
        code, _ = run_cli("sensitivity", "doom")
        assert code == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepApp:
    def test_sphinx_sweep(self):
        code, text = run_cli("sweep-app", "sphinx", "--configs", "fp_tr44,bt_49")
        assert code == 0
        assert "words recognized=" in text
        assert "fp_tr44" in text and "bt_49" in text

    def test_gromacs_sweep_mentions_spec_line(self):
        code, text = run_cli("sweep-app", "gromacs", "--configs", "fp_tr40")
        assert code == 0
        assert "1.25% line" in text

    def test_art_sweep(self):
        code, text = run_cli("sweep-app", "art", "--configs", "fp_tr44")
        assert code == 0
        assert "vigilance=" in text

    def test_unknown_app(self):
        code, _ = run_cli("sweep-app", "doom")
        assert code == 2

    def test_bad_config(self):
        code, _ = run_cli("sweep-app", "art", "--configs", "zz_tr1")
        assert code == 2


class TestVerifyCommand:
    def test_fp32_verify_passes(self):
        code, text = run_cli("verify", "--samples", "200")
        assert code == 0
        assert "OK" in text and "FAIL" not in text

    def test_fp64_verify_within_tolerance(self):
        code, text = run_cli("verify", "--bits", "64", "--samples", "100")
        assert code == 0


class TestStallsCommand:
    def test_hotspot_stalls(self):
        code, text = run_cli("stalls", "hotspot", "--rows", "24",
                             "--iterations", "5")
        assert code == 0
        assert "issued" in text and "dependency" in text

    def test_unknown_app(self):
        code, _ = run_cli("stalls", "doom")
        assert code == 2


class TestSweep:
    def test_units_family_with_cache(self, tmp_path):
        args = (
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--cache-dir", str(tmp_path),
        )
        code, text = run_cli(*args)
        assert code == 0
        assert "precise" in text and "all" in text
        assert "hit rate 0%" in text
        # Same sweep again: everything served from the cache.
        code, text = run_cli(*args)
        assert code == 0
        assert "hit rate 100%" in text

    def test_explicit_configs_no_cache(self):
        code, text = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--configs", "precise|all|add,mul",
        )
        assert code == 0
        assert "add,mul" in text

    def test_json_output(self, tmp_path):
        out_file = tmp_path / "sweep.json"
        code, _ = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--json", str(out_file),
        )
        assert code == 0
        import json

        payload = json.loads(out_file.read_text())
        assert payload["spec"]["app"] == "hotspot"
        assert "precise" in payload["results"]
        assert payload["stats"]["n_tasks"] == len(payload["results"])

    def test_unknown_config_spec_exit_code(self):
        code, _ = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--configs", "bogus_cfg",
        )
        assert code == 2

    def test_resume_requires_the_cache(self):
        code, _ = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--resume",
        )
        assert code == 2

    def test_interrupted_sweep_resumes(self, tmp_path, monkeypatch):
        from repro import faults

        args = (
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--cache-dir", str(tmp_path),
            "--checkpoint-every", "1",
        )
        # First run: 'mul' fails unrecoverably after some configs have
        # already been computed and checkpointed.
        with faults.injection("transient:match=mul,times=99"):
            code, _ = run_cli(*args, "--retries", "0")
        assert code == 1
        assert list(tmp_path.glob("manifests/*.json"))

        # Resume: the completed configs come from the cache, the sweep
        # finishes, and the reliability tail reports the skips.
        code, text = run_cli(*args, "--resume")
        assert code == 0
        assert "resumed past" in text

    def test_stats_omits_telemetry_section_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        code, text = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--stats",
        )
        assert code == 0
        assert "runner stats:" in text
        assert "telemetry_flush_path" not in text

    def test_stats_includes_telemetry_section_when_enabled(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "metrics")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "tel"))
        out_file = tmp_path / "sweep.json"
        code, text = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--stats", "--json", str(out_file),
        )
        assert code == 0
        assert "telemetry_mode" in text and "metrics" in text
        assert str(tmp_path / "tel") in text
        import json

        payload = json.loads(out_file.read_text())
        assert payload["telemetry"]["mode"] == "metrics"
        assert payload["telemetry"]["flush_path"] == str(tmp_path / "tel")

    def test_json_payload_omits_telemetry_when_disabled(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        out_file = tmp_path / "sweep.json"
        code, _ = run_cli(
            "sweep", "hotspot", "--rows", "16", "--iterations", "4",
            "--workers", "1", "--no-cache", "--json", str(out_file),
        )
        assert code == 0
        import json

        assert "telemetry" not in json.loads(out_file.read_text())


class TestLint:
    def test_lint_is_a_viewer_command(self, monkeypatch, tmp_path):
        # `repro lint` must not flush telemetry even when telemetry is on.
        monkeypatch.setenv("REPRO_TELEMETRY", "metrics")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "tel"))
        code, text = run_cli(
            "lint", "--baseline", str(tmp_path / "absent.json")
        )
        assert code == 0
        assert "telemetry" not in text
        assert not (tmp_path / "tel").exists()

    def test_lint_help_registered(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("lint", "--help")
        assert excinfo.value.code == 0
