"""Unit tests for IEEE-754 bit-level utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BINARY32,
    BINARY64,
    compose,
    decompose,
    flush_subnormals,
    format_for_dtype,
    is_special,
    truncate_mantissa,
)

FORMATS = [BINARY32, BINARY64]


class TestFloatFormat:
    def test_binary32_constants(self):
        assert BINARY32.bias == 127
        assert BINARY32.mantissa_bits == 23
        assert BINARY32.exponent_mask == 0xFF
        assert BINARY32.implicit_one == 1 << 23
        assert BINARY32.sign_shift == 31
        assert BINARY32.max_exponent == 254

    def test_binary64_constants(self):
        assert BINARY64.bias == 1023
        assert BINARY64.mantissa_bits == 52
        assert BINARY64.exponent_mask == 0x7FF
        assert BINARY64.sign_shift == 63

    def test_format_for_dtype(self):
        assert format_for_dtype(np.float32) is BINARY32
        assert format_for_dtype(np.float64) is BINARY64
        assert format_for_dtype("float32") is BINARY32

    def test_format_for_dtype_rejects_others(self):
        with pytest.raises(TypeError):
            format_for_dtype(np.int32)
        with pytest.raises(TypeError):
            format_for_dtype(np.complex64)


class TestDecomposeCompose:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_one(self, fmt):
        sign, exp, mant = decompose(np.array(1.0, fmt.dtype), fmt)
        assert sign == 0
        assert exp == fmt.bias
        assert mant == 0

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_negative_half(self, fmt):
        sign, exp, mant = decompose(np.array(-0.5, fmt.dtype), fmt)
        assert sign == 1
        assert exp == fmt.bias - 1
        assert mant == 0

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_mantissa_of_1_5(self, fmt):
        _, _, mant = decompose(np.array(1.5, fmt.dtype), fmt)
        assert mant == fmt.implicit_one >> 1

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_roundtrip_array(self, fmt):
        rng = np.random.default_rng(42)
        x = rng.standard_normal(1000).astype(fmt.dtype) * 1e3
        out = compose(*decompose(x, fmt), fmt)
        np.testing.assert_array_equal(out, x)

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_roundtrip_specials(self, fmt):
        x = np.array([np.inf, -np.inf, 0.0, -0.0], dtype=fmt.dtype)
        out = compose(*decompose(x, fmt), fmt)
        np.testing.assert_array_equal(out.view(fmt.uint), x.view(fmt.uint))

    @given(st.floats(width=32, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_hypothesis_f32(self, value):
        x = np.float32(value)
        out = compose(*decompose(x, BINARY32), BINARY32)
        assert out.view(np.uint32) == np.float32(x).view(np.uint32)

    @given(st.floats(allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_hypothesis_f64(self, value):
        x = np.float64(value)
        out = compose(*decompose(x, BINARY64), BINARY64)
        assert out.view(np.uint64) == np.float64(x).view(np.uint64)


class TestFlushSubnormals:
    def test_positive_subnormal_to_zero(self):
        x = np.array([1e-45, 1.0], dtype=np.float32)
        out = flush_subnormals(x)
        assert out[0] == 0.0 and not np.signbit(out[0])
        assert out[1] == 1.0

    def test_negative_subnormal_to_negative_zero(self):
        x = np.array([-1e-45], dtype=np.float32)
        out = flush_subnormals(x)
        assert out[0] == 0.0 and np.signbit(out[0])

    def test_normals_unchanged(self):
        x = np.array([1.5, -2.25, 1e38, np.finfo(np.float32).tiny], dtype=np.float32)
        np.testing.assert_array_equal(flush_subnormals(x), x)

    def test_specials_unchanged(self):
        x = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        out = flush_subnormals(x)
        assert np.isinf(out[0]) and np.isinf(out[1]) and np.isnan(out[2])

    def test_float64_subnormal(self):
        x = np.array([5e-324, 1.0])
        out = flush_subnormals(x)
        assert out[0] == 0.0 and out[1] == 1.0

    def test_no_copy_when_clean(self):
        x = np.array([1.0, 2.0], dtype=np.float32)
        assert flush_subnormals(x) is x


class TestTruncateMantissa:
    def test_identity_at_full_width(self):
        x = np.array([1.2345678], dtype=np.float32)
        np.testing.assert_array_equal(truncate_mantissa(x, 23), x)

    def test_keep_zero_forces_power_of_two(self):
        x = np.array([1.999, 3.7, -5.5], dtype=np.float32)
        out = truncate_mantissa(x, 0)
        np.testing.assert_array_equal(out, [1.0, 2.0, -4.0])

    def test_truncation_toward_zero(self):
        x = np.array([1.75], dtype=np.float32)
        out = truncate_mantissa(x, 1)  # keep one fraction bit
        assert out[0] == 1.5

    def test_magnitude_never_increases(self):
        rng = np.random.default_rng(7)
        x = (rng.standard_normal(500) * 100).astype(np.float32)
        for keep in (0, 5, 12, 20):
            out = truncate_mantissa(x, keep)
            assert (np.abs(out) <= np.abs(x)).all()

    def test_specials_preserved(self):
        x = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        out = truncate_mantissa(x, 3)
        assert np.isposinf(out[0]) and np.isneginf(out[1]) and np.isnan(out[2])

    def test_rejects_out_of_range(self):
        x = np.array([1.0], dtype=np.float32)
        with pytest.raises(ValueError):
            truncate_mantissa(x, 24)
        with pytest.raises(ValueError):
            truncate_mantissa(x, -1)

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False), st.integers(0, 23))
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bound(self, value, keep):
        x = np.float32(value)
        if x == 0 or not np.isfinite(x):
            return
        out = truncate_mantissa(np.array([x]), keep)[0]
        if x != 0 and np.abs(x) >= np.finfo(np.float32).tiny:
            rel = abs((float(out) - float(x)) / float(x))
            assert rel < 2.0 ** -keep if keep else rel < 1.0


class TestIsSpecial:
    def test_detects_inf_and_nan(self):
        x = np.array([1.0, np.inf, -np.inf, np.nan, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(is_special(x), [False, True, True, True, False])

    def test_float64(self):
        x = np.array([np.nan, 1e308])
        np.testing.assert_array_equal(is_special(x), [True, False])
