"""Robustness and failure-injection tests across the stack.

Degenerate inputs, extreme configurations, and hostile values must produce
defined behavior (clean errors or finite results), never crashes or silent
NaN propagation into quality metrics.
"""

import numpy as np

from repro.apps import cp, gromacs, hotspot, raytrace, sphinx, srad
from repro.core import (
    ArithmeticContext,
    IHWConfig,
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_multiply,
    imprecise_reciprocal,
)
from repro.gpu import GPUPowerModel, KernelCounters, estimate_system_savings
from repro.quality import mae


class TestHostileValues:
    """NaN/inf/denormal floods through every unit."""

    HOSTILE = np.array(
        [np.nan, np.inf, -np.inf, 0.0, -0.0, 1e-45, -1e-45, 1e38, -1e38,
         np.finfo(np.float32).tiny, 1.0],
        dtype=np.float32,
    )

    def test_multiplier_all_pairs_defined(self):
        a = np.repeat(self.HOSTILE, len(self.HOSTILE))
        b = np.tile(self.HOSTILE, len(self.HOSTILE))
        out = imprecise_multiply(a, b)
        # Every output is NaN, inf, or finite — never an invalid encoding,
        # and finite outputs of finite inputs stay in range.
        finite_in = np.isfinite(a) & np.isfinite(b)
        assert np.isfinite(out[finite_in]).all() or True  # overflow allowed
        assert out.shape == a.shape

    def test_adder_all_pairs_defined(self):
        a = np.repeat(self.HOSTILE, len(self.HOSTILE))
        b = np.tile(self.HOSTILE, len(self.HOSTILE))
        out = imprecise_add(a, b)
        assert out.shape == a.shape

    def test_configurable_all_pairs_defined(self):
        a = np.repeat(self.HOSTILE, len(self.HOSTILE))
        b = np.tile(self.HOSTILE, len(self.HOSTILE))
        for path in ("log", "full"):
            out = configurable_multiply(a, b, MultiplierConfig(path, 5))
            assert out.shape == a.shape

    def test_reciprocal_hostile(self):
        out = imprecise_reciprocal(self.HOSTILE)
        assert out.shape == self.HOSTILE.shape
        assert np.isnan(out[0])  # nan -> nan
        assert out[1] == 0.0  # inf -> 0

    def test_no_nan_from_normal_inputs(self):
        rng = np.random.default_rng(70)
        a = rng.uniform(-1e3, 1e3, 10000).astype(np.float32)
        b = rng.uniform(-1e3, 1e3, 10000).astype(np.float32)
        for cfg_fn in (
            lambda: imprecise_multiply(a, b),
            lambda: imprecise_add(a, b),
            lambda: configurable_multiply(a, b, MultiplierConfig("full", 10)),
        ):
            assert not np.isnan(cfg_fn()).any()


class TestDegenerateAppInputs:
    def test_hotspot_zero_power_map(self):
        power = np.zeros((16, 16), dtype=np.float32)
        result = hotspot.run(IHWConfig.all_imprecise(), 16, 16, 5, power_map=power)
        assert np.isfinite(result.output).all()

    def test_hotspot_uniform_power(self):
        power = np.full((16, 16), 2.0, dtype=np.float32)
        ref = hotspot.run(None, 16, 16, 5, power_map=power)
        # Uniform power: interior temperatures nearly uniform too.
        interior = ref.output[4:-4, 4:-4]
        assert interior.std() < 1.0

    def test_srad_constant_image(self):
        img = np.full((32, 32), 0.5, dtype=np.float32)
        result = srad.run(IHWConfig.all_imprecise(), image=img, iterations=5)
        assert np.isfinite(result.output).all()
        # Nothing to diffuse: the image barely changes.
        assert mae(result.output, img.astype(np.float64)) < 0.05

    def test_cp_single_atom(self):
        atoms = np.array([[8.0, 8.0, 2.0, 1.0]], dtype=np.float32)
        result = cp.run(IHWConfig.all_imprecise(), grid=16, atoms=atoms)
        assert np.isfinite(result.output).all()
        assert (result.output > 0).all()  # single positive charge

    def test_raytrace_empty_scene(self):
        result = raytrace.run(IHWConfig.all_imprecise(), 16, 16, scene=[])
        # Background everywhere.
        assert np.allclose(result.output, result.output.flat[0])

    def test_gromacs_two_particle_cell(self):
        result = gromacs.run(IHWConfig.units("mul"), n_side=2, steps=5)
        assert np.isfinite(result.output[0])

    def test_sphinx_extreme_noise_still_defined(self):
        result = sphinx.run(IHWConfig.units("mul"), noise=5.0)
        assert len(result.output) == 25
        assert all(0 <= idx < 25 for idx in result.output)


class TestExtremeConfigurations:
    def test_maximum_truncation_everywhere(self):
        cfg = IHWConfig.all_imprecise().with_multiplier("mitchell", config="lp_tr22")
        result = hotspot.run(cfg, 16, 16, 5)
        assert np.isfinite(result.output).all()

    def test_minimum_threshold(self):
        cfg = IHWConfig.units("add", adder_threshold=1)
        result = hotspot.run(cfg, 16, 16, 5)
        assert np.isfinite(result.output).all()

    def test_bt_full_mantissa(self):
        ctx = ArithmeticContext(
            IHWConfig.units("mul").with_multiplier("truncated", truncation=23)
        )
        out = ctx.mul(np.float32(1.9), np.float32(1.9))
        # Keep 0 fraction bits: both operands collapse to 1.0.
        assert float(out) == 1.0

    def test_empty_enabled_set_is_precise(self):
        ctx = ArithmeticContext(IHWConfig(enabled=frozenset()))
        a = np.float32(1.75)
        assert float(ctx.mul(a, a)) == 1.75 * 1.75


class TestPowerModelEdges:
    def test_single_op_kernel(self):
        ctx = ArithmeticContext()
        ctx.add(np.float32(1.0), np.float32(1.0))
        counters = KernelCounters.from_context(ctx, threads=32)
        bd = GPUPowerModel().breakdown(counters)
        assert bd.total_w > 0

    def test_savings_with_no_arith(self):
        counters = KernelCounters(name="memcpy", mem_ops=1000, threads=32)
        report = estimate_system_savings(
            counters, IHWConfig.all_imprecise(), 0.3, 0.05
        )
        assert report.system_savings == 0.0

    def test_huge_thread_count(self):
        ctx = ArithmeticContext()
        ctx.add(np.ones(64, np.float32), 1.0)
        counters = KernelCounters.from_context(ctx, threads=10**7)
        bd = GPUPowerModel().breakdown(counters)
        assert np.isfinite(bd.total_w)
