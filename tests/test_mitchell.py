"""Tests for Mitchell's algorithm (fixed point and mantissa forms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MITCHELL_MAX_ERROR,
    mitchell_mantissa_product,
    mitchell_multiply_int,
)


class TestIntegerForm:
    def test_powers_of_two_exact(self):
        assert mitchell_multiply_int(4, 8) == 32
        assert mitchell_multiply_int(1, 1) == 1
        assert mitchell_multiply_int(1024, 2) == 2048

    def test_zero_operand(self):
        assert mitchell_multiply_int(0, 12345) == 0
        assert mitchell_multiply_int(7, 0) == 0

    def test_classic_worst_case(self):
        # 3 * 3 = 9 approximated as 8: the 1/9 maximum error point.
        assert mitchell_multiply_int(3, 3) == 8

    def test_known_value(self):
        # 15 * 17: k1=3 x1=7/8, k2=4 x2=1/16; x1+x2 = 15/16 < 1
        # P = 2^7 * (1 + 15/16) = 248 (true 255).
        assert mitchell_multiply_int(15, 17) == 248

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mitchell_multiply_int(-1, 3)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            mitchell_multiply_int(1 << 31, 2)

    def test_vectorized(self):
        n1 = np.arange(1, 100)
        n2 = np.arange(1, 100)[::-1]
        out = mitchell_multiply_int(n1, n2)
        assert out.shape == (99,)
        assert (out <= n1 * n2).all()

    @given(st.integers(1, 2**30), st.integers(1, 2**30))
    @settings(max_examples=500, deadline=None)
    def test_error_bound_and_underestimate(self, n1, n2):
        approx = int(mitchell_multiply_int(n1, n2))
        true = n1 * n2
        assert approx <= true
        assert (true - approx) / true <= MITCHELL_MAX_ERROR + 1e-12

    @given(st.integers(0, 30), st.integers(1, 2**30))
    @settings(max_examples=200, deadline=None)
    def test_exact_for_power_of_two_operand(self, k, n):
        # One operand a power of two: x = 0, the log approximation is exact.
        assert int(mitchell_multiply_int(1 << k, n)) == (1 << k) * n


class TestMantissaForm:
    def test_matches_integer_form_scaled(self):
        rng = np.random.default_rng(11)
        ints = rng.integers(1, 1 << 20, 300)
        m = ints.astype(np.float64) / (1 << 20)
        out = mitchell_mantissa_product(m, m[::-1])
        ref = mitchell_multiply_int(ints, ints[::-1]).astype(np.float64) / (1 << 40)
        np.testing.assert_allclose(out, ref, rtol=0, atol=0)

    def test_zero(self):
        assert mitchell_mantissa_product(np.array(0.0), np.array(0.5)) == 0.0

    def test_exact_on_powers_of_two(self):
        out = mitchell_mantissa_product(np.array(0.5), np.array(0.25))
        assert out == 0.125

    def test_error_bound_on_unit_interval(self):
        rng = np.random.default_rng(12)
        m1 = rng.uniform(2**-20, 1, 50000)
        m2 = rng.uniform(2**-20, 1, 50000)
        out = mitchell_mantissa_product(m1, m2)
        rel = np.abs(out - m1 * m2) / (m1 * m2)
        assert rel.max() <= MITCHELL_MAX_ERROR + 1e-12

    def test_error_bound_on_mantissa_interval(self):
        rng = np.random.default_rng(13)
        m1 = rng.uniform(1, 2, 50000)
        m2 = rng.uniform(1, 2, 50000)
        out = mitchell_mantissa_product(m1, m2)
        rel = np.abs(out - m1 * m2) / (m1 * m2)
        assert rel.max() <= MITCHELL_MAX_ERROR + 1e-12

    def test_always_underestimates(self):
        rng = np.random.default_rng(14)
        m1 = rng.uniform(0.01, 2, 10000)
        m2 = rng.uniform(0.01, 2, 10000)
        out = mitchell_mantissa_product(m1, m2)
        assert (out <= m1 * m2 + 1e-15).all()

    def test_worst_case_at_half_half(self):
        # x1 = x2 = 0.5 boundary: error -> 1/9.
        m = np.nextafter(1.5, 0.0)
        out = mitchell_mantissa_product(np.array(m), np.array(m))
        rel = abs(out - m * m) / (m * m)
        assert rel > 0.111
