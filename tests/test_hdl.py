"""Tests for the HDL-level datapath models and the co-simulation harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MultiplierConfig, imprecise_add, imprecise_multiply
from repro.hdl import (
    FieldsF32,
    FieldsF64,
    VerificationResult,
    check_width,
    corner_values,
    cosimulate,
    leading_one_position,
    mask,
    pack_float,
    rtl_mitchell_multiply,
    rtl_table1_multiply,
    rtl_threshold_add,
    unpack_float,
)

finite32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=-2.0**40,
    max_value=2.0**40,
)


class TestBitvector:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(8) == 255
        with pytest.raises(ValueError):
            mask(-1)

    def test_check_width(self):
        assert check_width(255, 8) == 255
        with pytest.raises(ValueError):
            check_width(256, 8)
        with pytest.raises(ValueError):
            check_width(-1, 8)

    def test_leading_one_position(self):
        assert leading_one_position(1, 8) == 0
        assert leading_one_position(0b1000_0000, 8) == 7
        assert leading_one_position(0, 8) == -1

    @given(st.floats(width=32, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_unpack_pack_roundtrip_f32(self, value):
        fields = unpack_float(value, FieldsF32)
        out = pack_float(*fields, FieldsF32)
        assert np.float32(out).view(np.uint32) == np.float32(value).view(np.uint32)

    @given(st.floats(allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_unpack_pack_roundtrip_f64(self, value):
        fields = unpack_float(value, FieldsF64)
        out = pack_float(*fields, FieldsF64)
        assert np.float64(out).view(np.uint64) == np.float64(value).view(np.uint64)

    def test_unpack_known_value(self):
        sign, exp, frac = unpack_float(1.5, FieldsF32)
        assert (sign, exp, frac) == (0, 127, 1 << 22)

    def test_pack_validates_fields(self):
        with pytest.raises(ValueError):
            pack_float(2, 127, 0, FieldsF32)


class TestRTLDatapaths:
    """Scalar spot checks of the RTL models themselves."""

    def test_table1_known_value(self):
        assert rtl_table1_multiply(1.75, 1.75) == 2.5
        assert rtl_table1_multiply(2.0, 4.0) == 8.0

    def test_table1_specials(self):
        assert np.isnan(rtl_table1_multiply(float("inf"), 0.0))
        assert np.isinf(rtl_table1_multiply(float("inf"), -2.0))
        assert rtl_table1_multiply(0.0, 5.0) == 0.0

    def test_threshold_add_absorption(self):
        assert rtl_threshold_add(1024.0, 1024.0 * 2.0**-20) == 1024.0

    def test_threshold_add_equation7(self):
        assert rtl_threshold_add(2.0, 1.96875, threshold=3) == 3.75

    def test_threshold_add_cancellation(self):
        assert rtl_threshold_add(1.5, -1.5) == 0.0

    def test_mitchell_log_path_worst_case(self):
        # 1.5 * 1.5: x1 = x2 = 0.5, MA underestimates 2.25 as 2.0.
        assert rtl_mitchell_multiply(1.5, 1.5, path="log") == 2.0

    def test_mitchell_full_path_closer(self):
        out = rtl_mitchell_multiply(1.5, 1.5, path="full")
        assert abs(out - 2.25) < 0.05

    def test_mitchell_validation(self):
        with pytest.raises(ValueError):
            rtl_mitchell_multiply(1.0, 1.0, path="middle")
        with pytest.raises(ValueError):
            rtl_mitchell_multiply(1.0, 1.0, truncation=23)
        with pytest.raises(ValueError):
            rtl_threshold_add(1.0, 1.0, threshold=0)

    @given(finite32, finite32)
    @settings(max_examples=300, deadline=None)
    def test_table1_matches_behavioral_hypothesis(self, a, b):
        a32, b32 = float(np.float32(a)), float(np.float32(b))
        rtl = rtl_table1_multiply(a32, b32)
        beh = float(imprecise_multiply(np.float32(a32), np.float32(b32)))
        assert np.float32(rtl).view(np.uint32) == np.float32(beh).view(np.uint32)

    @given(finite32, finite32, st.integers(1, 27))
    @settings(max_examples=300, deadline=None)
    def test_adder_matches_behavioral_hypothesis(self, a, b, th):
        a32, b32 = float(np.float32(a)), float(np.float32(b))
        rtl = rtl_threshold_add(a32, b32, threshold=th)
        beh = float(imprecise_add(np.float32(a32), np.float32(b32), threshold=th))
        # Compare as values (the behavioral +0/-0 convention matches too,
        # but cancellation sign is the only allowed difference).
        if rtl == 0 and beh == 0:
            return
        assert np.float32(rtl).view(np.uint32) == np.float32(beh).view(np.uint32)


class TestCosimulation:
    @pytest.mark.parametrize(
        "unit,kwargs",
        [
            ("table1_mul", {}),
            ("threshold_add", {"threshold": 8}),
            ("threshold_add", {"threshold": 27}),
            ("mitchell_mul", {"config": MultiplierConfig("log", 0)}),
            ("mitchell_mul", {"config": MultiplierConfig("full", 0)}),
            ("mitchell_mul", {"config": MultiplierConfig("log", 19)}),
            ("mitchell_mul", {"config": MultiplierConfig("full", 10)}),
        ],
    )
    def test_fp32_bit_exact(self, unit, kwargs):
        result = cosimulate(unit, 32, n_random=1000, **kwargs)
        assert result.passed, result.mismatches[:3]

    @pytest.mark.parametrize(
        "unit,kwargs",
        [("table1_mul", {}), ("threshold_add", {"threshold": 8})],
    )
    def test_fp64_bit_exact_integer_datapaths(self, unit, kwargs):
        result = cosimulate(unit, 64, n_random=500, **kwargs)
        assert result.passed

    def test_fp64_mitchell_within_one_ulp(self):
        # The behavioral fp64 Mitchell path evaluates in float64 and is
        # documented to sit within 1 ulp of the integer datapath.
        result = cosimulate(
            "mitchell_mul", 64, n_random=500, config=MultiplierConfig("full", 0)
        )
        assert result.within(1)

    def test_corner_values_cover_specials(self):
        corners = corner_values(np.float32)
        assert np.isnan(corners).any()
        assert np.isinf(corners).any()
        assert (corners == 0).any()

    def test_result_summary(self):
        result = cosimulate("table1_mul", 32, n_random=16)
        assert "PASS" in result.summary()
        assert result.vectors > 0

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            cosimulate("barrel_roll")

    def test_mismatch_reporting(self):
        # Force a mismatch by comparing the adder against a wrong threshold.
        res = VerificationResult(unit="demo", vectors=1)
        assert res.passed
        assert res.within(0)


class TestSFUDatapaths:
    def test_rcp_known_values(self):
        from repro.hdl import rtl_linear_reciprocal

        # Power of two: x_r = 0.5, lin = 2.823 - 0.941 = 1.882, scaled.
        out = rtl_linear_reciprocal(2.0)
        assert out == pytest.approx(1.882 / 4, rel=1e-6)

    def test_rcp_specials(self):
        from repro.hdl import rtl_linear_reciprocal

        assert np.isinf(rtl_linear_reciprocal(0.0))
        assert rtl_linear_reciprocal(float("inf")) == 0.0
        assert np.isnan(rtl_linear_reciprocal(float("nan")))
        assert rtl_linear_reciprocal(-2.0) < 0

    def test_rsqrt_specials(self):
        from repro.hdl import rtl_linear_rsqrt

        assert np.isinf(rtl_linear_rsqrt(0.0))
        assert rtl_linear_rsqrt(float("inf")) == 0.0
        assert np.isnan(rtl_linear_rsqrt(-1.0))

    def test_coefficient_quantization(self):
        from repro.hdl import COEFF_FRACTION_BITS, fixed_point_coefficient

        c = fixed_point_coefficient(2.823)
        assert abs(c / (1 << COEFF_FRACTION_BITS) - 2.823) < 2.0**-COEFF_FRACTION_BITS
        with pytest.raises(ValueError):
            fixed_point_coefficient(-1.0)
        with pytest.raises(ValueError):
            fixed_point_coefficient(1.0, fraction_bits=0)

    def test_cosim_within_one_ulp(self):
        # The fixed-point datapath sits within one output ULP of the
        # float64 behavioral model at 28 coefficient fraction bits.
        for unit in ("linear_rcp", "linear_rsqrt"):
            result = cosimulate(unit, 32, n_random=500)
            assert result.within(1), result.summary()

    def test_coarse_coefficients_diverge(self):
        # With only 8 coefficient bits the quantization becomes visible —
        # the knob measures how much precision the constants need.
        from repro.hdl import rtl_linear_reciprocal

        fine = rtl_linear_reciprocal(3.0, fraction_bits=28)
        coarse = rtl_linear_reciprocal(3.0, fraction_bits=6)
        assert fine != coarse

    def test_parity_handling(self):
        from repro.hdl import rtl_linear_rsqrt

        # rsqrt(4x) = rsqrt(x)/2 exactly across the parity mux.
        a = rtl_linear_rsqrt(1.23)
        b = rtl_linear_rsqrt(4.0 * 1.23)
        assert b == pytest.approx(a / 2, rel=1e-6)
