"""Pluggable compute backends: registry, parity, cache keys, CLI, analysis."""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import ArithmeticContext, IHWConfig
from repro.core.backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendUnavailableError,
    available_backend_names,
    backend_available,
    backend_names,
    default_backend_name,
    get_backend,
)
from repro.core.backends.base import ReferenceBackend
from repro.core.backends.bench import run_benchmarks
from repro.core.backends.fused import FusedBackend, ScratchPool
from repro.core.backends.parity import adversarial_operands, check_parity
from repro.core.floatops import format_for_dtype


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registered_names(self):
        assert backend_names() == ("reference", "fused", "threaded",
                                   "numba", "numba-parallel")

    def test_reference_and_fused_always_available(self):
        assert "reference" in available_backend_names()
        assert "fused" in available_backend_names()
        assert "threaded" in available_backend_names()

    def test_default_is_reference_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend_name() == DEFAULT_BACKEND == "reference"
        assert get_backend().name == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fused")
        assert default_backend_name() == "fused"
        assert get_backend().name == "fused"

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            default_backend_name()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="turbo"):
            get_backend("turbo")

    def test_instance_passthrough(self):
        backend = FusedBackend()
        assert get_backend(backend) is backend

    def test_fresh_instances_per_call(self):
        assert get_backend("fused") is not get_backend("fused")

    def test_numba_absent_raises_or_constructs(self):
        if backend_available("numba"):
            assert get_backend("numba").name == "numba"
        else:
            with pytest.raises(BackendUnavailableError):
                get_backend("numba")

    def test_config_backend_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        ctx = ArithmeticContext(IHWConfig(backend="fused"))
        assert ctx.backend.name == "fused"
        # Explicit argument wins over the config field.
        ctx = ArithmeticContext(IHWConfig(backend="fused"), backend="reference")
        assert ctx.backend.name == "reference"

    def test_env_var_reaches_context(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fused")
        assert ArithmeticContext(IHWConfig.all_imprecise()).backend.name == "fused"


# ----------------------------------------------------------------------
# Parity: the contractual bit-identity of every backend
# ----------------------------------------------------------------------
def _parity_backends():
    return [name for name in available_backend_names() if name != "reference"]


class TestParity:
    @pytest.mark.parametrize("name", _parity_backends())
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bit_identical_to_reference(self, name, dtype):
        failures = check_parity(get_backend(name), dtype=dtype, n_random=4096)
        assert failures == []

    def test_adversarial_operands_cover_specials(self):
        a, b = adversarial_operands(np.float32)
        assert np.isnan(a).any() and np.isinf(a).any()
        fmt = format_for_dtype(np.float32)
        exponents = (a.view(fmt.uint) >> np.uint32(fmt.mantissa_bits)) & np.uint32(
            fmt.exponent_mask
        )
        mantissas = a.view(fmt.uint) & np.uint32(fmt.mantissa_mask)
        assert ((exponents == 0) & (mantissas != 0)).any()  # subnormals
        assert (a.view(fmt.uint) == 0).any() or (a == 0).any()

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_fused_scalar_inputs(self, dtype):
        backend = FusedBackend()
        reference = ReferenceBackend()
        got = backend.imprecise_add(1.5, 2.25, 8, dtype=dtype)
        want = reference.imprecise_add(1.5, 2.25, 8, dtype=dtype)
        assert got.shape == want.shape
        assert np.array_equal(got, want)

    def test_fused_broadcasting(self):
        backend = FusedBackend()
        reference = ReferenceBackend()
        a = np.linspace(-2, 2, 12, dtype=np.float32).reshape(3, 4)
        b = np.float32(0.75)
        got = backend.imprecise_multiply(a, b)
        want = reference.imprecise_multiply(a, b)
        assert got.shape == want.shape == (3, 4)
        assert np.array_equal(got.view(np.uint32), want.view(np.uint32))

    def test_fused_scratch_reuse_across_calls(self):
        backend = FusedBackend()
        a = np.linspace(0.5, 4.0, 1024, dtype=np.float32)
        first = backend.imprecise_add(a, a, 8)
        before = backend._scratch.nbytes()
        second = backend.imprecise_add(a, a, 8)
        assert backend._scratch.nbytes() == before  # no regrowth
        assert np.array_equal(first, second)
        # Results must be freshly owned, never views of scratch.
        first[0] = 99.0
        assert second[0] != 99.0

    def test_scratch_pool_grows_and_reshapes(self):
        pool = ScratchPool()
        small = pool.get("x", np.int64, (16,))
        assert small.shape == (16,)
        big = pool.get("x", np.int64, (64,))
        assert big.shape == (64,)
        again = pool.get("x", np.int64, (8, 4))
        assert again.shape == (8, 4)
        assert pool.nbytes() == 64 * 8


# ----------------------------------------------------------------------
# Context integration: same numbers, same counters
# ----------------------------------------------------------------------
class TestContextIntegration:
    @pytest.mark.parametrize("name", _parity_backends())
    def test_context_results_and_counts_match(self, name):
        cfg = IHWConfig.all_imprecise()
        ref_ctx = ArithmeticContext(cfg, backend="reference")
        alt_ctx = ArithmeticContext(cfg, backend=name)
        rng = np.random.default_rng(3)
        a = rng.uniform(0.1, 8.0, 512).astype(np.float32)
        b = rng.uniform(0.1, 8.0, 512).astype(np.float32)
        pairs = [
            ("add", (a, b)), ("sub", (a, b)), ("mul", (a, b)),
            ("fma", (a, b, a)), ("div", (a, b)), ("rcp", (a,)),
            ("rsqrt", (a,)), ("sqrt", (a,)), ("log2", (a,)),
        ]
        for op, args in pairs:
            want = getattr(ref_ctx, op)(*args)
            got = getattr(alt_ctx, op)(*args)
            assert np.array_equal(
                want.view(np.uint32), got.view(np.uint32)
            ), op
        assert ref_ctx.counts == alt_ctx.counts

    def test_mitchell_and_truncated_modes_route_through_backend(self):
        for mode_kwargs in (
            {"mode": "mitchell", "config": "lp_tr8"},
            {"mode": "truncated", "truncation": 8},
        ):
            cfg = IHWConfig.all_imprecise().with_multiplier(**mode_kwargs)
            a = np.linspace(0.5, 4.0, 256, dtype=np.float32)
            want = ArithmeticContext(cfg, backend="reference").mul(a, a)
            got = ArithmeticContext(cfg, backend="fused").mul(a, a)
            assert np.array_equal(want.view(np.uint32), got.view(np.uint32))

    def test_precise_context_untouched_by_backend(self):
        a = np.linspace(-1, 1, 64, dtype=np.float32)
        precise = ArithmeticContext(backend="fused")
        assert np.array_equal(precise.add(a, a), a + a)


# ----------------------------------------------------------------------
# Cache-key independence
# ----------------------------------------------------------------------
class TestCacheIndependence:
    def test_backend_does_not_change_cache_key(self):
        base = IHWConfig.all_imprecise()
        for name in backend_names():
            pinned = base.with_backend(name)
            assert pinned.cache_key() == base.cache_key()
            assert pinned.canonical() == base.canonical()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            IHWConfig(backend="turbo")

    def test_describe_mentions_pinned_backend(self):
        cfg = IHWConfig.all_imprecise().with_backend("fused")
        assert "backend=fused" in cfg.describe()
        assert "backend" not in IHWConfig.all_imprecise().describe()

    def test_result_cache_key_shared_across_backends(self, tmp_path):
        from repro.runtime import ResultCache

        class Spec:
            def canonical(self):
                return {"app": "unit-test", "params": {"n": 8}}

        cache = ResultCache(tmp_path)
        spec = Spec()
        base = IHWConfig.all_imprecise()
        keys = {cache.key(spec, base.with_backend(n)) for n in backend_names()}
        keys.add(cache.key(spec, base))
        assert len(keys) == 1


# ----------------------------------------------------------------------
# Telemetry: per-backend op timing
# ----------------------------------------------------------------------
class TestOpTimer:
    def test_timings_labeled_with_backend(self):
        from repro import telemetry

        with telemetry.override("metrics"):
            telemetry.reset()
            ctx = ArithmeticContext(IHWConfig.all_imprecise(), backend="fused")
            ctx.op_timer = telemetry.make_op_timer()
            a = np.linspace(0.5, 2.0, 128, dtype=np.float32)
            ctx.add(a, a)
            ctx.mul(a, a)
            telemetry.record_kernel("unit-test", ctx)
            snapshot = telemetry.get_registry().drain()
            names = {
                (s["name"], s["labels"].get("op"), s["labels"].get("backend"))
                for s in snapshot
            }
            assert ("repro_backend_op_calls_total", "add", "fused") in names
            assert ("repro_backend_op_seconds_total", "mul", "fused") in names
        telemetry.reset()

    def test_off_mode_attaches_nothing(self):
        from repro import telemetry
        from repro.apps.base import make_context

        with telemetry.override("off"):
            ctx = make_context(IHWConfig.all_imprecise())
            assert ctx.op_timer is None


# ----------------------------------------------------------------------
# Bench payload and CLI
# ----------------------------------------------------------------------
class TestBench:
    def test_run_benchmarks_payload(self):
        payload = run_benchmarks(size=2048, repeats=1,
                                 backends=("reference", "fused"),
                                 parity_samples=512, parallel=False)
        assert payload["schema"] == "repro-bench-core/3"
        assert payload["machine"]["numpy"]
        assert payload["machine"]["cpu_count"] >= 1
        assert payload["machine"]["threads"] >= 1
        assert payload["backends"]["fused"]["parity_ok"] is True
        for op in ("add", "mul", "fma", "rcp", "sqrt"):
            assert payload["backends"]["reference"]["ops"][op]["seconds"] > 0
            assert "speedup_vs_reference" in payload["backends"]["fused"]["ops"][op]
        batch = payload["batch"]
        assert batch["parity_ok"] is True
        assert batch["n_configs"] >= 8
        for op in ("add", "fma", "mul_mitchell", "mul_truncated"):
            assert batch["sweeps"][op]["batch_seconds"] > 0
        assert batch["threshold_sweep"]["per_config_seconds"] > 0

    def test_run_benchmarks_no_batch(self):
        payload = run_benchmarks(size=2048, repeats=1,
                                 backends=("reference",),
                                 parity_samples=256, batch=False,
                                 parallel=False)
        assert "batch" not in payload
        assert "parallel" not in payload

    def test_run_benchmarks_rejects_unknown(self):
        with pytest.raises(ValueError, match="turbo"):
            run_benchmarks(size=64, repeats=1, backends=("turbo",))

    def test_cli_bench_quick(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = main(["bench", "--quick", "--size", "2048", "--repeats", "1"],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "fused" in text and "vs reference" in text
        payload = json.loads(Path(tmp_path, "BENCH_core.json").read_text())
        assert payload["backends"]["fused"]["parity_ok"] is True

    def test_cli_bench_unknown_backend(self):
        from repro.cli import main

        code = main(["bench", "--quick", "--backends", "turbo", "--no-write"],
                    out=io.StringIO())
        assert code == 2

    def test_committed_bench_file_is_current(self):
        """The committed BENCH_core.json must match this tree's schema."""
        path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench-core/3"
        fused = payload["backends"]["fused"]
        assert fused["parity_ok"] is True
        assert fused["ops"]["add"]["speedup_vs_reference"] >= 2.0
        assert fused["ops"]["mul"]["speedup_vs_reference"] >= 2.0
        # Results may only be committed with the batched parity gate green.
        batch = payload["batch"]
        assert batch["parity_ok"] is True
        assert batch["n_configs"] >= 8
        assert batch["threshold_sweep"]["speedup"] > 1.0
        # The parallel section carries its own parity gate and records
        # the machine it ran on (speedup floors are relaxed on
        # cpu-starved runners, so only structure is asserted here).
        assert payload["machine"]["cpu_count"] >= 1
        assert payload["machine"]["threads"] >= 1
        parallel = payload["parallel"]
        assert parallel["baseline"] == "fused"
        assert parallel["backends"]["threaded"]["parity_ok"] is True


# ----------------------------------------------------------------------
# Static-analysis coverage of the new package
# ----------------------------------------------------------------------
class TestAnalysisCoverage:
    def test_backend_package_lints_clean(self):
        import repro
        from repro.analysis import run_analysis

        report = run_analysis(Path(repro.__file__).parent)
        backend_findings = [
            f for f in report.findings if f.path.startswith("core/backends")
        ]
        assert backend_findings == []

    def test_fixture_backend_layer_violation_flagged(self, tmp_path):
        from repro.analysis import AnalysisConfig, run_analysis
        from tests.test_analysis import make_package

        root = make_package(tmp_path, {
            "__init__.py": "",
            "core/__init__.py": "",
            "core/backends/__init__.py": "from fixture.apps import helper\n",
            "apps/__init__.py": "def helper():\n    return 1\n",
        })
        config = AnalysisConfig(
            package="fixture",
            layer_rules={"core": frozenset(), "apps": frozenset({"core"})},
            kernel_layers=("apps",),
            worker_layers=("core", "apps"),
        )
        report = run_analysis(root, config=config)
        assert any(f.checker == "layer-imports" for f in report.findings)

    def test_fixture_backend_mutable_registry_flagged(self, tmp_path):
        from repro.analysis import AnalysisConfig, run_analysis
        from tests.test_analysis import make_package

        root = make_package(tmp_path, {
            "__init__.py": "",
            "core/__init__.py": "",
            "core/backends/__init__.py": "_REGISTRY = {}\n",
        })
        config = AnalysisConfig(
            package="fixture",
            layer_rules={"core": frozenset()},
            kernel_layers=(),
            worker_layers=("core",),
        )
        report = run_analysis(root, config=config)
        assert any(f.checker == "fork-safety" for f in report.findings)
