"""Tests for the linear-approximation special function units (Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RECIPROCAL_MAX_ERROR,
    RSQRT_MAX_ERROR,
    SQRT_MAX_ERROR,
    imprecise_divide,
    imprecise_log2,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
)

positive32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=2.0**-99,
    max_value=2.0**99,
)


class TestReciprocal:
    def test_error_bound(self):
        rng = np.random.default_rng(30)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        out = imprecise_reciprocal(x).astype(np.float64)
        rel = np.abs(out * x.astype(np.float64) - 1.0)
        assert rel.max() <= RECIPROCAL_MAX_ERROR + 1e-4

    def test_worst_case_near_bound(self):
        # The linear fit's worst point is at the interval edge.
        x = np.linspace(1.0, 2.0, 4097, dtype=np.float32)[:-1]
        out = imprecise_reciprocal(x).astype(np.float64)
        rel = np.abs(out * x.astype(np.float64) - 1.0)
        assert rel.max() > 0.05

    def test_negative_operands(self):
        out = imprecise_reciprocal(np.float32(-2.0))
        assert out < 0
        assert abs(float(out) + 0.5) < 0.05

    def test_specials(self):
        assert np.isposinf(imprecise_reciprocal(np.float32(0.0)))
        assert np.isneginf(imprecise_reciprocal(np.float32(-0.0)))
        assert imprecise_reciprocal(np.float32(np.inf)) == 0.0
        assert np.isnan(imprecise_reciprocal(np.float32(np.nan)))

    def test_scale_invariance(self):
        # Range reduction acts only on the exponent: rcp(4x) = rcp(x)/4.
        x = np.float32(1.37)
        a = float(imprecise_reciprocal(x))
        b = float(imprecise_reciprocal(np.float32(4.0) * x))
        assert a / 4 == pytest.approx(b, rel=1e-6)

    @given(positive32)
    @settings(max_examples=300, deadline=None)
    def test_error_bound_hypothesis(self, x):
        x32 = np.float32(x)
        out = float(imprecise_reciprocal(x32))
        if out == 0.0 or not np.isfinite(out):
            return  # flushed / out of range
        rel = abs(out * float(x32) - 1.0)
        assert rel <= RECIPROCAL_MAX_ERROR + 1e-4


class TestRsqrt:
    def test_error_bound(self):
        rng = np.random.default_rng(31)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        out = imprecise_rsqrt(x).astype(np.float64)
        rel = np.abs(out * np.sqrt(x.astype(np.float64)) - 1.0)
        assert rel.max() <= RSQRT_MAX_ERROR + 2e-3

    def test_exponent_parity_consistency(self):
        # rsqrt(4x) = rsqrt(x)/2 exactly, odd exponents use scaled constants.
        x = np.float32(1.23)
        a = float(imprecise_rsqrt(x))
        b = float(imprecise_rsqrt(np.float32(4.0) * x))
        assert a / 2 == pytest.approx(b, rel=1e-6)

    def test_specials(self):
        assert np.isposinf(imprecise_rsqrt(np.float32(0.0)))
        assert imprecise_rsqrt(np.float32(np.inf)) == 0.0
        assert np.isnan(imprecise_rsqrt(np.float32(-1.0)))
        assert np.isnan(imprecise_rsqrt(np.float32(np.nan)))

    @given(positive32)
    @settings(max_examples=300, deadline=None)
    def test_error_bound_hypothesis(self, x):
        x32 = np.float32(x)
        out = float(imprecise_rsqrt(x32))
        if out == 0.0 or not np.isfinite(out):
            return
        rel = abs(out * float(np.sqrt(float(x32))) - 1.0)
        assert rel <= RSQRT_MAX_ERROR + 2e-3


class TestSqrt:
    def test_error_bound(self):
        rng = np.random.default_rng(32)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        out = imprecise_sqrt(x).astype(np.float64)
        rel = np.abs(out / np.sqrt(x.astype(np.float64)) - 1.0)
        assert rel.max() <= SQRT_MAX_ERROR + 2e-3

    def test_perfect_squares_close(self):
        for v in (4.0, 16.0, 64.0):
            out = float(imprecise_sqrt(np.float32(v)))
            assert out == pytest.approx(np.sqrt(v), rel=0.12)

    def test_specials(self):
        assert imprecise_sqrt(np.float32(0.0)) == 0.0
        assert np.isposinf(imprecise_sqrt(np.float32(np.inf)))
        assert np.isnan(imprecise_sqrt(np.float32(-4.0)))

    def test_relation_to_rsqrt(self):
        # sqrt(x) = x * rsqrt(x) holds in the approximation up to the two
        # units' independent linear-fit errors (each bounded by ~11%).
        x = np.float32(7.3)
        s = float(imprecise_sqrt(x))
        r = float(imprecise_rsqrt(x))
        assert s == pytest.approx(float(x) * r, rel=0.25)

    @given(positive32)
    @settings(max_examples=300, deadline=None)
    def test_error_bound_hypothesis(self, x):
        x32 = np.float32(x)
        out = float(imprecise_sqrt(x32))
        if out == 0.0 or not np.isfinite(out):
            return
        rel = abs(out / float(np.sqrt(float(x32))) - 1.0)
        assert rel <= SQRT_MAX_ERROR + 2e-3


class TestLog2:
    def test_absolute_error_small(self):
        rng = np.random.default_rng(33)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        out = imprecise_log2(x).astype(np.float64)
        err = np.abs(out - np.log2(x.astype(np.float64)))
        assert err.max() < 0.07  # endpoint error of the linear fit

    def test_relative_error_unbounded_near_one(self):
        # Table 1: eps_max unbounded because log2(1) = 0.
        out = float(imprecise_log2(np.float32(1.0)))
        assert out != 0.0  # the approximation misses zero ...
        assert abs(out) < 0.07  # ... by a small absolute amount

    def test_exact_exponent_contribution(self):
        a = float(imprecise_log2(np.float32(1.5)))
        b = float(imprecise_log2(np.float32(3.0)))
        assert b - a == pytest.approx(1.0, abs=1e-6)

    def test_specials(self):
        assert np.isneginf(imprecise_log2(np.float32(0.0)))
        assert np.isposinf(imprecise_log2(np.float32(np.inf)))
        assert np.isnan(imprecise_log2(np.float32(-1.0)))


class TestDivide:
    def test_error_bound_matches_reciprocal(self):
        rng = np.random.default_rng(34)
        a = rng.uniform(-1e3, 1e3, 50000).astype(np.float32)
        b = rng.uniform(1e-3, 1e3, 50000).astype(np.float32)
        out = imprecise_divide(a, b).astype(np.float64)
        true = a.astype(np.float64) / b.astype(np.float64)
        rel = np.abs((out - true) / true)
        assert rel.max() <= RECIPROCAL_MAX_ERROR + 1e-3

    def test_signs(self):
        assert imprecise_divide(np.float32(-6.0), np.float32(2.0)) < 0
        assert imprecise_divide(np.float32(-6.0), np.float32(-2.0)) > 0

    def test_divide_by_zero(self):
        assert np.isposinf(imprecise_divide(np.float32(1.0), np.float32(0.0)))
        assert np.isneginf(imprecise_divide(np.float32(-1.0), np.float32(0.0)))

    def test_zero_over_zero_is_nan(self):
        assert np.isnan(imprecise_divide(np.float32(0.0), np.float32(0.0)))

    def test_inf_over_inf_is_nan(self):
        assert np.isnan(imprecise_divide(np.float32(np.inf), np.float32(np.inf)))


class TestDtypes:
    @pytest.mark.parametrize(
        "fn", [imprecise_reciprocal, imprecise_rsqrt, imprecise_sqrt, imprecise_log2]
    )
    def test_float64_supported(self, fn):
        out = fn(np.float64(3.7), dtype=np.float64)
        assert out.dtype == np.float64

    @pytest.mark.parametrize(
        "fn", [imprecise_reciprocal, imprecise_rsqrt, imprecise_sqrt, imprecise_log2]
    )
    def test_output_dtype_float32(self, fn):
        assert fn(np.float32(3.7)).dtype == np.float32
