"""Tests for the Black-Scholes negative-control application."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.apps import blackscholes as bs
from repro.core import IHWConfig


def closed_form(book):
    s, k, v, r, t = (
        book[x].astype(np.float64) for x in ("spot", "strike", "vol", "rate", "expiry")
    )
    d1 = (np.log(s / k) + (r + v * v / 2) * t) / (v * np.sqrt(t))
    d2 = d1 - v * np.sqrt(t)
    return s * norm.cdf(d1) - k * np.exp(-r * t) * norm.cdf(d2)


class TestPricer:
    @pytest.fixture(scope="class")
    def reference(self):
        return bs.reference_run()

    def test_matches_closed_form(self, reference):
        exact = closed_form(bs.option_book())
        # The A&S erf polynomial is good to ~3e-3 dollars on this book.
        assert np.abs(reference.output - exact).max() < 0.01

    def test_prices_nonnegative(self, reference):
        assert (reference.output >= 0).all()

    def test_intrinsic_value_lower_bound(self, reference):
        book = bs.option_book()
        intrinsic = np.maximum(
            book["spot"].astype(np.float64) - book["strike"].astype(np.float64), 0.0
        )
        # Calls are worth at least (discounted) intrinsic value; allow the
        # erf-approximation slack.
        assert (reference.output >= intrinsic * 0.97 - 0.05).all()

    def test_deterministic(self, reference):
        again = bs.reference_run()
        np.testing.assert_array_equal(again.output, reference.output)

    def test_uses_every_unit_class(self, reference):
        counts = reference.op_counts
        for op in ("mul", "add", "sub", "div", "rcp", "sqrt", "log2"):
            assert counts.get(op, 0) > 0, op

    def test_book_validation(self):
        with pytest.raises(ValueError):
            bs.option_book(0)


class TestNegativeControl:
    """Chapter 1's scoping claim: finance cannot tolerate these units."""

    TOLERANCE_BPS = 1.0  # one basis point of repricing error

    def _median_bps(self, config):
        ref = bs.reference_run()
        result = bs.run(config)
        err = np.abs(result.output - ref.output)
        return float(np.median(err / np.maximum(ref.output, 0.01) * 1e4))

    def test_all_imprecise_fails_by_orders_of_magnitude(self):
        assert self._median_bps(IHWConfig.all_imprecise()) > 1000 * self.TOLERANCE_BPS

    def test_even_best_multiplier_fails(self):
        cfg = IHWConfig.units("mul").with_multiplier("mitchell", config="fp_tr0")
        assert self._median_bps(cfg) > 10 * self.TOLERANCE_BPS

    def test_even_adder_alone_fails(self):
        assert self._median_bps(IHWConfig.units("add")) > self.TOLERANCE_BPS

    def test_dollar_errors_are_material(self):
        ref = bs.reference_run()
        imp = bs.run(IHWConfig.all_imprecise())
        worst = np.abs(imp.output - ref.output).max()
        assert worst > 1.0  # dollars per option — "millions" at book scale

    def test_error_tolerant_contrast(self):
        # The same hardware that breaks finance passes HotSpot: the
        # application-selectivity the paper's Figure 3 describes.
        from repro.apps import hotspot
        from repro.quality import mae

        ref = hotspot.reference_run(32, 32, 20)
        imp = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 20)
        relative_thermal = mae(imp.output, ref.output) / float(np.mean(ref.output))
        assert relative_thermal < 0.01  # well under 1% of the die temperature
        assert self._median_bps(IHWConfig.all_imprecise()) / 1e4 > relative_thermal
