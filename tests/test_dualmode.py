"""Tests for the dual-mode multiplier (future-work precise-mode integration)."""

import numpy as np
import pytest

from repro.core import DualModeMultiplier, MultiplierConfig
from repro.hardware import dual_mode_fp_multiplier, dw_fp_multiplier


class TestDualModeMultiplier:
    def test_precise_mode_exact(self):
        dm = DualModeMultiplier()
        out = dm.multiply(np.float32(1.75), np.float32(1.75), precise=True)
        assert float(out) == 1.75 * 1.75

    def test_imprecise_mode_approximate(self):
        dm = DualModeMultiplier(MultiplierConfig("log", 0))
        out = dm.multiply(np.float32(1.75), np.float32(1.75))
        assert float(out) != 1.75 * 1.75
        assert float(out) == pytest.approx(1.75 * 1.75, rel=0.12)

    def test_duty_cycle_tracking(self):
        dm = DualModeMultiplier()
        a = np.ones(10, dtype=np.float32)
        dm.multiply(a, a)  # 10 imprecise
        dm.multiply(a, a, precise=True)  # 10 precise
        dm.multiply(a, a, precise=True)  # 10 precise
        assert dm.total_ops == 30
        assert dm.duty_cycle == pytest.approx(1 / 3)

    def test_zero_ops_duty_cycle(self):
        assert DualModeMultiplier().duty_cycle == 0.0

    def test_reset(self):
        dm = DualModeMultiplier()
        dm.multiply(np.float32(2), np.float32(2))
        dm.reset()
        assert dm.total_ops == 0

    def test_multiply_where(self):
        dm = DualModeMultiplier(MultiplierConfig("log", 0))
        a = np.full(4, 1.75, dtype=np.float32)
        mask = np.array([True, False, True, False])
        out = dm.multiply_where(a, a, mask)
        exact = np.float32(1.75 * 1.75)
        assert out[1] == exact and out[3] == exact
        assert out[0] != exact and out[2] != exact
        assert dm.duty_cycle == pytest.approx(0.5)

    def test_multiply_where_broadcast_mask(self):
        dm = DualModeMultiplier()
        a = np.ones((2, 3), dtype=np.float32)
        out = dm.multiply_where(a, a, True)
        assert out.shape == (2, 3)
        assert dm.imprecise_ops == 6

    def test_float64(self):
        dm = DualModeMultiplier(dtype=np.float64)
        out = dm.multiply(1.5, 1.5, precise=True)
        assert out.dtype == np.float64

    def test_average_power_blend(self):
        dm = DualModeMultiplier()
        a = np.ones(8, dtype=np.float32)
        dm.multiply(a, a)  # full imprecise duty
        blended = dm.average_power_mw(36.63, 1.41)
        # Duty 1.0: imprecise active + precise leakage.
        assert blended == pytest.approx(1.41 + 0.05 * 36.63)

    def test_average_power_precise_duty(self):
        dm = DualModeMultiplier()
        dm.multiply(np.float32(1), np.float32(1), precise=True)
        blended = dm.average_power_mw(36.63, 1.41)
        assert blended == pytest.approx(36.63 + 0.05 * 1.41)

    def test_average_power_validation(self):
        dm = DualModeMultiplier()
        with pytest.raises(ValueError):
            dm.average_power_mw(10.0, 1.0, idle_leakage_fraction=2.0)


class TestDualModeHardware:
    def test_precise_mode_power_near_dwip(self):
        # The resident Mitchell datapath adds only leakage + the mode mux.
        dual = dual_mode_fp_multiplier(32).metrics()
        dw = dw_fp_multiplier(32).metrics()
        assert dw.power_mw <= dual.power_mw <= 1.15 * dw.power_mw

    def test_duty_cycle_blend_saves_power(self):
        dual = dual_mode_fp_multiplier(32).metrics()
        dm = DualModeMultiplier()
        a = np.ones(80, dtype=np.float32)
        dm.multiply(a, a)  # 80 imprecise
        dm.multiply(np.ones(20, dtype=np.float32), np.ones(20, dtype=np.float32),
                    precise=True)
        blended = dm.average_power_mw(dual.power_mw, 1.41)
        assert blended < 0.5 * dual.power_mw  # 80% duty saves over half

    def test_dual_mode_area_exceeds_either(self):
        from repro.hardware import mitchell_fp_multiplier

        dual = dual_mode_fp_multiplier(32).metrics()
        dw = dw_fp_multiplier(32).metrics()
        mit = mitchell_fp_multiplier(32).metrics()
        assert dual.area > dw.area
        assert dual.area > mit.area
