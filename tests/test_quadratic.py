"""Tests for the quadratic-approximation SFU extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    QUADRATIC_LOG2_MAX_ABS_ERROR,
    QUADRATIC_RCP_MAX_ERROR,
    QUADRATIC_RSQRT_MAX_ERROR,
    RECIPROCAL_MAX_ERROR,
    RSQRT_MAX_ERROR,
    imprecise_reciprocal,
    imprecise_rsqrt,
    quadratic_log2,
    quadratic_reciprocal,
    quadratic_rsqrt,
    quadratic_sqrt,
)
from repro.hardware import dw_reciprocal, ihw_reciprocal, quadratic_sfu

positive32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=2.0**-99,
    max_value=2.0**99,
)


class TestAccuracy:
    def test_rcp_bound(self):
        rng = np.random.default_rng(50)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        rel = np.abs(quadratic_reciprocal(x).astype(np.float64) * x - 1.0)
        assert rel.max() <= QUADRATIC_RCP_MAX_ERROR + 1e-4

    def test_rsqrt_bound(self):
        rng = np.random.default_rng(51)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        rel = np.abs(
            quadratic_rsqrt(x).astype(np.float64) * np.sqrt(x.astype(np.float64)) - 1.0
        )
        assert rel.max() <= QUADRATIC_RSQRT_MAX_ERROR + 1e-4

    def test_sqrt_bound(self):
        rng = np.random.default_rng(52)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        rel = np.abs(
            quadratic_sqrt(x).astype(np.float64) / np.sqrt(x.astype(np.float64)) - 1.0
        )
        assert rel.max() <= QUADRATIC_RSQRT_MAX_ERROR + 2e-4

    def test_log2_bound(self):
        rng = np.random.default_rng(53)
        x = rng.uniform(1e-4, 1e4, 100000).astype(np.float32)
        err = np.abs(
            quadratic_log2(x).astype(np.float64) - np.log2(x.astype(np.float64))
        )
        assert err.max() <= QUADRATIC_LOG2_MAX_ABS_ERROR + 1e-4

    def test_quadratic_beats_linear(self):
        rng = np.random.default_rng(54)
        x = rng.uniform(0.01, 100, 50000).astype(np.float32)
        lin = np.abs(imprecise_reciprocal(x).astype(np.float64) * x - 1.0)
        quad = np.abs(quadratic_reciprocal(x).astype(np.float64) * x - 1.0)
        assert quad.max() < lin.max()
        assert quad.mean() < lin.mean()
        lin_rs = np.abs(
            imprecise_rsqrt(x).astype(np.float64) * np.sqrt(x.astype(np.float64)) - 1
        )
        quad_rs = np.abs(
            quadratic_rsqrt(x).astype(np.float64) * np.sqrt(x.astype(np.float64)) - 1
        )
        assert quad_rs.max() < 0.2 * lin_rs.max()

    def test_bounds_tighter_than_table1(self):
        assert QUADRATIC_RCP_MAX_ERROR < RECIPROCAL_MAX_ERROR
        assert QUADRATIC_RSQRT_MAX_ERROR < RSQRT_MAX_ERROR

    @given(positive32)
    @settings(max_examples=200, deadline=None)
    def test_rcp_bound_hypothesis(self, x):
        x32 = np.float32(x)
        out = float(quadratic_reciprocal(x32))
        if out == 0.0 or not np.isfinite(out):
            return
        assert abs(out * float(x32) - 1.0) <= QUADRATIC_RCP_MAX_ERROR + 1e-4


class TestSpecialCases:
    def test_rcp_specials(self):
        assert np.isposinf(quadratic_reciprocal(np.float32(0.0)))
        assert quadratic_reciprocal(np.float32(np.inf)) == 0.0
        assert np.isnan(quadratic_reciprocal(np.float32(np.nan)))
        assert quadratic_reciprocal(np.float32(-2.0)) < 0

    def test_rsqrt_specials(self):
        assert np.isposinf(quadratic_rsqrt(np.float32(0.0)))
        assert np.isnan(quadratic_rsqrt(np.float32(-1.0)))
        assert quadratic_rsqrt(np.float32(np.inf)) == 0.0

    def test_sqrt_specials(self):
        assert quadratic_sqrt(np.float32(0.0)) == 0.0
        assert np.isposinf(quadratic_sqrt(np.float32(np.inf)))
        assert np.isnan(quadratic_sqrt(np.float32(-4.0)))

    def test_log2_specials(self):
        assert np.isneginf(quadratic_log2(np.float32(0.0)))
        assert np.isposinf(quadratic_log2(np.float32(np.inf)))
        assert np.isnan(quadratic_log2(np.float32(-1.0)))

    def test_float64(self):
        out = quadratic_reciprocal(np.float64(3.0), dtype=np.float64)
        assert out.dtype == np.float64
        assert float(out) == pytest.approx(1 / 3, rel=0.02)


class TestHardwareCost:
    def test_quadratic_between_linear_and_dwip(self):
        quad = quadratic_sfu(32).metrics()
        lin = ihw_reciprocal(32).metrics()
        dw = dw_reciprocal(32).metrics()
        assert lin.power_mw < quad.power_mw < dw.power_mw

    def test_quadratic_roughly_double_linear(self):
        quad = quadratic_sfu(32).metrics()
        lin = ihw_reciprocal(32).metrics()
        assert 1.3 <= quad.power_mw / lin.power_mw <= 3.0

    def test_quadratic_still_order_of_magnitude_below_dwip(self):
        quad = quadratic_sfu(32).metrics()
        dw = dw_reciprocal(32).metrics()
        assert dw.power_mw / quad.power_mw > 5
