"""Tests for the binary16 (half precision) extension.

The behavioral datapaths are format-parametric, so the imprecise units
work at half precision unchanged — the accuracy knob future GPUs expose.
All Table-1 / Mitchell error bounds must hold at fp16 too (plus the
format's own quantization).
"""

import numpy as np
import pytest

from repro.core import (
    ArithmeticContext,
    BINARY16,
    FULL_PATH_MAX_ERROR,
    IHWConfig,
    IMPRECISE_MULTIPLY_MAX_ERROR,
    LOG_PATH_MAX_ERROR,
    MultiplierConfig,
    RECIPROCAL_MAX_ERROR,
    compose,
    configurable_multiply,
    decompose,
    flush_subnormals,
    format_for_dtype,
    imprecise_add,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
    truncate_mantissa,
)

FP16_ULP_SLACK = 2.0**-9  # one half-precision mantissa step


@pytest.fixture
def operands():
    rng = np.random.default_rng(60)
    a = rng.uniform(-100, 100, 20000).astype(np.float16)
    b = rng.uniform(-100, 100, 20000).astype(np.float16)
    return a, b


class TestFormat:
    def test_constants(self):
        assert BINARY16.bias == 15
        assert BINARY16.mantissa_bits == 10
        assert BINARY16.exponent_mask == 0x1F
        assert format_for_dtype(np.float16) is BINARY16

    def test_decompose_compose_roundtrip(self):
        rng = np.random.default_rng(61)
        x = rng.standard_normal(2000).astype(np.float16) * 100
        out = compose(*decompose(x, BINARY16), BINARY16)
        np.testing.assert_array_equal(out.view(np.uint16), x.view(np.uint16))

    def test_flush_subnormals(self):
        sub = np.array([6e-8], dtype=np.float16)  # subnormal fp16
        assert flush_subnormals(sub)[0] == 0.0

    def test_truncate_mantissa(self):
        out = truncate_mantissa(np.array([1.75], np.float16), 1)
        assert out[0] == np.float16(1.5)


class TestUnitsAtHalfPrecision:
    def test_table1_multiplier_bound(self, operands):
        a, b = operands
        true = a.astype(np.float64) * b.astype(np.float64)
        out = imprecise_multiply(a, b, dtype=np.float16).astype(np.float64)
        rel = np.abs(out / true - 1)
        assert rel.max() <= IMPRECISE_MULTIPLY_MAX_ERROR + FP16_ULP_SLACK

    def test_table1_worst_case_value(self):
        out = imprecise_multiply(np.float16(1.75), np.float16(1.75), dtype=np.float16)
        assert out == np.float16(2.5)

    def test_configurable_paths_bounds(self, operands):
        a, b = operands
        true = a.astype(np.float64) * b.astype(np.float64)
        full = configurable_multiply(
            a, b, MultiplierConfig("full", 0), dtype=np.float16
        ).astype(np.float64)
        log = configurable_multiply(
            a, b, MultiplierConfig("log", 0), dtype=np.float16
        ).astype(np.float64)
        assert np.abs(full / true - 1).max() <= FULL_PATH_MAX_ERROR + FP16_ULP_SLACK
        assert np.abs(log / true - 1).max() <= LOG_PATH_MAX_ERROR + FP16_ULP_SLACK

    def test_truncation_supported(self, operands):
        a, b = operands
        out = configurable_multiply(a, b, MultiplierConfig("log", 6), dtype=np.float16)
        true = a.astype(np.float64) * b.astype(np.float64)
        emax = np.abs(out.astype(np.float64) / true - 1).max()
        assert 0.11 <= emax <= 0.20  # the lp_tr19-equivalent band at fp16

    def test_adder_bound(self, operands):
        a, b = operands
        same_sign = np.sign(a) == np.sign(b)
        out = imprecise_add(a, b, threshold=4, dtype=np.float16).astype(np.float64)
        true = a.astype(np.float64) + b.astype(np.float64)
        keep = same_sign & (true != 0)
        rel = np.abs((out[keep] - true[keep]) / true[keep])
        assert rel.max() <= 2.0**-3 + FP16_ULP_SLACK

    def test_reciprocal_bound(self):
        rng = np.random.default_rng(62)
        x = rng.uniform(0.01, 100, 10000).astype(np.float16)
        out = imprecise_reciprocal(x, dtype=np.float16).astype(np.float64)
        rel = np.abs(out * x.astype(np.float64) - 1)
        assert rel.max() <= RECIPROCAL_MAX_ERROR + 2 * FP16_ULP_SLACK

    def test_rsqrt_runs(self):
        out = imprecise_rsqrt(np.float16(4.0), dtype=np.float16)
        assert float(out) == pytest.approx(0.5, rel=0.12)

    def test_specials(self):
        assert np.isnan(imprecise_multiply(np.float16(np.inf), np.float16(0), dtype=np.float16))
        assert np.isposinf(
            imprecise_add(np.float16(np.inf), np.float16(1), dtype=np.float16)
        )

    def test_overflow_to_inf(self):
        big = np.float16(60000.0)
        assert np.isposinf(imprecise_multiply(big, big, dtype=np.float16))


class TestContextAtHalfPrecision:
    def test_context_accepts_float16(self):
        ctx = ArithmeticContext(IHWConfig.all_imprecise(), dtype=np.float16)
        out = ctx.mul(np.float16(1.75), np.float16(1.75))
        assert out.dtype == np.float16
        assert float(out) == 2.5

    def test_counts(self):
        ctx = ArithmeticContext(dtype=np.float16)
        ctx.add(np.ones(7, np.float16), np.ones(7, np.float16))
        assert ctx.op_counts()["add"] == 7
