"""Tests for the GPU benchmark applications (hotspot, srad, raytrace, cp)."""

import numpy as np
import pytest

from repro.apps import cp, hotspot, raytrace, srad
from repro.core import IHWConfig
from repro.quality import mae, pratt_fom, ssim, wed


class TestHotspot:
    def test_reference_converges_above_ambient(self):
        result = hotspot.reference_run(32, 32, 40)
        temps = result.output
        assert temps.shape == (32, 32)
        assert (temps > 300).all() and (temps < 400).all()

    def test_hot_blocks_are_hotter(self):
        power = hotspot.default_power_map(32, 32)
        result = hotspot.reference_run(32, 32, 40, power_map=power)
        hot = result.output[power > power.min() * 2]
        cool = result.output[power <= power.min()]
        assert hot.mean() > cool.mean()

    def test_deterministic(self):
        a = hotspot.reference_run(16, 16, 10).output
        b = hotspot.reference_run(16, 16, 10).output
        np.testing.assert_array_equal(a, b)

    def test_imprecise_quality_small_mae(self):
        # Figure 15: no perceptible degradation with all IHW on.
        ref = hotspot.reference_run(32, 32, 40)
        imp = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 40)
        assert mae(imp.output, ref.output) < 1.0  # Kelvin
        assert wed(imp.output, ref.output) < 6.0

    def test_peaks_colocated(self):
        # The "hot spots" stay in the same cells (Figure 15c): every cell
        # the precise run puts in its hottest percentile is still in the
        # imprecise run's hottest 5%.
        ref = hotspot.reference_run(32, 32, 40)
        imp = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 40)
        ref_hot = ref.output >= np.percentile(ref.output, 99)
        imp_hot = imp.output >= np.percentile(imp.output, 95)
        assert imp_hot[ref_hot].all()

    def test_counts_scale_with_grid(self):
        small = hotspot.reference_run(16, 16, 5)
        large = hotspot.reference_run(32, 32, 5)
        assert large.op_counts["mul"] == 4 * small.op_counts["mul"]

    def test_validation(self):
        with pytest.raises(ValueError):
            hotspot.run(None, rows=2, cols=2)
        with pytest.raises(ValueError):
            hotspot.run(None, iterations=0)
        with pytest.raises(ValueError):
            hotspot.run(None, rows=16, cols=16, power_map=np.zeros((4, 4)))

    def test_arithmetic_dominated(self):
        result = hotspot.reference_run(32, 32, 10)
        assert result.counters.arithmetic_fraction() > 0.5


class TestSRAD:
    def test_diffusion_smooths_speckle(self):
        noisy, _ = srad.speckle_phantom(48, 48)
        result = srad.reference_run(48, 48, 30)
        # Variance inside homogeneous regions shrinks.
        assert result.output[10:20, 10:20].std() < noisy[10:20, 10:20].std()

    def test_edges_survive(self):
        result = srad.reference_run(48, 48, 30)
        ideal = srad.ideal_edges(48, 48)
        fom = pratt_fom(srad.detect_edges(result.output), ideal)
        noisy, _ = srad.speckle_phantom(48, 48)
        fom_noisy = pratt_fom(srad.detect_edges(noisy), ideal)
        assert fom > fom_noisy  # diffusion improves segmentation

    def test_imprecise_fom_close_to_precise(self):
        # Figure 16: imprecise FOM ~= precise FOM (0.20 vs 0.23 there).
        ref = srad.reference_run(48, 48, 30)
        imp = srad.run(IHWConfig.all_imprecise(), 48, 48, 30)
        ideal = srad.ideal_edges(48, 48)
        fom_ref = pratt_fom(srad.detect_edges(ref.output), ideal)
        fom_imp = pratt_fom(srad.detect_edges(imp.output), ideal)
        assert abs(fom_imp - fom_ref) < 0.1

    def test_output_in_range(self):
        result = srad.run(IHWConfig.all_imprecise(), 32, 32, 20)
        assert np.isfinite(result.output).all()
        assert (result.output > 0).all()

    def test_phantom_validation(self):
        with pytest.raises(ValueError):
            srad.speckle_phantom(8, 8)

    def test_run_validation(self):
        with pytest.raises(ValueError):
            srad.run(None, iterations=0)
        with pytest.raises(ValueError):
            srad.run(None, lam=0.0)

    def test_uses_sfu(self):
        result = srad.reference_run(32, 32, 5)
        counts = result.op_counts
        assert counts.get("rcp", 0) > 0 and counts.get("div", 0) > 0


class TestRaytrace:
    @pytest.fixture(scope="class")
    def reference(self):
        return raytrace.reference_run(64, 64)

    def test_image_shape_and_range(self, reference):
        assert reference.output.shape == (64, 64)
        assert reference.output.min() >= 0.0
        assert reference.output.max() <= 1.0

    def test_spheres_visible(self, reference):
        # The center sphere is brighter than the background corners.
        img = reference.output
        assert img[28:36, 28:36].mean() > img[:6, :6].mean()

    def test_quality_ladder_matches_figure17(self, reference):
        mild = raytrace.run(IHWConfig.units("rcp", "add", "sqrt"), 64, 64)
        rsq = raytrace.run(IHWConfig.units("rcp", "add", "sqrt", "rsqrt"), 64, 64)
        s_mild = ssim(mild.output, reference.output, data_range=1.0)
        s_rsq = ssim(rsq.output, reference.output, data_range=1.0)
        assert s_mild > 0.9  # paper: 0.95
        assert s_rsq < s_mild  # adding rsqrt costs quality

    def test_table1_multiplier_destroys_image(self, reference):
        bad = raytrace.run(IHWConfig.units("rcp", "add", "sqrt", "mul"), 64, 64)
        good = raytrace.run(
            IHWConfig.units("rcp", "add", "sqrt").with_multiplier(
                "mitchell", config="fp_tr0"
            ),
            64,
            64,
        )
        s_bad = ssim(bad.output, reference.output, data_range=1.0)
        s_good = ssim(good.output, reference.output, data_range=1.0)
        # Figure 18: the full-path multiplier recovers what Table 1 destroys.
        assert s_good > s_bad + 0.15
        assert s_good > 0.75

    def test_reflections_contribute(self):
        flat = raytrace.reference_run(32, 32, depth=0)
        shiny = raytrace.reference_run(32, 32, depth=2)
        assert not np.array_equal(flat.output, shiny.output)

    def test_validation(self):
        with pytest.raises(ValueError):
            raytrace.run(None, width=4, height=4)
        with pytest.raises(ValueError):
            raytrace.run(None, depth=-1)

    def test_multiplication_heavy(self, reference):
        counts = reference.op_counts
        fpu = counts["add"] + counts["sub"] + counts["mul"]
        assert counts["mul"] / fpu > 0.3  # Table 6: mul-sensitive workload


class TestCP:
    @pytest.fixture(scope="class")
    def reference(self):
        return cp.reference_run(grid=32)

    def test_potential_finite(self, reference):
        assert np.isfinite(reference.output).all()

    def test_about_20_percent_muls_precise(self):
        result = cp.run(IHWConfig.units("mul"), grid=32)
        c = result.counters
        precise_fraction = c.precise_count("mul") / c.op_count("mul")
        assert 0.15 <= precise_fraction <= 0.35  # Table 6: ~20%

    def test_proposed_beats_truncation_at_depth(self, reference):
        # Figure 20: the configurable multiplier has lower MAE at larger
        # power reduction than intuitive truncation.
        lp = cp.run(
            IHWConfig.units("mul").with_multiplier("mitchell", config="fp_tr15"),
            grid=32,
        )
        bt = cp.run(
            IHWConfig.units("mul").with_multiplier("truncated", truncation=21),
            grid=32,
        )
        assert mae(lp.output, reference.output) < mae(bt.output, reference.output)

    def test_mae_grows_with_truncation(self, reference):
        maes = []
        for tr in (0, 10, 19):
            r = cp.run(
                IHWConfig.units("mul").with_multiplier(
                    "mitchell", config=f"lp_tr{tr}"
                ),
                grid=32,
            )
            maes.append(mae(r.output, reference.output))
        assert maes == sorted(maes)

    def test_charges_shape_field(self, reference):
        # Potential has both signs (positive and negative charges).
        assert reference.output.min() < 0 < reference.output.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            cp.run(None, grid=2)
        with pytest.raises(ValueError):
            cp.run(None, spacing=0.0)
        with pytest.raises(ValueError):
            cp.default_atoms(0)
        with pytest.raises(ValueError):
            cp.run(None, atoms=np.zeros((3, 2)))


class TestHotspotFMA:
    def test_fma_variant_matches_precise(self):
        ref = hotspot.reference_run(32, 32, 20)
        fma = hotspot.run(None, 32, 32, 20, use_fma=True)
        # Precise FMA (mul+add) equals the unfused precise form here.
        np.testing.assert_allclose(fma.output, ref.output, rtol=1e-6)

    def test_fma_variant_counts_fma_ops(self):
        result = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 10, use_fma=True)
        counts = result.op_counts
        assert counts.get("fma", 0) > 0
        # The final scale-and-accumulate fused away: 3 flux muls remain
        # per cell against 1 fma.
        assert counts["mul"] == 3 * counts["fma"]

    def test_imprecise_fma_quality_comparable(self):
        # The fused form must not be categorically worse than mul+add.
        ref = hotspot.reference_run(32, 32, 20)
        unfused = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 20)
        fused = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 20, use_fma=True)
        from repro.quality import mae as _mae

        assert _mae(fused.output, ref.output) < 3 * _mae(unfused.output, ref.output) + 0.1
