"""Tests for IHWConfig, the imprecise-hardware configuration object."""

import pytest

from repro.core import IHWConfig, MultiplierConfig, UNIT_NAMES


class TestConstruction:
    def test_precise_default(self):
        cfg = IHWConfig.precise()
        assert not cfg.enabled
        assert all(not cfg.is_enabled(u) for u in UNIT_NAMES)
        assert cfg.describe() == "precise"

    def test_all_imprecise(self):
        cfg = IHWConfig.all_imprecise()
        assert all(cfg.is_enabled(u) for u in UNIT_NAMES)
        assert cfg.adder_threshold == 8

    def test_units_constructor(self):
        cfg = IHWConfig.units("rcp", "add", "sqrt")
        assert cfg.is_enabled("rcp") and cfg.is_enabled("add") and cfg.is_enabled("sqrt")
        assert not cfg.is_enabled("mul")

    def test_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            IHWConfig(enabled=frozenset({"frobnicate"}))

    def test_rejects_unknown_multiplier_mode(self):
        with pytest.raises(ValueError):
            IHWConfig(multiplier_mode="exotic")

    def test_is_enabled_rejects_unknown(self):
        with pytest.raises(ValueError):
            IHWConfig.precise().is_enabled("nonsense")

    def test_frozen(self):
        cfg = IHWConfig.precise()
        with pytest.raises(Exception):
            cfg.adder_threshold = 4

    def test_hashable(self):
        assert len({IHWConfig.precise(), IHWConfig.all_imprecise()}) == 2


class TestFunctionalUpdates:
    def test_with_units(self):
        cfg = IHWConfig.units("rcp").with_units("sqrt")
        assert cfg.is_enabled("sqrt") and cfg.is_enabled("rcp")

    def test_without_units(self):
        cfg = IHWConfig.all_imprecise().without_units("mul", "fma")
        assert not cfg.is_enabled("mul") and not cfg.is_enabled("fma")
        assert cfg.is_enabled("add")

    def test_with_multiplier_mitchell_by_name(self):
        cfg = IHWConfig.precise().with_multiplier("mitchell", config="lp_tr19")
        assert cfg.is_enabled("mul")
        assert cfg.multiplier_mode == "mitchell"
        assert cfg.multiplier_config == MultiplierConfig("log", 19)

    def test_with_multiplier_mitchell_by_object(self):
        cfg = IHWConfig.precise().with_multiplier(
            "mitchell", config=MultiplierConfig("full", 5)
        )
        assert cfg.multiplier_config.truncation == 5

    def test_with_multiplier_truncated(self):
        cfg = IHWConfig.precise().with_multiplier("truncated", truncation=21)
        assert cfg.multiplier_mode == "truncated"
        assert cfg.multiplier_truncation == 21

    def test_with_multiplier_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError):
            IHWConfig.precise().with_multiplier("table1", bogus=1)

    def test_updates_do_not_mutate_original(self):
        base = IHWConfig.units("rcp")
        base.with_units("sqrt")
        assert not base.is_enabled("sqrt")


class TestDescribe:
    def test_describe_mentions_threshold(self):
        assert "TH=8" in IHWConfig.units("add").describe()

    def test_describe_mentions_multiplier_config(self):
        cfg = IHWConfig.precise().with_multiplier("mitchell", config="fp_tr0")
        assert "fp_tr0" in cfg.describe()

    def test_describe_mentions_bt(self):
        cfg = IHWConfig.precise().with_multiplier("truncated", truncation=21)
        assert "bt_21" in cfg.describe()

    def test_describe_table1(self):
        cfg = IHWConfig.units("mul")
        assert "table1" in cfg.describe()
