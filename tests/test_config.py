"""Tests for IHWConfig, the imprecise-hardware configuration object."""

import pytest

from repro.core import IHWConfig, MultiplierConfig, UNIT_NAMES


class TestConstruction:
    def test_precise_default(self):
        cfg = IHWConfig.precise()
        assert not cfg.enabled
        assert all(not cfg.is_enabled(u) for u in UNIT_NAMES)
        assert cfg.describe() == "precise"

    def test_all_imprecise(self):
        cfg = IHWConfig.all_imprecise()
        assert all(cfg.is_enabled(u) for u in UNIT_NAMES)
        assert cfg.adder_threshold == 8

    def test_units_constructor(self):
        cfg = IHWConfig.units("rcp", "add", "sqrt")
        assert cfg.is_enabled("rcp") and cfg.is_enabled("add") and cfg.is_enabled("sqrt")
        assert not cfg.is_enabled("mul")

    def test_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            IHWConfig(enabled=frozenset({"frobnicate"}))

    def test_rejects_unknown_multiplier_mode(self):
        with pytest.raises(ValueError):
            IHWConfig(multiplier_mode="exotic")

    def test_is_enabled_rejects_unknown(self):
        with pytest.raises(ValueError):
            IHWConfig.precise().is_enabled("nonsense")

    def test_frozen(self):
        cfg = IHWConfig.precise()
        with pytest.raises(Exception):
            cfg.adder_threshold = 4

    def test_hashable(self):
        assert len({IHWConfig.precise(), IHWConfig.all_imprecise()}) == 2


class TestFunctionalUpdates:
    def test_with_units(self):
        cfg = IHWConfig.units("rcp").with_units("sqrt")
        assert cfg.is_enabled("sqrt") and cfg.is_enabled("rcp")

    def test_without_units(self):
        cfg = IHWConfig.all_imprecise().without_units("mul", "fma")
        assert not cfg.is_enabled("mul") and not cfg.is_enabled("fma")
        assert cfg.is_enabled("add")

    def test_with_multiplier_mitchell_by_name(self):
        cfg = IHWConfig.precise().with_multiplier("mitchell", config="lp_tr19")
        assert cfg.is_enabled("mul")
        assert cfg.multiplier_mode == "mitchell"
        assert cfg.multiplier_config == MultiplierConfig("log", 19)

    def test_with_multiplier_mitchell_by_object(self):
        cfg = IHWConfig.precise().with_multiplier(
            "mitchell", config=MultiplierConfig("full", 5)
        )
        assert cfg.multiplier_config.truncation == 5

    def test_with_multiplier_truncated(self):
        cfg = IHWConfig.precise().with_multiplier("truncated", truncation=21)
        assert cfg.multiplier_mode == "truncated"
        assert cfg.multiplier_truncation == 21

    def test_with_multiplier_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError):
            IHWConfig.precise().with_multiplier("table1", bogus=1)

    def test_updates_do_not_mutate_original(self):
        base = IHWConfig.units("rcp")
        base.with_units("sqrt")
        assert not base.is_enabled("sqrt")


class TestDescribe:
    def test_describe_mentions_threshold(self):
        assert "TH=8" in IHWConfig.units("add").describe()

    def test_describe_mentions_multiplier_config(self):
        cfg = IHWConfig.precise().with_multiplier("mitchell", config="fp_tr0")
        assert "fp_tr0" in cfg.describe()

    def test_describe_mentions_bt(self):
        cfg = IHWConfig.precise().with_multiplier("truncated", truncation=21)
        assert "bt_21" in cfg.describe()

    def test_describe_table1(self):
        cfg = IHWConfig.units("mul")
        assert "table1" in cfg.describe()


class TestCacheKey:
    def _family(self):
        return {
            "precise": IHWConfig.precise(),
            "add": IHWConfig.units("add"),
            "add_th4": IHWConfig.units("add", adder_threshold=4),
            "add_th12": IHWConfig.units("add", adder_threshold=12),
            "mul": IHWConfig.units("mul"),
            "rcp": IHWConfig.units("rcp"),
            "add_mul": IHWConfig.units("add", "mul"),
            "all": IHWConfig.all_imprecise(),
            "all_th4": IHWConfig.all_imprecise(adder_threshold=4),
            "lp_tr0": IHWConfig.precise().with_multiplier("mitchell", config="lp_tr0"),
            "lp_tr8": IHWConfig.precise().with_multiplier("mitchell", config="lp_tr8"),
            "fp_tr0": IHWConfig.precise().with_multiplier("mitchell", config="fp_tr0"),
            "bt_8": IHWConfig.precise().with_multiplier("truncated", truncation=8),
            "bt_16": IHWConfig.precise().with_multiplier("truncated", truncation=16),
        }

    def test_distinct_configs_never_collide(self):
        family = self._family()
        keys = {name: cfg.cache_key() for name, cfg in family.items()}
        assert len(set(keys.values())) == len(family), keys

    def test_equal_configs_agree(self):
        a = IHWConfig.units("add", "mul", "rcp")
        b = IHWConfig.precise().with_units("rcp", "mul", "add")
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_enabled_set_order_independent(self):
        a = IHWConfig.units("sqrt", "add", "log2")
        b = IHWConfig.units("log2", "sqrt", "add")
        assert a.cache_key() == b.cache_key()

    def test_key_is_hex_sha256(self):
        key = IHWConfig.precise().cache_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_stable_across_instances(self):
        assert IHWConfig.all_imprecise().cache_key() == (
            IHWConfig.all_imprecise().cache_key()
        )

    def test_canonical_is_json_round_trippable(self):
        import json

        doc = IHWConfig.all_imprecise().canonical()
        assert json.loads(json.dumps(doc)) == doc
