"""Chaos suite: deterministic fault injection against the runtime.

Every recovery path the fault-tolerant runner advertises is exercised
here with real injected failures — worker crashes (``os._exit`` in a
pool worker), hangs, transient exceptions, flaky compute backends, and
corrupted cache entries — all driven by the seeded ``REPRO_FAULTS``
harness in :mod:`repro.faults`, so each scenario reproduces exactly.

The contract under test: a sweep disturbed by any of these faults
completes with results **bit-identical** to an undisturbed sequential
run, reports what happened in :class:`~repro.runtime.RunnerStats`, and
an interrupted sweep resumed with ``resume=True`` recomputes zero
already-completed configurations.

A SIGALRM watchdog guards every test: the suite's whole point is that
hangs are recovered from, so a regression that hangs the runner must
fail loudly instead of stalling the run (CI adds ``pytest-timeout`` on
top; the watchdog keeps local runs safe without it).
"""

import json
import signal

import pytest

from repro import faults
from repro.core import IHWConfig
from repro.faults import (
    BackendFault,
    FaultClause,
    FaultInjector,
    TransientFault,
    stable_fraction,
)
from repro.runtime import (
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    RetryPolicy,
    TaskFailedError,
)

SPEC = ExperimentSpec.create(
    "hotspot", metric="mae", rows=12, cols=12, iterations=2
)

#: Hard per-test deadline.  Generous: the slowest scenario (hang + pool
#: teardown + full retry) finishes in a few seconds; only a true hang
#: regression can reach it.
WATCHDOG_SECONDS = 120


@pytest.fixture(autouse=True)
def watchdog():
    def _expired(signum, frame):
        raise AssertionError(
            f"test exceeded the {WATCHDOG_SECONDS}s hang watchdog — a "
            "runtime recovery path is stuck"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def make_configs(n: int) -> dict:
    """``n`` distinct configurations with predictable names.

    Every configuration must be *distinct* (unique adder threshold) so
    each owns its own cache entry — duplicated configs share one content
    address, which would let a later twin silently heal an entry the
    corrupt-cache fault just damaged.
    """
    configs = {}
    for i in range(n):
        base = IHWConfig.all_imprecise(adder_threshold=i % 27 + 1)
        if i >= 27:  # threshold range is [1, 27]; vary a second axis
            base = base.with_multiplier("truncated", truncation=8)
        configs[f"cfg{i:02d}"] = base
    return configs


def assert_results_identical(a, b):
    assert set(a) == set(b)
    for name in a:
        assert a[name].quality == b[name].quality, name  # bitwise
        assert a[name].savings == b[name].savings, name


def fast_policy(**overrides) -> RetryPolicy:
    """Retry policy without real-time backoff (tests shouldn't sleep)."""
    defaults = dict(max_retries=3, backoff_base=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# ----------------------------------------------------------------------
# Spec grammar and determinism
# ----------------------------------------------------------------------
class TestFaultSpecGrammar:
    def test_parse_full_clause(self):
        injector = FaultInjector.parse(
            "seed=7;crash:match=cfg03,times=2;hang:seconds=1.5"
        )
        assert injector.seed == 7
        assert injector.clauses == (
            FaultClause("crash", match="cfg03", times=2),
            FaultClause("hang", seconds=1.5),
        )

    def test_empty_spec_arms_nothing(self):
        assert FaultInjector.parse("") is None
        assert FaultInjector.parse("  ") is None
        assert FaultInjector.parse("seed=3") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector.parse("meteor-strike")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector.parse("crash:severity=high")

    def test_bad_parameter_values_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector.parse("crash:times=0")
        with pytest.raises(ValueError):
            FaultInjector.parse("transient:p=1.5")
        with pytest.raises(ValueError):
            FaultInjector.parse("hang:seconds=0")

    def test_injection_context_sets_and_restores_env(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_FAULTS", "transient")
        with faults.injection("crash:match=x") as injector:
            assert os.environ["REPRO_FAULTS"] == "crash:match=x"
            assert injector.clauses[0].kind == "crash"
        assert os.environ["REPRO_FAULTS"] == "transient"

    def test_decisions_are_deterministic(self):
        first = FaultInjector.parse("seed=11;transient:p=0.5,times=3")
        second = FaultInjector.parse("seed=11;transient:p=0.5,times=3")
        keys = [f"cfg{i:02d}" for i in range(20)]
        decisions_a = [
            first._armed("transient", key, attempt) is not None
            for key in keys for attempt in range(3)
        ]
        decisions_b = [
            second._armed("transient", key, attempt) is not None
            for key in keys for attempt in range(3)
        ]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)  # p gates some

    def test_seed_changes_the_decisions(self):
        a = FaultInjector.parse("seed=1;transient:p=0.5")
        b = FaultInjector.parse("seed=2;transient:p=0.5")
        keys = [f"cfg{i:02d}" for i in range(40)]
        assert [a._armed("transient", k, 0) is None for k in keys] != [
            b._armed("transient", k, 0) is None for k in keys
        ]

    def test_stable_fraction_range_and_stability(self):
        values = {stable_fraction("a", i) for i in range(50)}
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(values) == 50  # no trivial collisions
        assert stable_fraction(1, "x", 2) == stable_fraction(1, "x", 2)

    def test_guards_raise_typed_faults(self):
        injector = FaultInjector.parse("transient;flaky-backend")
        with pytest.raises(TransientFault):
            injector.task("anything", 0)
        with pytest.raises(BackendFault):
            injector.backend("anything", 0, "fused")
        injector.backend("anything", 0, "reference")  # never on reference


# ----------------------------------------------------------------------
# Individual recovery paths
# ----------------------------------------------------------------------
class TestTransientRetry:
    def test_parallel_sweep_retries_and_completes(self, tmp_path):
        configs = make_configs(8)
        with faults.injection("transient:match=cfg02,times=1"):
            runner = ExperimentRunner(
                max_workers=2, cache=ResultCache(tmp_path),
                policy=fast_policy(),
            )
            results = runner.sweep(SPEC, configs)
        assert len(results) == len(configs)
        assert runner.stats.retries == 1
        by_name = {t.name: t for t in runner.stats.tasks}
        assert by_name["cfg02"].attempts == 2

    def test_exhausted_retries_raise_task_failed(self, tmp_path):
        with faults.injection("transient:match=cfg01,times=99"):
            runner = ExperimentRunner(
                max_workers=1, cache=ResultCache(tmp_path),
                policy=fast_policy(max_retries=2),
            )
            with pytest.raises(TaskFailedError) as excinfo:
                runner.sweep(SPEC, make_configs(4))
        assert excinfo.value.key == "cfg01"
        assert excinfo.value.attempts == 3  # 1 try + 2 retries
        assert "TransientFault" in excinfo.value.error


class TestWorkerCrashRecovery:
    def test_pool_rebuilt_and_sweep_completes(self, tmp_path):
        configs = make_configs(8)
        with faults.injection("crash:match=cfg03,times=1"):
            runner = ExperimentRunner(
                max_workers=2, cache=ResultCache(tmp_path),
                policy=fast_policy(),
            )
            results = runner.sweep(SPEC, configs)
        assert len(results) == len(configs)
        assert runner.stats.pool_rebuilds >= 1
        assert runner.stats.retries >= 1  # in-flight work was requeued

    def test_persistent_crashes_degrade_to_sequential(self, tmp_path):
        configs = make_configs(6)
        with faults.injection("crash:times=99"):
            runner = ExperimentRunner(
                max_workers=2, cache=ResultCache(tmp_path),
                policy=fast_policy(max_retries=20, pool_failure_limit=2),
            )
            results = runner.sweep(SPEC, configs)
        # The crash guard only exists in pool workers, so the degraded
        # sequential path is structurally immune and must finish.
        assert len(results) == len(configs)
        assert runner.stats.degraded
        assert runner.stats.pool_rebuilds >= 2
        assert any("degraded" in note for note in runner.stats.notes)

    def test_degraded_results_match_clean_sequential(self, tmp_path):
        configs = make_configs(6)
        clean = ExperimentRunner(max_workers=1, cache=None).sweep(
            SPEC, configs
        )
        with faults.injection("crash:times=99"):
            runner = ExperimentRunner(
                max_workers=2, cache=ResultCache(tmp_path),
                policy=fast_policy(max_retries=20, pool_failure_limit=1),
            )
            disturbed = runner.sweep(SPEC, configs)
        assert_results_identical(clean, disturbed)


class TestHangTimeout:
    def test_hung_worker_terminated_and_task_retried(self, tmp_path):
        configs = make_configs(6)
        with faults.injection("hang:match=cfg04,times=1,seconds=60"):
            runner = ExperimentRunner(
                max_workers=2, cache=ResultCache(tmp_path), chunk_size=1,
                policy=fast_policy(task_timeout=2.0),
            )
            results = runner.sweep(SPEC, configs)
        assert len(results) == len(configs)
        assert runner.stats.timeouts >= 1
        assert runner.stats.pool_rebuilds >= 1


class TestBackendFallback:
    def test_flaky_backend_falls_back_to_reference(self, tmp_path):
        configs = {
            name: config.with_backend("fused")
            for name, config in make_configs(4).items()
        }
        reference = ExperimentRunner(max_workers=1, cache=None).sweep(
            SPEC, {n: c.with_backend("reference") for n, c in configs.items()}
        )
        with faults.injection("flaky-backend:times=1"):
            runner = ExperimentRunner(
                max_workers=1, cache=ResultCache(tmp_path),
                policy=fast_policy(),
            )
            results = runner.sweep(SPEC, configs)
        assert runner.stats.fallbacks == len(configs)
        assert any("reference" in note for note in runner.stats.notes)
        by_name = {t.name: t for t in runner.stats.tasks}
        assert all(by_name[n].fallback for n in configs)
        # Parity contract: the fallback results are bit-identical.
        assert_results_identical(reference, results)

    def test_fallback_result_serves_the_original_cache_key(self, tmp_path):
        configs = {"only": IHWConfig.all_imprecise().with_backend("fused")}
        with faults.injection("flaky-backend:times=1"):
            runner = ExperimentRunner(
                max_workers=1, cache=ResultCache(tmp_path),
                policy=fast_policy(),
            )
            runner.sweep(SPEC, configs)
        # The backend field is cache-key exempt, so a later lookup under
        # the original fused config hits the fallback-computed entry.
        warm = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        warm.sweep(SPEC, configs)
        assert warm.stats.cache_hits == 1


class TestCorruptCacheRecovery:
    def test_corrupted_entry_quarantined_and_recomputed(self, tmp_path):
        configs = make_configs(6)
        with faults.injection("corrupt-cache:match=cfg02,times=1"):
            runner = ExperimentRunner(
                max_workers=1, cache=ResultCache(tmp_path),
            )
            first = runner.sweep(SPEC, configs)
        warm = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        second = warm.sweep(SPEC, configs)
        assert warm.stats.cache_misses == 1  # only the corrupted entry
        assert warm.cache.stats.quarantined == 1
        assert warm.cache.quarantine_count() == 1
        assert_results_identical(first, second)
        # Third run: fully warm again, the recomputed entry is healthy.
        third = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        third.sweep(SPEC, configs)
        assert third.stats.cache_hits == len(configs)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_interrupted_sweep_resumes_with_zero_recompute(self, tmp_path):
        configs = make_configs(8)
        # First run dies at cfg05 with no retry budget; cfg00..cfg04 are
        # checkpointed (cache + manifest) before the failure.
        with faults.injection("transient:match=cfg05,times=99"):
            runner = ExperimentRunner(
                max_workers=1, cache=ResultCache(tmp_path),
                policy=fast_policy(max_retries=0), checkpoint_every=1,
            )
            with pytest.raises(TaskFailedError):
                runner.sweep(SPEC, configs)

        manifest_path = next(tmp_path.glob("manifests/*.json"))
        doc = json.loads(manifest_path.read_text())
        assert doc["status"] == "running"
        assert doc["completed"] == [f"cfg{i:02d}" for i in range(5)]

        resumed = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path), checkpoint_every=1,
        )
        results = resumed.sweep(SPEC, configs, resume=True)
        assert len(results) == len(configs)
        assert resumed.stats.resumed_skipped == 5
        assert resumed.stats.cache_hits == 5  # zero recomputation of those
        assert resumed.stats.cache_misses == 3
        doc = json.loads(manifest_path.read_text())
        assert doc["status"] == "complete"

    def test_complete_sweep_manifest_marked_complete(self, tmp_path):
        runner = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path), checkpoint_every=2,
        )
        runner.sweep(SPEC, make_configs(4))
        doc = json.loads(next(tmp_path.glob("manifests/*.json")).read_text())
        assert doc["status"] == "complete"
        assert len(doc["completed"]) == 4

    def test_different_sweeps_get_different_manifests(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(max_workers=1, cache=cache)
        runner.sweep(SPEC, make_configs(2))
        runner.sweep(SPEC, make_configs(3))
        assert len(list(tmp_path.glob("manifests/*.json"))) == 2


# ----------------------------------------------------------------------
# Acceptance scenario (ISSUE.md): combined faults, bit-identical outcome
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    def test_combined_faults_sweep_is_bit_identical(self, tmp_path):
        """Crash + hang + corrupt cache entry in one >=32-config sweep."""
        configs = make_configs(32)
        clean = ExperimentRunner(max_workers=1, cache=None).sweep(
            SPEC, configs
        )

        # The crash charges one attempt to every in-flight task, so the
        # hang is armed for two attempts — whichever attempt cfg07 runs
        # at after the crash recovery, it hangs at least once.
        spec_string = (
            "seed=5;"
            "crash:match=cfg03,times=1;"
            "hang:match=cfg07,times=2,seconds=60;"
            "corrupt-cache:match=cfg05,times=1"
        )
        with faults.injection(spec_string):
            runner = ExperimentRunner(
                max_workers=2, cache=ResultCache(tmp_path), chunk_size=1,
                policy=fast_policy(task_timeout=3.0),
                checkpoint_every=4,
            )
            disturbed = runner.sweep(SPEC, configs)

        # 1. The sweep completed, bit-identical to the clean run.
        assert_results_identical(clean, disturbed)
        # 2. The stats report the recovery work.
        stats = runner.stats
        assert stats.retries >= 2  # crash requeue + hang retry at minimum
        assert stats.timeouts >= 1
        assert stats.pool_rebuilds >= 2  # one crash, one hang termination
        assert stats.had_faults
        assert stats.reliability_summary() in stats.summary()

        # 3. The corrupted entry is quarantined and recomputed on the
        #    next run; everything else is served from cache.
        warm = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        again = warm.sweep(SPEC, configs)
        assert warm.stats.cache_misses == 1
        assert warm.cache.stats.quarantined == 1
        assert_results_identical(clean, again)

        # 4. A resume pass recomputes zero configurations.
        resumed = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path)
        )
        resumed.sweep(SPEC, configs, resume=True)
        assert resumed.stats.cache_misses == 0
        assert resumed.stats.resumed_skipped == len(configs)
