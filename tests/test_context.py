"""Tests for the instrumented ArithmeticContext."""

import numpy as np
import pytest

from repro.core import ArithmeticContext, IHWConfig, OP_UNIT_CLASS


class TestPreciseDispatch:
    def test_precise_matches_numpy(self):
        ctx = ArithmeticContext()
        a = np.array([1.5, -2.25], dtype=np.float32)
        b = np.array([0.5, 4.0], dtype=np.float32)
        np.testing.assert_array_equal(ctx.add(a, b), a + b)
        np.testing.assert_array_equal(ctx.sub(a, b), a - b)
        np.testing.assert_array_equal(ctx.mul(a, b), a * b)
        np.testing.assert_array_equal(ctx.div(a, b), a / b)

    def test_precise_special_functions(self):
        ctx = ArithmeticContext()
        x = np.array([4.0, 9.0], dtype=np.float32)
        np.testing.assert_allclose(ctx.sqrt(x), [2.0, 3.0])
        np.testing.assert_allclose(ctx.rsqrt(x), [0.5, 1.0 / 3.0], rtol=1e-6)
        np.testing.assert_allclose(ctx.rcp(x), [0.25, 1.0 / 9.0], rtol=1e-6)
        np.testing.assert_allclose(ctx.log2(x), [2.0, np.log2(9.0)], rtol=1e-6)

    def test_fma_precise(self):
        ctx = ArithmeticContext()
        out = ctx.fma(np.float32(2.0), np.float32(3.0), np.float32(1.0))
        assert out == 7.0


class TestImpreciseDispatch:
    def test_imprecise_mul_differs(self):
        ctx = ArithmeticContext(IHWConfig.units("mul"))
        out = ctx.mul(np.float32(1.75), np.float32(1.75))
        assert out == np.float32(2.5)

    def test_disabled_units_stay_precise(self):
        ctx = ArithmeticContext(IHWConfig.units("mul"))
        out = ctx.add(np.float32(1.75), np.float32(1.75))
        assert out == np.float32(3.5)

    def test_precise_flag_overrides(self):
        ctx = ArithmeticContext(IHWConfig.units("mul"))
        out = ctx.mul(np.float32(1.75), np.float32(1.75), precise=True)
        assert out == np.float32(3.0625)

    def test_mitchell_multiplier_mode(self):
        cfg = IHWConfig.precise().with_multiplier("mitchell", config="fp_tr0")
        ctx = ArithmeticContext(cfg)
        a = np.float32(1.3)
        b = np.float32(2.7)
        out = float(ctx.mul(a, b))
        assert out == pytest.approx(float(a) * float(b), rel=0.021)

    def test_truncated_multiplier_mode(self):
        cfg = IHWConfig.precise().with_multiplier("truncated", truncation=21)
        ctx = ArithmeticContext(cfg)
        a = np.float32(1.3)
        b = np.float32(2.7)
        out = float(ctx.mul(a, b))
        assert out == pytest.approx(float(a) * float(b), rel=0.25)
        assert out != float(a) * float(b)

    def test_imprecise_add_threshold_respected(self):
        cfg = IHWConfig.units("add", adder_threshold=2)
        ctx = ArithmeticContext(cfg)
        out = ctx.add(np.float32(1024.0), np.float32(64.0))  # d = 4 > 2
        assert out == np.float32(1024.0)

    def test_sub_uses_adder_switch(self):
        ctx = ArithmeticContext(IHWConfig.units("add", adder_threshold=2))
        out = ctx.sub(np.float32(1024.0), np.float32(64.0))
        assert out == np.float32(1024.0)


class TestCounting:
    def test_counts_scalar_ops(self):
        ctx = ArithmeticContext()
        a = np.ones(10, dtype=np.float32)
        ctx.add(a, a)
        ctx.mul(a, a)
        ctx.mul(a, a)
        counts = ctx.op_counts()
        assert counts["add"] == 10
        assert counts["mul"] == 20

    def test_counts_by_class(self):
        ctx = ArithmeticContext()
        a = np.ones(5, dtype=np.float32)
        ctx.add(a, a)
        ctx.rsqrt(a)
        ctx.div(a, a)
        by_class = ctx.counts_by_class()
        assert by_class["FPU"] == 5
        assert by_class["SFU"] == 10

    def test_precise_and_imprecise_counted_separately(self):
        ctx = ArithmeticContext(IHWConfig.units("mul"))
        a = np.ones(4, dtype=np.float32)
        ctx.mul(a, a)
        ctx.mul(a, a, precise=True)
        assert ctx.counts[("mul", "imprecise")] == 4
        assert ctx.counts[("mul", "precise")] == 4

    def test_reset(self):
        ctx = ArithmeticContext()
        ctx.add(np.ones(3, dtype=np.float32), 1.0)
        ctx.reset_counts()
        assert not ctx.counts

    def test_broadcast_counts_result_size(self):
        ctx = ArithmeticContext()
        a = np.ones((3, 1), dtype=np.float32)
        b = np.ones((1, 4), dtype=np.float32)
        ctx.mul(a, b)
        assert ctx.op_counts()["mul"] == 12

    def test_unit_class_table_complete(self):
        assert set(OP_UNIT_CLASS.values()) == {"FPU", "SFU"}
        assert "fma" in OP_UNIT_CLASS and "log2" in OP_UNIT_CLASS


class TestDtype:
    def test_float64_context(self):
        ctx = ArithmeticContext(dtype=np.float64)
        out = ctx.mul(1.0, 2.0)
        assert out.dtype == np.float64

    def test_rejects_other_dtypes(self):
        with pytest.raises(TypeError):
            ArithmeticContext(dtype=np.int32)

    def test_array_helper(self):
        ctx = ArithmeticContext()
        assert ctx.array([1, 2]).dtype == np.float32


class TestDot3:
    def test_matches_reference(self):
        ctx = ArithmeticContext()
        out = ctx.dot3(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert float(out) == 32.0
        counts = ctx.op_counts()
        assert counts["mul"] == 3 and counts["add"] == 2
