"""Smoke tests: the example scripts must run end to end.

Only the fast examples execute fully in CI time; the slower studies are
imported and checked for a callable ``main`` so breakage is still caught.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py"]
SLOW = [
    "hotspot_power_quality.py",
    "raytrace_quality_tuning.py",
    "multiplier_design_space.py",
    "extensions_tour.py",
    "parallel_sweep.py",
]


def _load(name):
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_examples(self):
        scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
        assert len(scripts) >= 3
        assert "quickstart.py" in scripts

    @pytest.mark.parametrize("name", FAST + SLOW)
    def test_has_main(self, name):
        module = _load(name)
        assert callable(module.main)

    @pytest.mark.parametrize("name", FAST + SLOW)
    def test_docstring_present(self, name):
        module = _load(name)
        assert module.__doc__ and "Run:" in module.__doc__


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST)
    def test_runs_clean(self, name):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert len(result.stdout) > 200
