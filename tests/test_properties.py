"""Cross-module property-based tests on the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ArithmeticContext,
    IHWConfig,
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_divide,
    imprecise_fma,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
    truncate_mantissa,
    truncated_multiply,
)

finite32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=-2.0**40,
    max_value=2.0**40,
)
positive32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=2.0**-40,
    max_value=2.0**40,
)


class TestSignSymmetry:
    """Every unit commutes with negation exactly (sign logic is separate)."""

    @given(finite32, finite32)
    @settings(max_examples=200, deadline=None)
    def test_multiplier_sign_symmetry(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        pos = imprecise_multiply(a32, b32)
        neg = imprecise_multiply(-a32, b32)
        np.testing.assert_array_equal(np.abs(pos), np.abs(neg))

    @given(finite32, finite32, st.sampled_from(["log", "full"]))
    @settings(max_examples=200, deadline=None)
    def test_configurable_sign_symmetry(self, a, b, path):
        cfg = MultiplierConfig(path)
        a32, b32 = np.float32(a), np.float32(b)
        pos = configurable_multiply(a32, b32, cfg)
        neg = configurable_multiply(-a32, -b32, cfg)
        np.testing.assert_array_equal(np.asarray(pos), np.asarray(neg))

    @given(finite32, finite32)
    @settings(max_examples=200, deadline=None)
    def test_adder_negation_antisymmetry(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        s = imprecise_add(a32, b32)
        t = imprecise_add(-a32, -b32)
        np.testing.assert_array_equal(np.abs(s), np.abs(t))

    @given(positive32)
    @settings(max_examples=200, deadline=None)
    def test_reciprocal_odd(self, x):
        x32 = np.float32(x)
        assert float(imprecise_reciprocal(-x32)) == -float(imprecise_reciprocal(x32))


class TestScaleInvariance:
    """Exponent arithmetic is exact: scaling by powers of 4 commutes."""

    @given(positive32, st.integers(-10, 10))
    @settings(max_examples=200, deadline=None)
    def test_multiplier_power_of_two_scaling(self, a, k):
        a32 = np.float32(a)
        scale = np.float32(2.0**k)
        base = float(imprecise_multiply(a32, a32))
        scaled = float(imprecise_multiply(a32 * scale, a32))
        if not (np.isfinite(base) and np.isfinite(scaled)) or base == 0 or scaled == 0:
            return
        assert scaled == pytest.approx(base * float(scale), rel=1e-6)

    @given(positive32, st.integers(-8, 8))
    @settings(max_examples=200, deadline=None)
    def test_rsqrt_power_of_four_scaling(self, x, k):
        x32 = np.float32(x)
        scale = np.float32(4.0**k)
        a = float(imprecise_rsqrt(x32))
        b = float(imprecise_rsqrt(x32 * scale))
        if not (np.isfinite(a) and np.isfinite(b)) or a == 0 or b == 0:
            return
        assert b == pytest.approx(a * 2.0**-k, rel=1e-6)

    @given(positive32, st.integers(-8, 8))
    @settings(max_examples=200, deadline=None)
    def test_sqrt_power_of_four_scaling(self, x, k):
        x32 = np.float32(x)
        scale = np.float32(4.0**k)
        a = float(imprecise_sqrt(x32))
        b = float(imprecise_sqrt(x32 * scale))
        if not (np.isfinite(a) and np.isfinite(b)) or a == 0 or b == 0:
            return
        assert b == pytest.approx(a * 2.0**k, rel=1e-6)


class TestMonotonicity:
    @given(positive32, positive32)
    @settings(max_examples=200, deadline=None)
    def test_truncation_only_reduces_accuracy(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        exact = float(a32) * float(b32)
        if not np.isfinite(exact) or exact == 0:
            return
        shallow = float(configurable_multiply(a32, b32, MultiplierConfig("full", 0)))
        deep = float(configurable_multiply(a32, b32, MultiplierConfig("full", 20)))
        if not (np.isfinite(shallow) and np.isfinite(deep)):
            return
        # Deep truncation cannot be *categorically* better; allow equality
        # (power-of-two operands are exact at every truncation).
        assert abs(deep - exact) >= abs(shallow - exact) - abs(exact) * 2.0**-20

    @given(positive32)
    @settings(max_examples=100, deadline=None)
    def test_reciprocal_monotone_decreasing_locally(self, x):
        # rcp is piecewise linear with negative slope within each binade.
        x32 = np.float32(x)
        y = np.float32(x) * np.float32(1.0625)
        same_binade = np.frexp(float(x32))[1] == np.frexp(float(y))[1]
        if not same_binade:
            return
        rx = float(imprecise_reciprocal(x32))
        ry = float(imprecise_reciprocal(y))
        if not (np.isfinite(rx) and np.isfinite(ry)) or rx == 0 or ry == 0:
            return
        assert ry <= rx


class TestCompositions:
    @given(finite32, finite32, finite32)
    @settings(max_examples=150, deadline=None)
    def test_fma_matches_mul_then_add(self, a, b, c):
        a32, b32, c32 = np.float32(a), np.float32(b), np.float32(c)
        fused = imprecise_fma(a32, b32, c32)
        manual = imprecise_add(imprecise_multiply(a32, b32), c32)
        np.testing.assert_array_equal(np.asarray(fused), np.asarray(manual))

    @given(finite32, positive32)
    @settings(max_examples=150, deadline=None)
    def test_divide_matches_mul_by_reciprocal_scale(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        q = float(imprecise_divide(a32, b32))
        exact = float(a32) / float(b32)
        if exact == 0 or not np.isfinite(exact) or not np.isfinite(q) or q == 0:
            return
        assert abs(q / exact - 1) <= 0.0591 + 1e-3

    @given(finite32, finite32)
    @settings(max_examples=100, deadline=None)
    def test_context_matches_direct_unit_calls(self, a, b):
        ctx = ArithmeticContext(IHWConfig.all_imprecise())
        a32, b32 = np.float32(a), np.float32(b)
        np.testing.assert_array_equal(
            np.asarray(ctx.mul(a32, b32)), np.asarray(imprecise_multiply(a32, b32))
        )
        np.testing.assert_array_equal(
            np.asarray(ctx.add(a32, b32)), np.asarray(imprecise_add(a32, b32))
        )


class TestTruncationAlgebra:
    @given(finite32, st.integers(0, 23), st.integers(0, 23))
    @settings(max_examples=200, deadline=None)
    def test_truncate_mantissa_idempotent_and_composable(self, x, k1, k2):
        x32 = np.float32(x)
        once = truncate_mantissa(np.array([x32]), k1)
        twice = truncate_mantissa(once, k1)
        np.testing.assert_array_equal(once, twice)
        # Composing truncations equals the tighter one.
        both = truncate_mantissa(truncate_mantissa(np.array([x32]), k1), k2)
        tight = truncate_mantissa(np.array([x32]), min(k1, k2))
        np.testing.assert_array_equal(both, tight)

    @given(finite32, finite32, st.integers(0, 23))
    @settings(max_examples=150, deadline=None)
    def test_bt_multiplier_exact_on_truncated_inputs(self, a, b, tr):
        # Feeding already-truncated operands: bt changes nothing more
        # beyond its final result truncation.
        a32 = truncate_mantissa(np.array([np.float32(a)]), 23 - tr)
        b32 = truncate_mantissa(np.array([np.float32(b)]), 23 - tr)
        out = truncated_multiply(a32, b32, tr, rounding=False)
        exact = a32.astype(np.float64) * b32.astype(np.float64)
        if not np.isfinite(exact[0]) or exact[0] == 0 or not np.isfinite(out[0]):
            return
        if abs(exact[0]) < 2 * float(np.finfo(np.float32).tiny):
            return
        rel = abs(float(out[0]) - float(exact[0])) / abs(float(exact[0]))
        assert rel < 2.0**-22  # result truncation only
