"""Tests for the Table-1 imprecise FP multiplier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IMPRECISE_MULTIPLY_MAX_ERROR, imprecise_multiply

finite32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=-2.0**60,
    max_value=2.0**60,
)


def rel_error(approx, a, b):
    true = np.asarray(a, np.float64) * np.asarray(b, np.float64)
    return np.abs((np.asarray(approx, np.float64) - true) / true)


class TestKnownValues:
    def test_power_of_two_exact(self):
        # Zero mantissa fractions: no cross term is dropped.
        assert imprecise_multiply(np.float32(2.0), np.float32(4.0)) == 8.0
        assert imprecise_multiply(np.float32(0.5), np.float32(8.0)) == 4.0

    def test_one_is_identity(self):
        x = np.array([1.25, 3.5, -7.125], dtype=np.float32)
        np.testing.assert_array_equal(imprecise_multiply(x, np.float32(1.0)), x)

    def test_worst_case_value(self):
        # 1.75 * 1.75: Ma = Mb = 0.75, approx = (1 + 1.5)/2 * 2 = 2.5.
        out = imprecise_multiply(np.float32(1.75), np.float32(1.75))
        assert out == np.float32(2.5)

    def test_no_carry_case(self):
        # 1.25 * 1.5: Ma + Mb = 0.75 < 1, approx = 1.75 (true 1.875).
        out = imprecise_multiply(np.float32(1.25), np.float32(1.5))
        assert out == np.float32(1.75)

    def test_sign_rules(self):
        assert imprecise_multiply(np.float32(-2.0), np.float32(3.0)) < 0
        assert imprecise_multiply(np.float32(-2.0), np.float32(-3.0)) > 0


class TestSpecialCases:
    def test_zero(self):
        assert imprecise_multiply(np.float32(0.0), np.float32(5.5)) == 0.0
        out = imprecise_multiply(np.float32(-0.0), np.float32(5.5))
        assert out == 0.0 and np.signbit(out)

    def test_infinity(self):
        assert np.isposinf(imprecise_multiply(np.float32(np.inf), np.float32(2.0)))
        assert np.isneginf(imprecise_multiply(np.float32(np.inf), np.float32(-2.0)))

    def test_inf_times_zero_is_nan(self):
        assert np.isnan(imprecise_multiply(np.float32(np.inf), np.float32(0.0)))

    def test_nan_propagates(self):
        assert np.isnan(imprecise_multiply(np.float32(np.nan), np.float32(1.0)))

    def test_subnormal_input_flushed(self):
        out = imprecise_multiply(np.float32(1e-45), np.float32(2.0))
        assert out == 0.0

    def test_underflow_flushes_to_zero(self):
        tiny = np.float32(np.finfo(np.float32).tiny)
        out = imprecise_multiply(tiny, tiny)
        assert out == 0.0

    def test_overflow_to_infinity(self):
        big = np.float32(1e38)
        assert np.isposinf(imprecise_multiply(big, big))
        assert np.isneginf(imprecise_multiply(big, -big))


class TestErrorBound:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_max_error_25_percent(self, dtype):
        rng = np.random.default_rng(1)
        a = rng.uniform(-1e3, 1e3, 50000).astype(dtype)
        b = rng.uniform(-1e3, 1e3, 50000).astype(dtype)
        err = rel_error(imprecise_multiply(a, b, dtype=dtype), a, b)
        assert err.max() <= IMPRECISE_MULTIPLY_MAX_ERROR + 1e-7

    def test_error_approaches_bound(self):
        # Mantissas near 2.0 drive the dropped Ma*Mb term toward 25%.
        a = np.float32(1.9999999)
        err = rel_error(imprecise_multiply(a, a), a, a)
        assert err > 0.24

    def test_always_underestimates_magnitude(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(-50, 50, 20000).astype(np.float32)
        b = rng.uniform(-50, 50, 20000).astype(np.float32)
        approx = np.abs(imprecise_multiply(a, b).astype(np.float64))
        true = np.abs(a.astype(np.float64) * b.astype(np.float64))
        assert (approx <= true + 1e-12).all()

    @given(finite32, finite32)
    @settings(max_examples=400, deadline=None)
    def test_error_bound_hypothesis(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        out = imprecise_multiply(a32, b32)
        true = float(a32) * float(b32)
        if true == 0 or not np.isfinite(true):
            return
        if abs(true) < 2 * float(np.finfo(np.float32).tiny):
            return  # flushed region
        if np.isinf(out):
            return  # overflow edge
        rel = abs((float(out) - true) / true)
        # 25% algorithmic bound plus one ULP of result truncation.
        assert rel <= IMPRECISE_MULTIPLY_MAX_ERROR + 2.0 ** -22

    @given(finite32, finite32)
    @settings(max_examples=200, deadline=None)
    def test_commutative(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        x = imprecise_multiply(a32, b32)
        y = imprecise_multiply(b32, a32)
        np.testing.assert_array_equal(np.asarray(x), np.asarray(y))


class TestVectorization:
    def test_broadcasting(self):
        a = np.ones((3, 1), dtype=np.float32) * 2
        b = np.ones((1, 4), dtype=np.float32) * 3
        out = imprecise_multiply(a, b)
        assert out.shape == (3, 4)

    def test_scalar_inputs(self):
        out = imprecise_multiply(2.0, 3.0)
        assert float(out) == 6.0

    def test_output_dtype(self):
        assert imprecise_multiply(2.0, 3.0, dtype=np.float32).dtype == np.float32
        assert imprecise_multiply(2.0, 3.0, dtype=np.float64).dtype == np.float64
