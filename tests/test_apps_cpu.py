"""Tests for the CPU benchmark substitutes (179.art, 435.gromacs, 482.sphinx3)."""

import numpy as np
import pytest

from repro.apps import art, gromacs, sphinx
from repro.core import IHWConfig
from repro.quality import error_percent, word_accuracy


def mitchell(name: str) -> IHWConfig:
    return IHWConfig.units("mul").with_multiplier("mitchell", config=name)


def truncated(bits: int) -> IHWConfig:
    return IHWConfig.units("mul").with_multiplier("truncated", truncation=bits)


class TestArt:
    @pytest.fixture(scope="class")
    def reference(self):
        return art.reference_run()

    def test_recognizes_correct_object_and_location(self, reference):
        name, location, vigilance = reference.output
        assert name == "helicopter"
        assert location == (20, 12)
        assert vigilance > 0.9

    def test_recognizes_airplane_too(self):
        result = art.reference_run(target="airplane")
        assert result.output[0] == "airplane"

    def test_multiplication_dominated(self, reference):
        counts = reference.op_counts
        assert counts["mul"] / sum(counts.values()) > 0.6  # Table 6: 89%

    def test_configurable_multiplier_keeps_vigilance(self, reference):
        # Figure 21a: the proposed multiplier keeps confidence > 0.8 even
        # at deep truncation.
        for cfg in ("fp_tr44", "fp_tr48", "lp_tr48"):
            result = art.run(mitchell(cfg))
            assert result.output[0] == "helicopter"
            assert result.output[2] > 0.8

    def test_intuitive_truncation_drops_abruptly(self, reference):
        # Figure 21a: bt vigilance falls off a cliff at deep truncation.
        v_shallow = art.run(truncated(44)).output[2]
        v_deep = art.run(truncated(50)).output[2]
        assert v_deep < v_shallow - 0.1

    def test_proposed_beats_truncation_at_matched_depth(self):
        v_fp = art.run(mitchell("fp_tr48")).output[2]
        v_bt = art.run(truncated(49)).output[2]
        assert v_fp > v_bt

    def test_scene_validation(self):
        with pytest.raises(ValueError):
            art.make_scene("submarine")
        with pytest.raises(ValueError):
            art.make_scene("airplane", size=20, location=(18, 18))
        with pytest.raises(ValueError):
            art.run(None, stride=0)

    def test_templates_distinct(self):
        t = art.make_templates()
        assert not np.array_equal(t["airplane"], t["helicopter"])


class TestGromacs:
    @pytest.fixture(scope="class")
    def reference(self):
        return gromacs.reference_run()

    def test_liquid_has_negative_potential(self, reference):
        avg_pot, avg_temp = reference.output
        assert avg_pot < 0  # bound LJ fluid
        assert avg_temp > 0

    def test_deterministic(self, reference):
        again = gromacs.reference_run()
        assert again.output == reference.output

    def test_full_path_within_spec_tolerance(self, reference):
        # Figure 21b: configurable-multiplier points sit below the 1.25%
        # line at moderate truncation.
        result = gromacs.run(mitchell("fp_tr40"))
        assert error_percent(result.output[0], reference.output[0]) < 1.25

    def test_deep_intuitive_truncation_fails_spec(self, reference):
        result = gromacs.run(truncated(49))
        assert error_percent(result.output[0], reference.output[0]) > 1.25

    def test_error_generally_grows_with_bt_truncation(self, reference):
        errs = [
            error_percent(gromacs.run(truncated(tr)).output[0], reference.output[0])
            for tr in (40, 46, 49)
        ]
        assert errs[-1] > errs[0]

    def test_energy_conservation_precise(self):
        # Without a thermostat the precise trajectory must not blow up.
        result = gromacs.reference_run(steps=80)
        assert abs(result.output[0]) < 50
        assert result.output[1] < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            gromacs.run(None, steps=1)
        with pytest.raises(ValueError):
            gromacs.run(None, dt=0.0)
        with pytest.raises(ValueError):
            gromacs.initial_lattice(1)

    def test_lattice_properties(self):
        pos, vel, box = gromacs.initial_lattice(3)
        assert pos.shape == (27, 3)
        assert np.abs(vel.mean(axis=0)).max() < 1e-12  # zero net momentum
        assert box > 0


class TestSphinx:
    @pytest.fixture(scope="class")
    def reference(self):
        return sphinx.reference_run()

    def test_precise_recognizes_all_25(self, reference):
        correct, total = word_accuracy(reference.output, reference.extras["truth"])
        assert (correct, total) == (25, 25)

    def test_vocabulary_size(self):
        assert len(sphinx.VOCABULARY) == 25

    def test_prototypes_deterministic_and_distinct(self):
        a = sphinx.word_prototype(0)
        b = sphinx.word_prototype(0)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(sphinx.word_prototype(0), sphinx.word_prototype(3))

    def test_full_path_stays_high(self, reference):
        # Table 7: fp configurations recognize >= 24/25.
        truth = reference.extras["truth"]
        for cfg in ("fp_tr0", "fp_tr44", "fp_tr48"):
            correct, _ = word_accuracy(sphinx.run(mitchell(cfg)).output, truth)
            assert correct >= 24

    def test_log_path_worse_than_full_path(self, reference):
        truth = reference.extras["truth"]
        lp, _ = word_accuracy(sphinx.run(mitchell("lp_tr44")).output, truth)
        fp, _ = word_accuracy(sphinx.run(mitchell("fp_tr44")).output, truth)
        assert lp <= fp
        assert lp >= 20  # Table 7 floor is 21

    def test_boundary_tokens_flip_first(self, reference):
        # Misrecognitions land on the engineered confusable tokens.
        truth = reference.extras["truth"]
        out = sphinx.run(mitchell("lp_tr44")).output
        wrong = {t for t, r in zip(truth, out) if t != r}
        boundary = {w for w, _, _ in sphinx._BOUNDARY_TOKENS}
        assert wrong <= boundary

    def test_word_prototype_validation(self):
        with pytest.raises(ValueError):
            sphinx.word_prototype(99)
