"""Tests for fleet-grade resilience: placement, breakers, hedging,
failover, draining, readiness, and the durable queue journal.

The contract under test mirrors docs/SERVICE.md's fleet section: a
:class:`~repro.service.FleetClient` over N ``repro serve`` instances
answers bit-identically to a clean single-node run — through rendezvous
placement, through a partitioned member, through a hedged straggler, and
through a node killed mid-sweep — and a restarted node's journal replay
recomputes zero completed configurations.
"""

import io
import socket
import sys
import time

import pytest

from repro import faults
from repro.core import IHWConfig
from repro.runtime import (
    DirectoryBackend,
    ExperimentSpec,
    ResultCache,
    entry_key,
)
from repro.service import (
    CircuitBreaker,
    FleetClient,
    FleetError,
    QueueJournal,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SweepService,
    canonical_json,
    rendezvous_rank,
    serve_in_thread,
)

TINY = ExperimentSpec.create("hotspot", metric="mae",
                             rows=8, cols=8, iterations=2)
TINY_PARAMS = {"rows": 8, "cols": 8, "iterations": 2}

CONFIGS = {
    "precise": IHWConfig.precise(),
    "add": IHWConfig.units("add"),
    "all": IHWConfig.all_imprecise(),
}


def start_node(cache_dir, **overrides):
    return serve_in_thread(ServiceConfig(cache_dir=str(cache_dir),
                                         **overrides))


def tiny_sweep(client, configs=None, **kwargs):
    configs = CONFIGS if configs is None else configs
    return client.sweep("hotspot", configs=configs, params=TINY_PARAMS,
                        metric="mae", **kwargs)


def ground_truth(tmp_path, seed=0, configs=None):
    """Results of a clean single-node run on a fresh cache."""
    handle = start_node(tmp_path / "ground_truth")
    try:
        return tiny_sweep(ServiceClient(handle.base_url),
                          configs=configs, seed=seed)["results"]
    finally:
        handle.stop()


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.admittable()
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert not breaker.admittable()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "half-open"
        # admittable() is non-mutating: asking twice consumes nothing.
        assert breaker.admittable()
        assert breaker.admittable()
        assert breaker.allow()  # the single probe slot
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        clock.advance(4.9)
        assert breaker.state == "open"  # cooldown restarted at the probe
        clock.advance(0.1)
        assert breaker.state == "half-open"

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=-1.0)


# ----------------------------------------------------------------------
# Rendezvous placement
# ----------------------------------------------------------------------
class TestRendezvous:
    MEMBERS = ["10.0.0.1:8642", "10.0.0.2:8642", "10.0.0.3:8642"]

    def test_deterministic(self):
        first = rendezvous_rank("somekey", self.MEMBERS)
        assert first == rendezvous_rank("somekey", self.MEMBERS)

    def test_order_independent_of_input_order(self):
        forward = rendezvous_rank("somekey", self.MEMBERS)
        backward = rendezvous_rank("somekey", list(reversed(self.MEMBERS)))
        assert forward == backward

    def test_removing_a_loser_never_moves_other_keys(self):
        # The defining rendezvous property: dropping one member only
        # re-routes the keys that member owned.
        keys = [f"key{i}" for i in range(50)]
        owners = {k: rendezvous_rank(k, self.MEMBERS)[0] for k in keys}
        survivors = self.MEMBERS[:-1]
        dead = self.MEMBERS[-1]
        for key in keys:
            new_owner = rendezvous_rank(key, survivors)[0]
            if owners[key] != dead:
                assert new_owner == owners[key]

    def test_accepts_objects_with_netloc(self):
        class Node:
            def __init__(self, netloc):
                self.netloc = netloc

        nodes = [Node(n) for n in self.MEMBERS]
        ranked = rendezvous_rank("somekey", nodes)
        assert [n.netloc for n in ranked] == \
            rendezvous_rank("somekey", self.MEMBERS)

    def test_spreads_keys_across_members(self):
        owners = {rendezvous_rank(f"key{i}", self.MEMBERS)[0]
                  for i in range(100)}
        assert owners == set(self.MEMBERS)


# ----------------------------------------------------------------------
# Fleet member parsing
# ----------------------------------------------------------------------
class TestFleetMembers:
    def test_comma_string_and_bare_netlocs(self):
        fleet = FleetClient("127.0.0.1:1001, http://127.0.0.1:1002")
        assert fleet.members == ["127.0.0.1:1001", "127.0.0.1:1002"]

    def test_list_input(self):
        fleet = FleetClient(["http://127.0.0.1:1001"])
        assert fleet.members == ["127.0.0.1:1001"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            FleetClient("")
        with pytest.raises(ValueError, match="at least one member"):
            FleetClient([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetClient("127.0.0.1:1001,http://127.0.0.1:1001")

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            FleetClient(["https://127.0.0.1:1001"])


# ----------------------------------------------------------------------
# Queue journal (unit)
# ----------------------------------------------------------------------
class TestQueueJournal:
    def journal(self, tmp_path, **kwargs):
        return QueueJournal(tmp_path / "queue.journal", **kwargs)

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert self.journal(tmp_path).replay() == []

    def test_done_retires_admits(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.admit("k1", {"app": "a"}, {"c": 1})
        journal.admit("k2", {"app": "a"}, {"c": 2})
        journal.done("k1")
        journal.close()
        orphans = self.journal(tmp_path).replay()
        assert [record["key"] for record in orphans] == ["k2"]
        assert orphans[0]["spec"] == {"app": "a"}
        assert orphans[0]["config"] == {"c": 2}

    def test_replay_survives_torn_tail(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.admit("k1", {}, {})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"op":"admit","key":"torn')  # no newline
        orphans = self.journal(tmp_path).replay()
        assert [record["key"] for record in orphans] == ["k1"]

    def test_reset_truncates(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.admit("k1", {}, {})
        journal.reset()
        assert journal.path.read_text() == ""
        assert self.journal(tmp_path).replay() == []

    def test_compaction_keeps_only_live_records(self, tmp_path):
        journal = self.journal(tmp_path, compact_every=2)
        for key in ("k1", "k2", "k3"):
            journal.admit(key, {}, {})
        journal.done("k1")
        journal.done("k2")  # triggers compaction
        journal.close()
        lines = [line for line in journal.path.read_text().splitlines()
                 if line.strip()]
        assert len(lines) == 1
        orphans = self.journal(tmp_path).replay()
        assert [record["key"] for record in orphans] == ["k3"]

    def test_live_counts_undelivered(self, tmp_path):
        journal = self.journal(tmp_path)
        assert journal.live == 0
        journal.admit("k1", {}, {})
        journal.admit("k2", {}, {})
        assert journal.live == 2
        journal.done("k1")
        assert journal.live == 1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="compact_every"):
            self.journal(tmp_path, compact_every=0)


# ----------------------------------------------------------------------
# Journal wired into a service instance
# ----------------------------------------------------------------------
class TestServiceJournal:
    def test_miss_is_journaled_then_retired(self, tmp_path):
        cache_dir = tmp_path / "svc_cache"
        handle = start_node(cache_dir)
        try:
            tiny_sweep(ServiceClient(handle.base_url),
                       configs={"precise": CONFIGS["precise"]})
            journal = handle.service.journal
            assert journal is not None
            assert journal.live == 0  # admitted, computed, retired
            key = entry_key(TINY, CONFIGS["precise"])
            text = journal.path.read_text()
            assert f'"key":"{key}"' in text
            assert '"op":"admit"' in text and '"op":"done"' in text
            assert ServiceClient(handle.base_url).queuez()["journal"]
        finally:
            handle.stop()

    def test_no_journal_flag(self, tmp_path):
        cache_dir = tmp_path / "svc_cache"
        handle = start_node(cache_dir, journal=False)
        try:
            client = ServiceClient(handle.base_url)
            tiny_sweep(client, configs={"precise": CONFIGS["precise"]})
            assert not client.queuez()["journal"]
            assert not (cache_dir / "manifests" / "queue.journal").exists()
        finally:
            handle.stop()

    def test_replay_recovers_orphans(self, tmp_path):
        cache_dir = tmp_path / "svc_cache"
        handle = start_node(cache_dir)
        tiny_sweep(ServiceClient(handle.base_url),
                   configs={"precise": CONFIGS["precise"]})
        handle.stop()

        # Forge the journal a crashed node would leave behind: one orphan
        # already computed (the crash hit between cache write and the
        # done append), one never computed, one unparsable record, and a
        # torn final line.
        journal = QueueJournal(cache_dir / "manifests" / "queue.journal")
        journal.admit(entry_key(TINY, CONFIGS["precise"]),
                      TINY.canonical(), CONFIGS["precise"].canonical())
        journal.admit(entry_key(TINY, CONFIGS["add"]),
                      TINY.canonical(), CONFIGS["add"].canonical())
        journal.admit("feedface", {"app": "no-such-app", "metric": "mae"},
                      CONFIGS["add"].canonical())
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"op":"admit","key":"torn')

        restarted = start_node(cache_dir)
        try:
            assert restarted.service.recovered == {
                "complete": 1, "requeued": 1, "invalid": 1,
            }
            assert restarted.service.queue.drain(timeout=30.0)
            # The orphan landed in the cache through normal execution...
            local = ResultCache(backend=DirectoryBackend(cache_dir))
            assert local.document(TINY, CONFIGS["add"]) is not None
            # ...and the already-complete one was NOT recomputed.
            assert restarted.service.queue.executions == 1
            assert restarted.service.journal.live == 0
            doc = ServiceClient(restarted.base_url).readyz()
            assert doc["recovered"] == {
                "complete": 1, "requeued": 1, "invalid": 1,
            }
        finally:
            restarted.stop()


# ----------------------------------------------------------------------
# Readiness and draining
# ----------------------------------------------------------------------
class TestReadyAndDrain:
    def test_readyz_initially_ready(self, tmp_path):
        handle = start_node(tmp_path / "svc")
        try:
            doc = ServiceClient(handle.base_url).readyz()
            assert doc["ready"] is True
            assert doc["reasons"] == []
            assert doc["draining"] is False
            assert doc["recovered"] == {"complete": 0, "requeued": 0,
                                        "invalid": 0}
        finally:
            handle.stop()

    def test_drain_rejects_cold_work_but_serves_warm(self, tmp_path):
        handle = start_node(tmp_path / "svc")
        client = ServiceClient(handle.base_url, retries=0)
        try:
            warm = tiny_sweep(client,
                              configs={"precise": CONFIGS["precise"]})
            assert client.drain()["draining"] is True
            ready = client.readyz()
            assert ready["ready"] is False
            assert "draining" in ready["reasons"]
            # Cold admissions are refused with a routable 503...
            with pytest.raises(ServiceError) as excinfo:
                tiny_sweep(client, configs={"add": CONFIGS["add"]})
            assert excinfo.value.status == 503
            # ...while warm reads keep flowing.
            again = tiny_sweep(client,
                               configs={"precise": CONFIGS["precise"]})
            assert canonical_json(again["results"]) == \
                canonical_json(warm["results"])
            # Undrain restores admissions.
            assert client.undrain()["draining"] is False
            assert client.readyz()["ready"] is True
            cold = tiny_sweep(client, configs={"add": CONFIGS["add"]})
            assert "error" not in cold["results"]["add"]
        finally:
            handle.stop()

    def test_drain_still_coalesces_onto_inflight_work(self, tmp_path):
        import concurrent.futures

        handle = start_node(tmp_path / "svc")
        queue = handle.service.queue
        client = ServiceClient(handle.base_url)
        try:
            queue.pause()
            with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(tiny_sweep, client,
                                    {"all": CONFIGS["all"]})
                deadline = time.monotonic() + 10.0
                while (queue.snapshot()["pending"] < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert queue.snapshot()["pending"] == 1
                queue.start_draining()
                # The identical request attaches to the in-flight item
                # instead of being refused: coalescing adds no work.
                second = pool.submit(tiny_sweep, client,
                                     {"all": CONFIGS["all"]})
                deadline = time.monotonic() + 10.0
                while (queue.snapshot()["coalesced"] < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert queue.snapshot()["coalesced"] == 1
                queue.resume()
                first_doc = first.result(timeout=30.0)
                second_doc = second.result(timeout=30.0)
            assert canonical_json(first_doc["results"]) == \
                canonical_json(second_doc["results"])
            assert queue.executions == 1
        finally:
            queue.resume()
            handle.stop()

    def test_readyz_reports_queue_full(self, tmp_path):
        service = SweepService(ServiceConfig(
            cache_dir=str(tmp_path / "svc"), max_pending=1, journal=False,
        ))
        try:
            service.queue.pause()
            service.queue.submit(TINY, CONFIGS["precise"],
                                 waiter=lambda doc, error: None)
            doc = service._readyz()
            assert doc["ready"] is False
            assert "queue-full" in doc["reasons"]
            service.queue.resume()
            assert service.queue.drain(timeout=30.0)
            assert service._readyz()["ready"] is True
        finally:
            service.queue.resume()
            service.close()


# ----------------------------------------------------------------------
# Fleet sweeps over live instances
# ----------------------------------------------------------------------
class TestFleetSweep:
    def test_three_nodes_bit_identical_with_rendezvous_placement(
            self, tmp_path):
        a = start_node(tmp_path / "a")
        b = start_node(tmp_path / "b", remote_cache=a.base_url)
        c = start_node(tmp_path / "c", remote_cache=a.base_url)
        try:
            fleet = FleetClient([a.base_url, b.base_url, c.base_url],
                                timeout=60.0)
            response = tiny_sweep(fleet)
            expected = ground_truth(tmp_path)
            assert canonical_json(response["results"]) == \
                canonical_json(expected)
            # Every configuration landed on its rendezvous owner.
            for name, config in CONFIGS.items():
                owner = rendezvous_rank(entry_key(TINY, config),
                                        fleet.members)[0]
                assert response["fleet"]["placement"][name] == owner
            assert response["fleet"]["hedges"] == 0
            assert response["fleet"]["failovers"] == 0
            served = response["served"]
            assert served["errors"] == 0
            assert served["hits"] + served["misses"] == len(CONFIGS)
            # A second identical sweep answers warm fleet-wide (the
            # members share one store through the cache peer surface).
            again = tiny_sweep(fleet)
            assert canonical_json(again["results"]) == \
                canonical_json(expected)
            assert again["served"]["hits"] == len(CONFIGS)
        finally:
            for handle in (a, b, c):
                handle.stop()

    def test_partitioned_member_fails_over_bit_identically(self, tmp_path):
        a = start_node(tmp_path / "a")
        b = start_node(tmp_path / "b", remote_cache=a.base_url)
        try:
            fleet = FleetClient([a.base_url, b.base_url], timeout=60.0,
                                breaker_threshold=1)
            a_netloc = f"{a.host}:{a.port}"
            b_netloc = f"{b.host}:{b.port}"
            # Ports are ephemeral, so ownership varies run to run: pick a
            # seed that places at least one configuration on the member
            # we are about to partition away.
            for seed in range(30):
                spec = ExperimentSpec.create("hotspot", metric="mae",
                                             seed=seed, **TINY_PARAMS)
                owned = [
                    name for name, config in CONFIGS.items()
                    if rendezvous_rank(entry_key(spec, config),
                                       fleet.members)[0] == b_netloc
                ]
                if owned:
                    break
            assert owned, "no seed placed work on the partitioned member"
            with faults.injection(f"partition:match=:{b.port},times=100"):
                response = tiny_sweep(fleet, seed=seed)
            expected = ground_truth(tmp_path, seed=seed)
            assert canonical_json(response["results"]) == \
                canonical_json(expected)
            # The partitioned member's keys were re-placed on the survivor.
            assert set(response["fleet"]["placement"].values()) == \
                {a_netloc}
            assert response["fleet"]["failovers"] == len(owned)
            assert fleet.status()[b_netloc]["breaker"] == "open"
        finally:
            a.stop()
            b.stop()

    def test_hedged_request_beats_a_slow_node(self, tmp_path):
        a = start_node(tmp_path / "a")
        b = start_node(tmp_path / "b", remote_cache=a.base_url)
        try:
            # Warm the shared store so the hedge answers instantly.
            direct = tiny_sweep(ServiceClient(a.base_url),
                                configs={"precise": CONFIGS["precise"]})
            fleet = FleetClient([a.base_url, b.base_url], timeout=30.0,
                                hedge_after=0.25)
            owner = rendezvous_rank(entry_key(TINY, CONFIGS["precise"]),
                                    fleet.members)[0]
            other = next(n for n in fleet.members if n != owner)
            owner_port = owner.rsplit(":", 1)[1]
            # The owner stalls on /v1/sweep only: readiness probes are
            # unaffected, so placement still targets it and the hedge
            # deadline is what rescues the request.
            spec = (f"slow-node:match=:{owner_port}/v1/sweep,"
                    f"seconds=5,times=100")
            with faults.injection(spec):
                start = time.monotonic()
                response = tiny_sweep(
                    fleet, configs={"precise": CONFIGS["precise"]})
                elapsed = time.monotonic() - start
            assert elapsed < 4.0  # did not wait out the 5s straggler
            assert response["fleet"]["hedges"] == 1
            assert response["fleet"]["placement"]["precise"] == other
            assert canonical_json(response["results"]) == \
                canonical_json(direct["results"])
        finally:
            a.stop()
            b.stop()

    def test_all_members_unreachable_raises_fleet_error(self):
        fleet = FleetClient(
            [f"127.0.0.1:{free_port()}", f"127.0.0.1:{free_port()}"],
            retries=0, probe_timeout=0.2, timeout=1.0,
        )
        with pytest.raises(FleetError, match="every fleet member"):
            tiny_sweep(fleet)

    def test_permanent_errors_propagate_without_failover(self, tmp_path):
        # A 413 means every member would refuse identically; retrying it
        # around the fleet would be noise, so it surfaces as-is.
        handle = start_node(tmp_path / "svc", max_configs=1)
        try:
            fleet = FleetClient([handle.base_url], timeout=30.0)
            with pytest.raises(ServiceError) as excinfo:
                tiny_sweep(fleet)
            assert excinfo.value.status == 413
        finally:
            handle.stop()

    def test_killed_node_fails_over_and_replays_zero_recompute(
            self, tmp_path):
        """The acceptance flow: 3 nodes, one dies mid-sweep, the fleet
        answer stays bit-identical, and the restarted node's journal
        replay recomputes nothing already on the shared store."""
        a = start_node(tmp_path / "a")
        b = start_node(tmp_path / "b", remote_cache=a.base_url)
        c = start_node(tmp_path / "c", remote_cache=a.base_url)
        a_netloc = f"{a.host}:{a.port}"
        b_netloc = f"{b.host}:{b.port}"

        # 1. C admits a full sweep it will never deliver: its queue is
        #    held, so the admits are journaled and then the node "dies".
        c.service.queue.pause()
        impatient = ServiceClient(c.base_url, timeout=0.5, retries=0)
        with pytest.raises(ServiceError):
            tiny_sweep(impatient)
        deadline = time.monotonic() + 10.0
        while (c.service.journal.live < len(CONFIGS)
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert c.service.journal.live == len(CONFIGS)
        c.stop()

        try:
            # 2. The fleet routes around the dead member; the merged
            #    answer is bit-identical to a clean single-node run.
            fleet = FleetClient([a.base_url, b.base_url, c.base_url],
                                timeout=60.0, probe_timeout=0.5)
            response = tiny_sweep(fleet)
            expected = ground_truth(tmp_path)
            assert canonical_json(response["results"]) == \
                canonical_json(expected)
            assert set(response["fleet"]["placement"].values()) <= \
                {a_netloc, b_netloc}

            # 3. Restart on C's cache dir: every orphan is already on the
            #    shared store, so replay recomputes zero configurations.
            restarted = start_node(tmp_path / "c",
                                   remote_cache=a.base_url)
            try:
                assert restarted.service.recovered == {
                    "complete": len(CONFIGS), "requeued": 0, "invalid": 0,
                }
                assert restarted.service.queue.executions == 0
                assert restarted.service.journal.live == 0
            finally:
                restarted.stop()
        finally:
            a.stop()
            b.stop()


# ----------------------------------------------------------------------
# CLI surface: repro call --fleet / --repeats / broken pipes
# ----------------------------------------------------------------------
def run_cli(*argv):
    from repro.cli import main

    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFleetCLI:
    def test_call_fleet_places_across_members(self, tmp_path):
        a = start_node(tmp_path / "a")
        b = start_node(tmp_path / "b", remote_cache=a.base_url)
        try:
            code, out = run_cli(
                "call", "hotspot",
                "--fleet", f"{a.base_url},{b.base_url}",
                "--configs", "precise|add", "--rows", "8",
                "--iterations", "2",
            )
            assert code == 0
            assert "fleet: 2 members" in out
            assert "served:" in out
        finally:
            a.stop()
            b.stop()

    def test_call_fleet_rejects_stream(self):
        code, _out = run_cli(
            "call", "hotspot", "--fleet", "127.0.0.1:1,127.0.0.1:2",
            "--stream",
        )
        assert code == 2

    def test_call_repeats_reports_percentiles(self, tmp_path):
        import json

        handle = start_node(tmp_path / "svc")
        try:
            json_path = tmp_path / "response.json"
            code, out = run_cli(
                "call", "hotspot", "--url", handle.base_url,
                "--configs", "precise", "--rows", "8",
                "--iterations", "2", "--repeats", "4",
                "--json", str(json_path),
            )
            assert code == 0
            assert "p50" in out and "p95" in out and "p99" in out
            payload = json.loads(json_path.read_text())
            for key in ("latency_p50_seconds", "latency_p95_seconds",
                        "latency_p99_seconds"):
                assert key in payload
                assert payload[key] >= 0.0
            assert payload["latency_p50_seconds"] <= \
                payload["latency_p95_seconds"] <= \
                payload["latency_p99_seconds"]
        finally:
            handle.stop()

    def test_call_survives_broken_pipe(self, tmp_path, monkeypatch):
        from repro.cli import main

        class BrokenOut:
            def write(self, text):
                raise BrokenPipeError()

            def flush(self):
                pass

        handle = start_node(tmp_path / "svc")
        try:
            # stdout without a real fd, as under a closed pipe's dup2
            # fallback: the handler must cope with both.
            monkeypatch.setattr(sys, "stdout", io.StringIO())
            code = main(
                ["call", "hotspot", "--url", handle.base_url,
                 "--configs", "precise", "--rows", "8",
                 "--iterations", "2", "--repeats", "3"],
                out=BrokenOut(),
            )
            assert code == 0
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Per-request timeout knob (ServiceClient)
# ----------------------------------------------------------------------
class TestPerRequestTimeout:
    def test_request_timeout_overrides_client_default(self, tmp_path):
        handle = start_node(tmp_path / "svc")
        client = ServiceClient(handle.base_url, timeout=30.0, retries=0)
        try:
            with faults.injection(
                "slow-response:match=/healthz,seconds=0.5,times=100"
            ):
                # A 0.1s probe gives up on the stalled response...
                with pytest.raises(ServiceError):
                    client.healthz(timeout=0.1)
                # ...while the client-wide 30s default rides it out.
                assert client.healthz()["status"] == "ok"
        finally:
            handle.stop()
