"""Tests for the gate-level PPA model and the hardware library."""

import numpy as np
import pytest

from repro.core import IHWConfig, MultiplierConfig
from repro.hardware import (
    HardwareLibrary,
    OPS,
    TABLE2_NORMALIZED,
    TABLE3_INTEGER_UNITS,
    UnitMetrics,
    adder,
    array_multiplier,
    barrel_shifter,
    bt_fp_multiplier,
    constant_multiplier,
    dw_fp_adder,
    dw_fp_multiplier,
    ihw_fp_adder,
    ihw_fp_multiplier_table1,
    mitchell_fp_multiplier,
    truncation_power_sweep,
)
from repro.hardware import blocks as B
from repro.hardware import units as U


class TestBlocks:
    def test_adder_calibrated_to_table3(self):
        # 25-bit adder: 0.24 mW / 0.31 ns (Table 3).
        blk = adder(25)
        assert blk.power_mw == pytest.approx(0.24, rel=0.05)
        assert blk.delay_ns == pytest.approx(0.31, rel=0.05)

    def test_multiplier_calibrated_to_table3(self):
        # 24x24 multiplier: 8.50 mW / 0.93 ns (Table 3).
        blk = array_multiplier(24)
        assert blk.power_mw == pytest.approx(8.50, rel=0.06)
        assert blk.delay_ns == pytest.approx(0.93, rel=0.05)

    def test_table3_power_ratio_35x(self):
        ratio = array_multiplier(24).power_mw / adder(25).power_mw
        assert 30 <= ratio <= 40  # paper: ~35x

    def test_table3_delay_ratio_3x(self):
        ratio = array_multiplier(24).delay_ns / adder(25).delay_ns
        assert 2.5 <= ratio <= 3.5  # paper: ~3x

    def test_idle_block_leakage_only(self):
        blk = adder(24)
        assert blk.idled().power_mw < 0.1 * blk.power_mw

    def test_power_scales_with_width(self):
        assert adder(48).power_mw > adder(24).power_mw
        assert array_multiplier(53).power_mw > array_multiplier(24).power_mw

    def test_shifter_log_depth(self):
        assert barrel_shifter(32).path_gates < adder(32).path_gates

    def test_constant_multiplier_cheaper_than_array(self):
        assert constant_multiplier(24).power_mw < array_multiplier(24).power_mw / 3

    def test_truncated_array_saves_power(self):
        full = B.truncated_array_multiplier(24, 24, 0)
        cut = B.truncated_array_multiplier(24, 24, 20)
        assert cut.power_mw < full.power_mw
        assert full.power_mw == pytest.approx(array_multiplier(24).power_mw, rel=1e-9)

    def test_block_validation(self):
        with pytest.raises(ValueError):
            adder(0)
        with pytest.raises(ValueError):
            array_multiplier(0)
        with pytest.raises(ValueError):
            barrel_shifter(-1)
        with pytest.raises(ValueError):
            B.mux(8, 1)
        with pytest.raises(ValueError):
            B.truncated_array_multiplier(24, 24, 50)


class TestUnitDesign:
    def test_metrics_derived(self):
        m = dw_fp_multiplier(32).metrics()
        assert m.energy_pj == pytest.approx(m.power_mw * m.latency_ns)
        assert m.edp == pytest.approx(m.energy_pj * m.latency_ns)

    def test_block_lookup(self):
        design = dw_fp_multiplier(32)
        assert design.block("rounding").name == "rounding"
        with pytest.raises(KeyError):
            design.block("nonexistent")

    def test_rounding_share_near_18_percent(self):
        design = dw_fp_multiplier(32)
        share = design.block("rounding").power_mw / design.power_mw
        assert 0.12 <= share <= 0.20  # paper cites "up to 18%"

    def test_mantissa_bits_for(self):
        assert U.mantissa_bits_for(16) == 11
        assert U.mantissa_bits_for(32) == 24
        assert U.mantissa_bits_for(64) == 53
        with pytest.raises(ValueError):
            U.mantissa_bits_for(128)


class TestTable2Bands:
    """The structural model must reproduce the Table-2 ratios in band."""

    def test_ifpmul_power_ratio(self):
        ratio = (
            ihw_fp_multiplier_table1(32).metrics().power_mw
            / dw_fp_multiplier(32).metrics().power_mw
        )
        # Paper: 0.040 (25x reduction).
        assert 0.02 <= ratio <= 0.08

    def test_ifpadd_power_ratio(self):
        ratio = (
            ihw_fp_adder(32, 8).metrics().power_mw
            / dw_fp_adder(32).metrics().power_mw
        )
        # Paper: 0.31 (69% savings).
        assert 0.1 <= ratio <= 0.5

    def test_ifpadd_latency_ratio(self):
        ratio = (
            ihw_fp_adder(32, 8).metrics().latency_ns
            / dw_fp_adder(32).metrics().latency_ns
        )
        # Paper: 0.74 (26% improvement).
        assert 0.5 <= ratio <= 0.9

    def test_isqrt_power_near_parity(self):
        # Table 2's one counter-intuitive row: isqrt costs *more* power
        # (the back-multiplier), winning only on latency/EDP.
        ratio = U.ihw_sqrt(32).metrics().power_mw / U.dw_sqrt(32).metrics().power_mw
        assert 0.5 <= ratio <= 1.5

    def test_isqrt_edp_still_wins(self):
        assert U.ihw_sqrt(32).metrics().edp < U.dw_sqrt(32).metrics().edp

    def test_ircp_cheap(self):
        ratio = (
            U.ihw_reciprocal(32).metrics().power_mw
            / U.dw_reciprocal(32).metrics().power_mw
        )
        assert ratio < 0.25

    def test_all_ihw_latencies_not_worse(self):
        lib = HardwareLibrary.analytic()
        for op in OPS:
            assert lib.ihw(op).latency_ns <= lib.dwip(op).latency_ns * 1.1


class TestFigure14Shape:
    def test_log_path_reduction_band_fp32(self):
        dw = dw_fp_multiplier(32).metrics().power_mw
        lp19 = mitchell_fp_multiplier(32, MultiplierConfig("log", 19)).metrics().power_mw
        # Paper: >25x reduction at 19 truncated bits.
        assert 20 <= dw / lp19 <= 45

    def test_log_path_reduction_band_fp64(self):
        dw = dw_fp_multiplier(64).metrics().power_mw
        lp48 = mitchell_fp_multiplier(64, MultiplierConfig("log", 48)).metrics().power_mw
        # Paper: 49x; the factor must exceed the fp32 factor.
        dw32 = dw_fp_multiplier(32).metrics().power_mw
        lp19 = mitchell_fp_multiplier(32, MultiplierConfig("log", 19)).metrics().power_mw
        assert dw / lp48 > dw32 / lp19
        assert dw / lp48 >= 40

    def test_bt_reduction_far_smaller(self):
        # Paper: intuitive truncation only reaches ~2.3-6x.
        dw = dw_fp_multiplier(32).metrics().power_mw
        bt21 = bt_fp_multiplier(32, 21).metrics().power_mw
        assert dw / bt21 <= 6.5
        lp19 = mitchell_fp_multiplier(32, MultiplierConfig("log", 19)).metrics().power_mw
        assert dw / bt21 < 0.5 * (dw / lp19)

    def test_full_path_costs_more_than_log_path(self):
        full = mitchell_fp_multiplier(32, MultiplierConfig("full", 0)).metrics()
        log = mitchell_fp_multiplier(32, MultiplierConfig("log", 0)).metrics()
        assert full.power_mw > log.power_mw  # Add1/Add3 switching vs idled

    def test_power_monotone_in_truncation(self):
        sweep = truncation_power_sweep("log", range(0, 20))
        assert (np.diff(sweep) < 0).all()

    def test_sweep_full_path(self):
        sweep = truncation_power_sweep("full", [0, 10, 19])
        assert sweep[0] > sweep[1] > sweep[2]

    def test_mitchell_rejects_full_truncation(self):
        with pytest.raises(ValueError):
            mitchell_fp_multiplier(32, MultiplierConfig("log", 24))

    def test_bt_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bt_fp_multiplier(32, 24)


class TestHardwareLibrary:
    def test_paper_library_ratios_exact(self):
        lib = HardwareLibrary.paper_45nm()
        for op, t2name in [("mul", "ifpmul"), ("add", "ifpadd"), ("rcp", "ircp")]:
            expected = TABLE2_NORMALIZED[t2name].power_mw
            assert lib.ihw(op).power_mw / lib.dwip(op).power_mw == pytest.approx(
                expected, rel=1e-9
            )

    def test_paper_library_mul_reduction_25x(self):
        lib = HardwareLibrary.paper_45nm()
        assert lib.power_reduction("mul") == pytest.approx(25.0, rel=0.01)

    def test_analytic_library_complete(self):
        lib = HardwareLibrary.analytic()
        for op in OPS:
            assert lib.dwip(op).power_mw > 0
            assert lib.ihw(op).latency_ns > 0

    def test_unknown_op_rejected(self):
        lib = HardwareLibrary.paper_45nm()
        with pytest.raises(ValueError):
            lib.dwip("tan")

    def test_metrics_for_respects_config(self):
        lib = HardwareLibrary.paper_45nm()
        cfg = IHWConfig.units("mul")
        assert lib.metrics_for("mul", cfg).power_mw < lib.dwip("mul").power_mw
        assert lib.metrics_for("add", cfg).power_mw == lib.dwip("add").power_mw

    def test_metrics_for_sub_follows_add_switch(self):
        lib = HardwareLibrary.paper_45nm()
        cfg = IHWConfig.units("add")
        assert lib.metrics_for("sub", cfg).power_mw < lib.dwip("sub").power_mw

    def test_mitchell_mul_config_scales(self):
        lib = HardwareLibrary.paper_45nm()
        cfg_lp19 = IHWConfig.precise().with_multiplier("mitchell", config="lp_tr19")
        cfg_fp0 = IHWConfig.precise().with_multiplier("mitchell", config="fp_tr0")
        assert lib.ihw("mul", cfg_lp19).power_mw < lib.ihw("mul", cfg_fp0).power_mw
        # lp_tr19 lands in the 20-45x reduction band in the paper frame too.
        red = lib.dwip("mul").power_mw / lib.ihw("mul", cfg_lp19).power_mw
        assert 20 <= red <= 45

    def test_bt_mul_config(self):
        lib = HardwareLibrary.paper_45nm()
        cfg = IHWConfig.precise().with_multiplier("truncated", truncation=21)
        red = lib.dwip("mul").power_mw / lib.ihw("mul", cfg).power_mw
        assert 2 <= red <= 6.5

    def test_table_renders(self):
        text = HardwareLibrary.paper_45nm().table()
        assert "mul" in text and "P ratio" in text

    def test_missing_op_constructor_rejected(self):
        with pytest.raises(ValueError):
            HardwareLibrary({"add": UnitMetrics(1, 1)}, {"add": UnitMetrics(1, 1)})

    def test_table3_reference_values(self):
        assert TABLE3_INTEGER_UNITS["mult24"].power_mw / TABLE3_INTEGER_UNITS[
            "add25"
        ].power_mw == pytest.approx(35.4, rel=0.01)


class TestPaperDataConsistency:
    """Integrity checks on the carried reference tables."""

    def test_table2_energy_is_power_times_latency(self):
        # The normalized energy column must equal power x latency ratios
        # within the table's two-decimal rounding.
        for name, m in TABLE2_NORMALIZED.items():
            assert m.energy_pj == pytest.approx(
                m.power_mw * m.latency_ns, abs=0.035
            ), name

    def test_table2_edp_is_energy_times_latency(self):
        for name, m in TABLE2_NORMALIZED.items():
            assert m.edp == pytest.approx(
                m.energy_pj * m.latency_ns, abs=0.04
            ), name

    def test_table2_all_ratios_positive(self):
        for m in TABLE2_NORMALIZED.values():
            assert m.power_mw > 0 and m.latency_ns > 0 and m.area > 0

    def test_table5_arith_exceeds_holistic(self):
        from repro.hardware import TABLE5_SYSTEM_SAVINGS

        for holistic, arith in TABLE5_SYSTEM_SAVINGS.values():
            assert arith > holistic

    def test_table7_scores_within_range(self):
        from repro.hardware import TABLE7_SPHINX

        assert all(0 <= v <= 25 for v in TABLE7_SPHINX.values())


class TestHalfPrecisionHardware:
    def test_fp16_units_build(self):
        from repro.hardware import mantissa_bits_for

        assert mantissa_bits_for(16) == 11
        dw = dw_fp_multiplier(16).metrics()
        ihw = ihw_fp_multiplier_table1(16).metrics()
        assert 0 < ihw.power_mw < dw.power_mw

    def test_fp16_cheaper_than_fp32(self):
        assert dw_fp_multiplier(16).metrics().power_mw < dw_fp_multiplier(
            32
        ).metrics().power_mw

    def test_fp16_mitchell_reduction_band(self):
        dw = dw_fp_multiplier(16).metrics().power_mw
        lp = mitchell_fp_multiplier(16, MultiplierConfig("log", 7)).metrics().power_mw
        # A meaningful reduction exists at half precision too, smaller than
        # fp32's (the array being replaced is only 11x11).
        assert 4 <= dw / lp <= 30
