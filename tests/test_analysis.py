"""Contract-enforcing static analysis: checkers, suppressions, baseline, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    AnalysisConfig,
    SuppressionIndex,
    load_baseline,
    make_fingerprint,
    run_analysis,
    write_baseline,
)
from repro.cli import main


# ----------------------------------------------------------------------
# Fixture packages
# ----------------------------------------------------------------------
def make_package(root: Path, files: dict) -> Path:
    """Write ``{relpath: source}`` under ``root`` and return ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


GOOD_KERNEL = """\
import numpy as np


def run(ctx, image):
    doubled = ctx.add(image, image)
    scaled = ctx.mul(doubled, np.float32(0.5))
    mean = float(np.mean(np.asarray(scaled)))
    return scaled, mean
"""

BAD_KERNEL = """\
import numpy as np


def run(ctx, image):
    device = ctx.array(image)
    doubled = device + device
    boosted = np.sqrt(device)
    total = doubled
    total += 1.0
    return doubled, boosted, total
"""

SUPPRESSED_KERNEL = """\
import numpy as np


def run(ctx, image):
    device = ctx.array(image)
    host = np.asarray(device) + 128.0  # precise: host-side (un-bias)
    return host
"""


@pytest.fixture
def config():
    return AnalysisConfig(
        package="fixture",
        layer_rules={
            "core": frozenset(),
            "apps": frozenset({"core"}),
        },
        kernel_layers=("apps",),
        worker_layers=("core", "apps", "runtime"),
    )


# ----------------------------------------------------------------------
# Op-coverage
# ----------------------------------------------------------------------
class TestOpCoverage:
    def test_clean_kernel_passes(self, tmp_path, config):
        root = make_package(tmp_path, {"apps/good.py": GOOD_KERNEL})
        report = run_analysis(root, config)
        assert report.ok
        assert report.findings == []

    def test_bypassed_op_is_caught(self, tmp_path, config):
        root = make_package(tmp_path, {"apps/bad.py": BAD_KERNEL})
        report = run_analysis(root, config)
        codes = [f.code for f in report.findings]
        assert codes.count("op-coverage") == 3  # +, np.sqrt, +=
        lines = {f.line for f in report.findings}
        assert {6, 7, 9} <= lines
        assert not report.ok

    def test_host_side_suppression_honored(self, tmp_path, config):
        root = make_package(tmp_path, {"apps/ok.py": SUPPRESSED_KERNEL})
        report = run_analysis(root, config)
        assert report.ok
        assert report.suppressed == 1

    def test_kernel_layer_scoping(self, tmp_path, config):
        # The same bypassed op outside a kernel layer is not op-coverage's
        # business (host orchestration code does arithmetic freely).
        root = make_package(tmp_path, {"core/bad.py": BAD_KERNEL})
        report = run_analysis(root, config)
        assert "op-coverage" not in {f.code for f in report.findings}

    def test_context_rebinding_tracked(self, tmp_path, config):
        source = (
            "def run(config, image):\n"
            "    c = make_context(config)\n"
            "    out = c.add(image, image)\n"
            "    return out * 2\n"
        )
        root = make_package(tmp_path, {"apps/rebind.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["op-coverage"]
        assert report.findings[0].line == 4

    def test_float_extraction_untaints(self, tmp_path, config):
        source = (
            "def run(ctx, image):\n"
            "    total = float(ctx.add(image, image).sum())\n"
            "    return total / 2.0\n"
        )
        root = make_package(tmp_path, {"apps/extract.py": source})
        report = run_analysis(root, config)
        assert report.ok


# ----------------------------------------------------------------------
# Cache-key completeness
# ----------------------------------------------------------------------
SPEC_MISSING_FIELD = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    app: str
    seed: int
    dtype: str

    def canonical(self):
        return {"app": self.app, "seed": self.seed}
"""

SPEC_COMPLETE = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    app: str
    seed: int
    dtype: str

    def canonical(self):
        return {"app": self.app, "seed": self.seed, **self._rest()}

    def _rest(self):
        return {"dtype": self.dtype}
"""


class TestCacheKey:
    def test_missing_field_flagged(self, tmp_path, config):
        root = make_package(tmp_path, {"core/spec.py": SPEC_MISSING_FIELD})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["cache-key"]
        assert "dtype" in report.findings[0].message

    def test_transitive_method_coverage(self, tmp_path, config):
        root = make_package(tmp_path, {"core/spec.py": SPEC_COMPLETE})
        report = run_analysis(root, config)
        assert report.ok

    def test_real_config_classes_are_complete(self):
        # The live contract: IHWConfig and ExperimentSpec hash every field.
        root = Path(repro.__file__).parent
        report = run_analysis(root)
        assert "cache-key" not in {f.code for f in report.findings}


# ----------------------------------------------------------------------
# Layer imports
# ----------------------------------------------------------------------
class TestLayerImports:
    def test_illegal_module_level_import(self, tmp_path, config):
        root = make_package(tmp_path, {
            "core/__init__.py": "",
            "apps/__init__.py": "",
            "core/bad.py": "from fixture.apps import thing\n",
        })
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["layer-imports"]

    def test_relative_import_resolved(self, tmp_path, config):
        root = make_package(tmp_path, {
            "core/__init__.py": "",
            "apps/__init__.py": "",
            "core/bad.py": "from ..apps import thing\n",
        })
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["layer-imports"]

    def test_allowed_and_lazy_imports_pass(self, tmp_path, config):
        root = make_package(tmp_path, {
            "core/__init__.py": "",
            "apps/__init__.py": "",
            "apps/ok.py": (
                "from fixture.core import thing\n"  # allowed direction
                "def lazy():\n"
                "    from fixture.runtime import pool\n"  # function-level
                "    return pool\n"
            ),
        })
        report = run_analysis(root, config)
        assert report.ok


# ----------------------------------------------------------------------
# Fork safety
# ----------------------------------------------------------------------
class TestForkSafety:
    def test_lambda_in_spec_flagged(self, tmp_path, config):
        source = "spec = ExperimentSpec('app', metric=lambda a, b: 0.0)\n"
        root = make_package(tmp_path, {"runtime/build.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["fork-safety"]
        assert "pickle" in report.findings[0].message

    def test_module_state_without_reset_flagged(self, tmp_path, config):
        root = make_package(tmp_path, {"runtime/state.py": "_CACHE = {}\n"})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["fork-safety"]

    def test_reset_hook_accepts_state(self, tmp_path, config):
        source = "_CACHE = {}\n\n\ndef reset():\n    _CACHE.clear()\n"
        root = make_package(tmp_path, {"runtime/state.py": source})
        report = run_analysis(root, config)
        assert report.ok

    def test_populated_registry_not_flagged(self, tmp_path, config):
        source = "RUNNERS = {'hotspot': 'repro.apps.hotspot'}\n"
        root = make_package(tmp_path, {"runtime/reg.py": source})
        report = run_analysis(root, config)
        assert report.ok


# ----------------------------------------------------------------------
# Hygiene
# ----------------------------------------------------------------------
class TestHygiene:
    def test_float_equality_flagged(self, tmp_path, config):
        source = "def f(x):\n    return x == 0.5\n"
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["hygiene-float-eq"]

    def test_bare_except_flagged(self, tmp_path, config):
        source = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 0\n"
        )
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["hygiene-bare-except"]

    def test_mutable_default_flagged(self, tmp_path, config):
        source = "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n"
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["hygiene-mutable-default"]

    def test_integer_comparison_passes(self, tmp_path, config):
        source = "def f(x):\n    return x == 0\n"
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert report.ok

    def test_broad_except_around_future_result_flagged(self, tmp_path, config):
        source = (
            "def drain(future):\n"
            "    try:\n"
            "        return future.result()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["hygiene-pool-swallow"]

    def test_bare_except_around_future_result_flagged_twice(self, tmp_path,
                                                            config):
        # A bare except on a result() call trips both the generic rule and
        # the pool-swallow rule — they diagnose different consequences.
        source = (
            "def drain(future):\n"
            "    try:\n"
            "        return future.result()\n"
            "    except:\n"
            "        return None\n"
        )
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert sorted(f.code for f in report.findings) == [
            "hygiene-bare-except", "hygiene-pool-swallow",
        ]

    def test_broken_pool_handler_exempts_broad_fallback(self, tmp_path,
                                                        config):
        source = (
            "from concurrent.futures.process import BrokenProcessPool\n"
            "\n"
            "\n"
            "def drain(future):\n"
            "    try:\n"
            "        return future.result()\n"
            "    except BrokenProcessPool:\n"
            "        raise\n"
            "    except Exception:\n"
            "        return None\n"
        )
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert report.ok

    def test_broad_except_without_result_call_passes(self, tmp_path, config):
        source = (
            "def safe(callback):\n"
            "    try:\n"
            "        return callback()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        root = make_package(tmp_path, {"core/h.py": source})
        report = run_analysis(root, config)
        assert report.ok


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_host_side(self):
        index = SuppressionIndex.from_source("x = a + b  # precise: host-side\n")
        assert index.suppresses([1], "op-coverage", "op-coverage")
        assert not index.suppresses([1], "hygiene-float-eq", "hygiene")

    def test_comment_line_above(self):
        source = "# precise: host-side (setup)\nx = a + b\n"
        index = SuppressionIndex.from_source(source)
        assert index.suppresses([2], "op-coverage", "op-coverage")
        assert not index.suppresses([1], "op-coverage", "op-coverage")

    def test_disable_specific_codes(self):
        source = "_C = {}  # repro-lint: disable=fork-safety -- memo\n"
        index = SuppressionIndex.from_source(source)
        assert index.suppresses([1], "fork-safety", "fork-safety")
        assert not index.suppresses([1], "op-coverage", "op-coverage")

    def test_disable_checker_covers_subcodes(self):
        source = "x = y == 0.5  # repro-lint: disable=hygiene\n"
        index = SuppressionIndex.from_source(source)
        assert index.suppresses([1], "hygiene-float-eq", "hygiene")

    def test_disable_all(self):
        index = SuppressionIndex.from_source("x = 1  # repro-lint: disable=all\n")
        assert index.suppresses([1], "anything", "any-checker")

    def test_multiline_span(self, tmp_path, config):
        source = (
            "def run(ctx, image):\n"
            "    d = ctx.array(image)\n"
            "    out = (\n"
            "        d + d\n"
            "    )  # precise: host-side\n"
            "    return out\n"
        )
        root = make_package(tmp_path, {"apps/multi.py": source})
        report = run_analysis(root, config)
        assert report.ok
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# Fingerprints and baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_fingerprint_survives_line_shift(self, tmp_path, config):
        before = make_package(tmp_path / "a", {"apps/k.py": BAD_KERNEL})
        shifted = make_package(
            tmp_path / "b", {"apps/k.py": "\n\n# moved\n" + BAD_KERNEL}
        )
        fp_before = {f.fingerprint for f in run_analysis(before, config).findings}
        fp_after = {f.fingerprint for f in run_analysis(shifted, config).findings}
        assert fp_before == fp_after

    def test_fingerprint_changes_with_line_content(self):
        assert make_fingerprint("c", "p.py", "x = a + b", 0) != \
            make_fingerprint("c", "p.py", "x = a + c", 0)
        # Identical lines are disambiguated by occurrence index.
        assert make_fingerprint("c", "p.py", "x = a + b", 0) != \
            make_fingerprint("c", "p.py", "x = a + b", 1)

    def test_round_trip_gates_only_new_findings(self, tmp_path, config):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        report = run_analysis(root, config)
        assert not report.ok

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        accepted = load_baseline(baseline_path)
        report2 = run_analysis(root, config, baseline_fingerprints=accepted)
        assert report2.ok
        assert len(report2.baselined_findings) == len(report.findings)

        # A new bug on top of the baseline still gates.
        (root / "apps" / "k.py").write_text(
            BAD_KERNEL + "\n\ndef extra(ctx, x):\n    return ctx.array(x) * 3\n"
        )
        report3 = run_analysis(root, config, baseline_fingerprints=accepted)
        assert not report3.ok
        assert len(report3.new_findings) == 1

    def test_stale_entries_reported(self, tmp_path, config):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        report = run_analysis(root, config)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        (root / "apps" / "k.py").write_text(GOOD_KERNEL)
        report2 = run_analysis(
            root, config, baseline_fingerprints=load_baseline(baseline_path)
        )
        assert report2.ok
        assert len(report2.stale_fingerprints) == len(report.findings)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == frozenset()

    def test_corrupt_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


# ----------------------------------------------------------------------
# CLI + the live tree
# ----------------------------------------------------------------------
class TestLintCli:
    def test_repository_is_clean(self, tmp_path, capsys):
        # The shipping contract: the real package lints clean with no
        # baseline file at all.
        code = main(["lint", "--baseline", str(tmp_path / "absent.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 new" in out

    def test_nonzero_exit_on_fixture_bug(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        code = main([
            "lint", "--path", str(root),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "op-coverage" in out

    def test_json_format(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": GOOD_KERNEL})
        code = main([
            "lint", "--path", str(root), "--format", "json",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["summary"]["ok"] is True

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", "--path", str(root), "--baseline", str(baseline),
            "--write-baseline",
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", "--path", str(root), "--baseline", str(baseline),
        ]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "bad.json"
        baseline.write_text("{not json")
        assert main(["lint", "--baseline", str(baseline)]) == 2
        assert "baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Interprocedural op-coverage (call-graph taint)
# ----------------------------------------------------------------------
ESCAPING_TAINT = """\
import numpy as np


def _scale(ctx, image):
    return ctx.mul(image, np.float32(2.0))


def run(ctx, image):
    blocks = _scale(ctx, image)
    return np.add(blocks, np.float32(1.0))
"""

METHOD_ESCAPING_TAINT = """\
class Kernel:
    def _scale(self, ctx, image):
        return ctx.mul(image, 2.0)

    def run(self, ctx, image):
        blocks = self._scale(ctx, image)
        return blocks * 2
"""


class TestInterprocOpCoverage:
    def test_taint_escaping_helper_is_caught(self, tmp_path, config):
        root = make_package(tmp_path, {"apps/k.py": ESCAPING_TAINT})
        report = run_analysis(root, config)
        interproc = [f for f in report.findings
                     if f.checker == "interproc-op-coverage"]
        assert len(interproc) >= 1
        assert interproc[0].line == 10
        assert "helper-call boundary" in interproc[0].message
        assert not report.ok

    def test_method_resolution_via_self(self, tmp_path, config):
        root = make_package(tmp_path, {"apps/k.py": METHOD_ESCAPING_TAINT})
        report = run_analysis(root, config)
        interproc = [f for f in report.findings
                     if f.checker == "interproc-op-coverage"]
        assert len(interproc) == 1
        assert interproc[0].line == 7

    def test_no_double_report_with_intra(self, tmp_path, config):
        # A site the intra-procedural checker already flags must not be
        # reported a second time by the interprocedural pass.
        root = make_package(tmp_path, {"apps/k.py": BAD_KERNEL})
        report = run_analysis(root, config)
        assert not any(f.checker == "interproc-op-coverage"
                       for f in report.findings)

    def test_host_side_suppression_round_trip(self, tmp_path, config):
        suppressed = ESCAPING_TAINT.replace(
            "return np.add(blocks, np.float32(1.0))",
            "return np.add(blocks, np.float32(1.0))  # precise: host-side",
        )
        root = make_package(tmp_path, {"apps/k.py": suppressed})
        report = run_analysis(root, config)
        assert report.ok
        assert report.suppressed == 1

    def test_param_untainted_without_tainted_caller(self, tmp_path, config):
        # A helper taking plain host arrays stays clean even though a
        # second kernel passes it device values under a different param.
        source = (
            "def _shift(image, bias):\n"
            "    return image + bias\n"
            "\n"
            "\n"
            "def host_entry(image):\n"
            "    return _shift(image, 1.0)\n"
        )
        root = make_package(tmp_path, {"apps/k.py": source})
        report = run_analysis(root, config)
        assert report.ok


# ----------------------------------------------------------------------
# Async-safety
# ----------------------------------------------------------------------
BLOCKING_SERVICE = """\
import asyncio
import time


def _lookup(key):
    return open(key).read()


async def handle(request):
    time.sleep(0.1)
    data = _lookup(request)
    return data


async def notify(request):
    asyncio.sleep(0.0)
"""

EXECUTOR_HOP_SERVICE = """\
import asyncio


def _lookup(key):
    return open(key).read()


async def handle(request):
    loop = asyncio.get_running_loop()
    data = await loop.run_in_executor(None, _lookup, request)
    await asyncio.sleep(0)
    return data
"""

ATTR_BLOCKING_SERVICE = """\
class Store:
    def read(self, key):
        return key.read_text()


class Service:
    def __init__(self):
        self.store = Store()

    async def handle(self, key):
        return self.store.read(key)
"""


class TestAsyncSafety:
    def test_blocking_coroutine_flagged(self, tmp_path, config):
        root = make_package(tmp_path, {"service/api.py": BLOCKING_SERVICE})
        report = run_analysis(root, config)
        codes = [f.code for f in report.findings]
        assert codes.count("async-safety-blocking") == 2  # sleep + _lookup
        assert codes.count("async-safety-unawaited") == 1
        blocking = [f for f in report.findings
                    if f.code == "async-safety-blocking"]
        assert {f.line for f in blocking} == {10, 11}
        # The summary witness names the blocking chain through the helper.
        helper = next(f for f in blocking if f.line == 11)
        assert "_lookup" in helper.message and "open" in helper.message

    def test_executor_hop_passes(self, tmp_path, config):
        root = make_package(tmp_path, {"service/api.py": EXECUTOR_HOP_SERVICE})
        report = run_analysis(root, config)
        assert report.ok

    def test_blocking_through_attribute_type(self, tmp_path, config):
        # self.store is typed from __init__; Store.read blocks via
        # key.read_text() — the chain must surface in the coroutine.
        root = make_package(tmp_path, {"service/api.py": ATTR_BLOCKING_SERVICE})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["async-safety-blocking"]
        assert "read_text" in report.findings[0].message

    def test_suppression_round_trip(self, tmp_path, config):
        source = BLOCKING_SERVICE.replace(
            "    time.sleep(0.1)",
            "    time.sleep(0.1)  # repro-lint: disable=async-safety -- startup settle",
        )
        root = make_package(tmp_path, {"service/api.py": source})
        report = run_analysis(root, config)
        assert "async-safety-blocking" not in {
            f.code for f in report.findings if f.line == 10
        }
        assert report.suppressed == 1

    def test_real_service_is_async_clean(self):
        root = Path(repro.__file__).parent
        report = run_analysis(root)
        assert not any(f.code.startswith("async-safety")
                       for f in report.findings)


# ----------------------------------------------------------------------
# Batch-contract
# ----------------------------------------------------------------------
BACKEND_MISSING_BATCH = """\
class ComputeBackend:
    def imprecise_add(self, a, b, threshold, dtype):
        return a

    def imprecise_add_batch(self, a, b, thresholds, dtype):
        return a


class FastBackend(ComputeBackend):
    def configurable_multiply(self, a, b, config, dtype):
        return a
"""

BACKEND_MISMATCHED_BATCH = """\
class ComputeBackend:
    def truncated_multiply(self, a, b, truncation, dtype):
        return a

    def truncated_multiply_batch(self, a, b, truncation, dtype):
        return a
"""

BACKEND_INHERITED_BATCH = """\
class ComputeBackend:
    def imprecise_add(self, a, b, threshold, dtype):
        return a

    def imprecise_add_batch(self, a, b, thresholds, dtype):
        return a


class NumbaLike(ComputeBackend):
    def imprecise_add(self, a, b, threshold, dtype):
        return b
"""


class TestBatchContract:
    def test_missing_batch_counterpart_flagged(self, tmp_path, config):
        root = make_package(tmp_path, {"core/backends.py": BACKEND_MISSING_BATCH})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["batch-contract-missing"]
        assert "configurable_multiply" in report.findings[0].message

    def test_mismatched_signature_flagged(self, tmp_path, config):
        root = make_package(tmp_path,
                            {"core/backends.py": BACKEND_MISMATCHED_BATCH})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["batch-contract-mismatch"]
        assert "truncations" in report.findings[0].message

    def test_inherited_batch_satisfies_contract(self, tmp_path, config):
        root = make_package(tmp_path,
                            {"core/backends.py": BACKEND_INHERITED_BATCH})
        report = run_analysis(root, config)
        assert report.ok

    def test_orphan_batch_flagged(self, tmp_path, config):
        source = (
            "class ComputeBackend:\n"
            "    def scaled_add_batch(self, a, b, thresholds):\n"
            "        return a\n"
        )
        root = make_package(tmp_path, {"core/backends.py": source})
        report = run_analysis(root, config)
        assert [f.code for f in report.findings] == ["batch-contract-orphan"]

    def test_axis_free_entry_point_exempt(self, tmp_path, config):
        source = (
            "class ComputeBackend:\n"
            "    def imprecise_sqrt(self, a, dtype):\n"
            "        return a\n"
        )
        root = make_package(tmp_path, {"core/backends.py": source})
        report = run_analysis(root, config)
        assert report.ok

    def test_opt_out_via_suppression(self, tmp_path, config):
        source = BACKEND_MISSING_BATCH.replace(
            "    def configurable_multiply(self, a, b, config, dtype):",
            "    def configurable_multiply(self, a, b, config, dtype):"
            "  # repro-lint: disable=batch-contract -- scalar-only op",
        )
        root = make_package(tmp_path, {"core/backends.py": source})
        report = run_analysis(root, config)
        assert report.ok
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# Worker-state
# ----------------------------------------------------------------------
WORKER_GLOBAL = """\
_MEMO = {}


def _evaluate_chunk(items):
    return [_eval(i) for i in items]


def _eval(item):
    if item not in _MEMO:
        _MEMO[item] = item + item
    return _MEMO[item]
"""

WORKER_GLOBAL_ALIASED = """\
_FRAMEWORKS = {}


def _evaluate_chunk(spec):
    return _memo(_FRAMEWORKS, spec)


def _memo(memo, spec):
    if spec not in memo:
        memo[spec] = spec
    return memo[spec]
"""


class TestWorkerState:
    def test_worker_written_global_flagged(self, tmp_path, config):
        root = make_package(tmp_path, {"runtime/state.py": WORKER_GLOBAL})
        report = run_analysis(root, config)
        ws = [f for f in report.findings if f.code == "worker-state"]
        assert len(ws) == 1
        assert "_MEMO" in ws[0].message
        assert "_evaluate_chunk" in ws[0].message

    def test_mutation_through_argument_aliasing(self, tmp_path, config):
        # The `_memo_framework(_WORKER_FRAMEWORKS, spec)` idiom: the
        # global is written through a parameter of the callee.
        root = make_package(tmp_path,
                            {"runtime/state.py": WORKER_GLOBAL_ALIASED})
        report = run_analysis(root, config)
        ws = [f for f in report.findings if f.code == "worker-state"]
        assert len(ws) == 1
        assert "_FRAMEWORKS" in ws[0].message

    def test_reset_hook_accepts_worker_state(self, tmp_path, config):
        source = WORKER_GLOBAL + "\n\ndef reset():\n    _MEMO.clear()\n"
        root = make_package(tmp_path, {"runtime/state.py": source})
        report = run_analysis(root, config)
        assert "worker-state" not in {f.code for f in report.findings}

    def test_unwritten_container_not_flagged(self, tmp_path, config):
        # A container nobody worker-reachable writes is a static table
        # (fork-safety may still warn; worker-state must not).
        source = "_TABLE = {}\n\n\ndef _evaluate_chunk(items):\n    return _TABLE\n"
        root = make_package(tmp_path, {"runtime/state.py": source})
        report = run_analysis(root, config)
        assert "worker-state" not in {f.code for f in report.findings}

    def test_suppression_round_trip(self, tmp_path, config):
        source = WORKER_GLOBAL.replace(
            "_MEMO = {}",
            "_MEMO = {}  # repro-lint: disable=worker-state,fork-safety -- per-process memo",
        )
        root = make_package(tmp_path, {"runtime/state.py": source})
        report = run_analysis(root, config)
        assert report.ok
        assert report.suppressed == 2


# ----------------------------------------------------------------------
# Fingerprint stability for the interprocedural checkers
# ----------------------------------------------------------------------
class TestInterprocFingerprints:
    @pytest.mark.parametrize("relpath,source", [
        ("apps/k.py", ESCAPING_TAINT),
        ("service/api.py", BLOCKING_SERVICE),
        ("core/backends.py", BACKEND_MISSING_BATCH),
        ("runtime/state.py", WORKER_GLOBAL),
    ])
    def test_fingerprints_survive_line_shift(self, tmp_path, config,
                                             relpath, source):
        before = make_package(tmp_path / "a", {relpath: source})
        shifted = make_package(
            tmp_path / "b", {relpath: "# moved\n# down\n\n" + source}
        )
        fp_before = {f.fingerprint
                     for f in run_analysis(before, config).findings}
        fp_after = {f.fingerprint
                    for f in run_analysis(shifted, config).findings}
        assert fp_before
        assert fp_before == fp_after


# ----------------------------------------------------------------------
# CLI satellites: sarif, --output, --changed-only, --update-baseline,
# path validation
# ----------------------------------------------------------------------
class TestLintCliSatellites:
    def test_nonexistent_path_is_usage_error(self, tmp_path, capsys):
        code = main(["lint", "--path", str(tmp_path / "nope")])
        err = capsys.readouterr().err
        assert code == 2
        assert "usage" in err

    def test_empty_package_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["lint", "--path", str(empty)])
        err = capsys.readouterr().err
        assert code == 2
        assert "no python modules" in err

    def test_sarif_format(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        code = main([
            "lint", "--path", str(root), "--format", "sarif",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert len(results) == 3
        assert all("reproLint/v1" in r["partialFingerprints"]
                   for r in results)
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert "op-coverage" in rule_ids

    def test_output_file(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": GOOD_KERNEL})
        out_path = tmp_path / "report.sarif"
        code = main([
            "lint", "--path", str(root), "--format", "sarif",
            "--output", str(out_path),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["runs"][0]["results"] == []
        assert "written to" in capsys.readouterr().out

    def test_update_baseline_prunes_stale(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", "--path", str(root), "--baseline", str(baseline),
            "--write-baseline",
        ]) == 0
        # Fix the findings; the baseline entries go stale.
        (root / "apps" / "k.py").write_text(GOOD_KERNEL)
        capsys.readouterr()
        assert main([
            "lint", "--path", str(root), "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "stale pruned" in out
        assert load_baseline(baseline) == frozenset()

    def test_update_baseline_does_not_accept_new(self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        baseline = tmp_path / "baseline.json"
        code = main([
            "lint", "--path", str(root), "--baseline", str(baseline),
            "--update-baseline",
        ])
        assert code == 1
        assert "new findings remain" in capsys.readouterr().out
        assert load_baseline(baseline) == frozenset()

    def test_changed_only_incompatible_with_baseline_writes(self, capsys):
        assert main(["lint", "--changed-only", "--write-baseline"]) == 2
        assert "changed-only" in capsys.readouterr().err

    def test_changed_only_outside_git_falls_back_to_full_scan(
            self, tmp_path, capsys):
        root = make_package(tmp_path / "pkg", {"apps/k.py": BAD_KERNEL})
        code = main([
            "lint", "--path", str(root), "--changed-only",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "op-coverage" in out

    def test_changed_only_restricts_to_diff(self, tmp_path, capsys):
        import subprocess

        root = make_package(tmp_path / "pkg", {
            "apps/bad.py": BAD_KERNEL,
            "apps/good.py": GOOD_KERNEL,
        })

        def git(*argv):
            return subprocess.run(
                ["git", "-c", "user.email=t@example.com",
                 "-c", "user.name=t", *argv],
                cwd=root, capture_output=True, text=True, check=True,
            )

        git("init", "-q")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        # Touch only the clean file: the buggy one is out of scope.
        (root / "apps" / "good.py").write_text(GOOD_KERNEL + "\n# edited\n")
        code = main([
            "lint", "--path", str(root), "--changed-only",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 new" in out
