"""Tests for the sensitivity analysis, DVFS composition, and auto-tuner."""

import pytest

from repro.core import IHWConfig, MultiplierConfig
from repro.erroranalysis import analyze_sensitivity
from repro.gpu import DVFSPoint, combined_savings, dvfs_power_scale
from repro.quality import MultiplierAutoTuner, QualityTuner


def synthetic_evaluator(penalties):
    """Quality 1.0 minus a fixed penalty per enabled unit."""

    def evaluate(config: IHWConfig) -> float:
        q = 1.0
        for unit, cost in penalties.items():
            if config.is_enabled(unit):
                q -= cost
        return q

    return evaluate


class TestSensitivityAnalysis:
    PENALTIES = {"mul": 0.4, "rsqrt": 0.25, "add": 0.05, "sqrt": 0.01}

    def test_ranking_matches_penalties(self):
        report = analyze_sensitivity(
            synthetic_evaluator(self.PENALTIES), units=tuple(self.PENALTIES)
        )
        assert report.ranking() == ("mul", "rsqrt", "add", "sqrt")
        assert report.most_sensitive() == "mul"
        assert report.least_sensitive() == "sqrt"

    def test_degradations(self):
        report = analyze_sensitivity(
            synthetic_evaluator(self.PENALTIES), units=("mul", "add")
        )
        assert report.degradation_of("mul") == pytest.approx(0.4)
        assert report.degradation_of("add") == pytest.approx(0.05)
        with pytest.raises(ValueError):
            report.degradation_of("rcp")

    def test_lower_is_better_direction(self):
        # A MAE-style metric: 0 ideal, penalties add error.
        def evaluate(config):
            return sum(
                cost for u, cost in self.PENALTIES.items() if config.is_enabled(u)
            )

        report = analyze_sensitivity(
            evaluate, units=tuple(self.PENALTIES), higher_is_better=False
        )
        assert report.ranking() == ("mul", "rsqrt", "add", "sqrt")

    def test_feeds_quality_tuner(self):
        evaluate = synthetic_evaluator(self.PENALTIES)
        report = analyze_sensitivity(evaluate, units=tuple(self.PENALTIES))
        # Pad the ranking with the unprobed units for the tuner.
        order = report.ranking() + ("fma", "div", "log2", "rcp")
        tuner = QualityTuner(evaluate, lambda q: q >= 0.9, order)
        result = tuner.tune()
        assert result.satisfied
        assert not result.config.is_enabled("mul")
        assert not result.config.is_enabled("rsqrt")
        assert result.config.is_enabled("add")

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_sensitivity(lambda c: 1.0, units=("warp",))
        with pytest.raises(ValueError):
            analyze_sensitivity(lambda c: 1.0, units=())

    def test_format_rows(self):
        report = analyze_sensitivity(
            synthetic_evaluator(self.PENALTIES), units=("mul",)
        )
        assert "mul" in report.format_rows()


class TestDVFS:
    def test_nominal_point_identity(self):
        assert dvfs_power_scale(1.0) == pytest.approx(1.0)

    def test_slowdown_saves_power_costs_energy_less(self):
        p = DVFSPoint(0.8)
        assert p.power_scale < 1.0
        assert p.runtime_scale == pytest.approx(1.25)
        # Energy saves less than power (the classic DVFS tradeoff).
        assert p.energy_scale > p.power_scale

    def test_cubic_ish_scaling(self):
        # With alpha ~0.8 dynamic power drops superlinearly with f.
        half = dvfs_power_scale(0.5, leakage_fraction=0.0)
        assert half < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            dvfs_power_scale(0.0)
        with pytest.raises(ValueError):
            dvfs_power_scale(0.5, leakage_fraction=1.5)
        with pytest.raises(ValueError):
            combined_savings(1.5, DVFSPoint(0.9))

    def test_combination_is_orthogonal(self):
        # IHW-then-DVFS equals the multiplicative composition.
        ihw = 0.30
        point = DVFSPoint(0.85)
        report = combined_savings(ihw, point)
        assert report.power_savings == pytest.approx(
            1 - (1 - ihw) * point.power_scale
        )
        # Combined beats either alone.
        assert report.power_savings > ihw
        assert report.power_savings > 1 - point.power_scale

    def test_ihw_preserves_performance(self):
        report = combined_savings(0.30, DVFSPoint(1.0))
        assert report.runtime_scale == 1.0
        assert report.power_savings == pytest.approx(0.30)
        assert report.energy_savings == pytest.approx(0.30)

    def test_report_format(self):
        text = combined_savings(0.3, DVFSPoint(0.8)).format_row()
        assert "IHW" in text and "DVFS" in text


class TestMultiplierAutoTuner:
    @staticmethod
    def _truncation_evaluator(threshold_full=15, threshold_log=5):
        """Quality passes iff truncation is shallow enough per path."""

        def evaluate(config: IHWConfig) -> float:
            if not config.is_enabled("mul"):
                return 1.0
            cfg = config.multiplier_config
            limit = threshold_full if cfg.path == "full" else threshold_log
            return 1.0 if cfg.truncation <= limit else 0.0

        return evaluate

    def test_finds_deepest_acceptable(self):
        tuner = MultiplierAutoTuner(
            self._truncation_evaluator(), lambda q: q >= 0.5, max_truncation=22
        )
        result = tuner.tune()
        assert result.satisfied
        # Deepest acceptable: full path tr=15 (power-ranked winner is the
        # one with the lowest modeled power among full tr15 / log tr5).
        assert result.multiplier.truncation in (5, 15)
        assert result.quality == 1.0

    def test_prefers_lower_power(self):
        tuner = MultiplierAutoTuner(
            self._truncation_evaluator(threshold_full=10, threshold_log=10),
            lambda q: q >= 0.5,
            max_truncation=22,
        )
        result = tuner.tune()
        # Equal truncations: the log path is cheaper.
        assert result.multiplier == MultiplierConfig("log", 10)

    def test_falls_back_to_precise(self):
        tuner = MultiplierAutoTuner(lambda c: 0.0, lambda q: q > 0.5)
        result = tuner.tune()
        assert not result.satisfied
        assert result.multiplier is None
        assert not result.config.is_enabled("mul")

    def test_evaluation_count_logarithmic(self):
        tuner = MultiplierAutoTuner(
            self._truncation_evaluator(), lambda q: q >= 0.5, max_truncation=22
        )
        result = tuner.tune()
        # Two binary searches over 22 points: well under exhaustive.
        assert result.evaluations <= 14

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiplierAutoTuner(lambda c: 1.0, lambda q: True, max_truncation=-1)

    def test_respects_base_config(self):
        base = IHWConfig.units("add", "rcp")
        tuner = MultiplierAutoTuner(
            self._truncation_evaluator(), lambda q: q >= 0.5, base_config=base
        )
        result = tuner.tune()
        assert result.config.is_enabled("add")
        assert result.config.is_enabled("rcp")
        assert result.config.is_enabled("mul")
