"""Tests for error metrics, bounds, and quasi-MC characterization."""

import math

import numpy as np
import pytest

from repro.core import FULL_PATH_MAX_ERROR, LOG_PATH_MAX_ERROR
from repro.erroranalysis import (
    ErrorPMF,
    UNIT_CHARACTERIZATIONS,
    adder_addition_bound,
    adder_case_bound,
    adder_subtraction_bound,
    bin_errors,
    characterize,
    characterize_multiplier_config,
    characterize_unit,
    error_stats,
    full_path_bound,
    log_path_bound,
    mantissa_inputs,
    mitchell_pointwise_error,
    relative_errors,
    sobol_unit,
    uniform_inputs,
)


class TestQuasiRandom:
    def test_sobol_shape_and_range(self):
        pts = sobol_unit(1000, 3)
        assert pts.shape == (1000, 3)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_sobol_more_uniform_than_pseudorandom(self):
        # Low-discrepancy: bin counts of 4096 Sobol points over 16 bins are
        # nearly exactly 256 each, unlike a pseudo-random draw.
        pts = sobol_unit(4096, 1)[:, 0]
        counts, _ = np.histogram(pts, bins=16, range=(0, 1))
        assert counts.max() - counts.min() <= 8

    def test_sobol_rejects_bad_args(self):
        with pytest.raises(ValueError):
            sobol_unit(0, 1)
        with pytest.raises(ValueError):
            sobol_unit(10, 0)

    def test_uniform_inputs(self):
        a, b = uniform_inputs(500, 2, low=2.0, high=4.0)
        assert a.dtype == np.float32
        assert (a >= 2.0).all() and (a < 4.0).all()
        assert (b >= 2.0).all() and (b < 4.0).all()

    def test_uniform_inputs_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            uniform_inputs(10, 2, low=1.0, high=1.0)

    def test_mantissa_inputs_cover_exponents(self):
        (x,) = mantissa_inputs(4096, 1, exponent_range=(-2, 2))
        exps = np.floor(np.log2(np.abs(x.astype(np.float64))))
        assert set(np.unique(exps)) == {-2, -1, 0, 1, 2}

    def test_mantissa_inputs_rejects_bad_range(self):
        with pytest.raises(ValueError):
            mantissa_inputs(10, 1, exponent_range=(3, 1))


class TestMetrics:
    def test_relative_errors_basic(self):
        rel = relative_errors([1.1, 2.0], [1.0, 2.0])
        np.testing.assert_allclose(rel, [0.1, 0.0], atol=1e-12)

    def test_relative_errors_drops_zero_exact(self):
        rel = relative_errors([1.0, 5.0], [0.0, 4.0])
        assert rel.shape == (1,)

    def test_error_stats_values(self):
        stats = error_stats([1.1, 2.0, 2.7], [1.0, 2.0, 3.0])
        assert stats.eps_max == pytest.approx(0.1)
        assert stats.error_rate == pytest.approx(2 / 3)
        assert stats.wed == pytest.approx(0.3)
        assert stats.med == pytest.approx(0.4 / 3)
        assert stats.samples == 3

    def test_error_stats_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_stats([1.0], [1.0, 2.0])

    def test_error_stats_no_valid_pairs(self):
        with pytest.raises(ValueError):
            error_stats([np.nan], [np.nan])

    def test_str_renders(self):
        s = str(error_stats([1.1], [1.0]))
        assert "eps_max" in s


class TestBinning:
    def test_bin_labels(self):
        # 3% error -> ceil(log2 3) = 2; 0.4% -> ceil(log2 0.4) = -1.
        bins, counts = bin_errors(np.array([0.03, 0.004]))
        assert list(bins) == [-1, 2]
        assert list(counts) == [1, 1]

    def test_zero_errors_excluded(self):
        bins, counts = bin_errors(np.array([0.0, 0.0, 0.01]))
        assert counts.sum() == 1

    def test_empty(self):
        bins, counts = bin_errors(np.array([]))
        assert bins.size == 0 and counts.size == 0

    def test_exact_power_boundary(self):
        # exactly 1%: ceil(log2 1) = 0.
        bins, _ = bin_errors(np.array([0.01]))
        assert list(bins) == [0]


class TestPMF:
    def test_characterize_probabilities_sum_to_error_rate(self):
        approx = np.array([1.0, 1.1, 2.0, 3.3])
        exact = np.array([1.0, 1.0, 2.0, 3.0])
        pmf = characterize(approx, exact, label="demo")
        assert pmf.error_rate == pytest.approx(0.5)
        assert pmf.label == "demo"

    def test_probability_above(self):
        pmf = characterize([1.1, 1.001], [1.0, 1.0])
        # 10% error is in bin ceil(log2 10) = 4: entire bin above 8%.
        assert pmf.probability_above(8.0) == pytest.approx(0.5)
        assert pmf.probability_above(0.0) == pmf.error_rate

    def test_format_rows(self):
        pmf = characterize([1.1], [1.0])
        text = pmf.format_rows()
        assert "error rate" in text


class TestUnitCharacterization:
    @pytest.mark.parametrize("name", sorted(UNIT_CHARACTERIZATIONS))
    def test_all_units_run(self, name):
        pmf = characterize_unit(name, n_samples=4096)
        assert isinstance(pmf, ErrorPMF)
        assert pmf.stats.samples > 0

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            characterize_unit("bogus")

    def test_fpadd_is_fsm(self):
        # Figure 8: the adder's errors are frequent but small-magnitude.
        pmf = characterize_unit("ifpadd", n_samples=65536)
        assert pmf.error_rate > 0.9
        assert pmf.probability_above(8.0) < 0.01
        assert pmf.dominant_bin() <= 0  # mass below 1%

    def test_fpmul_bounded_by_25_percent(self):
        pmf = characterize_unit("ifpmul", n_samples=65536)
        assert pmf.stats.eps_max <= 0.25 + 1e-6
        assert pmf.stats.eps_max > 0.2

    def test_rcp_bounded(self):
        pmf = characterize_unit("ircp", n_samples=65536)
        assert pmf.stats.eps_max <= 0.0591

    def test_multiplier_configs(self):
        full = characterize_multiplier_config("fp_tr0", n_samples=65536)
        log = characterize_multiplier_config("lp_tr0", n_samples=65536)
        assert full.stats.eps_max <= FULL_PATH_MAX_ERROR + 1e-6
        assert log.stats.eps_max <= LOG_PATH_MAX_ERROR + 1e-6
        assert full.stats.eps_mean < log.stats.eps_mean

    def test_multiplier_truncation_shifts_mass_right(self):
        # Figure 9: more truncation clusters probability at larger bins.
        tr17 = characterize_multiplier_config("lp_tr17", n_samples=65536)
        tr19 = characterize_multiplier_config("lp_tr19", n_samples=65536)
        assert tr19.dominant_bin() >= tr17.dominant_bin()

    def test_bt_baseline_config(self):
        pmf = characterize_multiplier_config("bt_21", n_samples=16384)
        assert pmf.label == "bt_21"
        assert pmf.stats.eps_max > 0.1

    def test_multiplier_config_object(self):
        from repro.core import MultiplierConfig

        pmf = characterize_multiplier_config(MultiplierConfig("full", 5), 4096)
        assert pmf.label == "fp_tr5"


class TestBounds:
    def test_adder_addition_bound_th8(self):
        # Paper: eps_max < 0.785% at TH = 8 (case a dominates at small TH).
        assert adder_addition_bound(8) <= 0.00785

    def test_adder_subtraction_bound_th8(self):
        assert adder_subtraction_bound(8) == pytest.approx(1 / 127)

    def test_case_d_unbounded(self):
        assert math.isinf(adder_case_bound(8, 3, subtraction=True))

    def test_case_a_vs_c(self):
        assert adder_case_bound(8, 10, False) < adder_case_bound(8, 10, True)

    def test_bounds_decrease_with_threshold(self):
        vals = [adder_addition_bound(t) for t in range(2, 20)]
        assert vals == sorted(vals, reverse=True)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            adder_addition_bound(0)
        with pytest.raises(ValueError):
            adder_subtraction_bound(1)
        with pytest.raises(ValueError):
            adder_case_bound(8, -1, False)

    def test_path_bounds(self):
        assert full_path_bound(0) == pytest.approx(FULL_PATH_MAX_ERROR, abs=1e-6)
        assert log_path_bound(0) == pytest.approx(LOG_PATH_MAX_ERROR, abs=1e-6)
        assert full_path_bound(19) > full_path_bound(0)
        with pytest.raises(ValueError):
            full_path_bound(-1)
        with pytest.raises(ValueError):
            log_path_bound(24)

    def test_mitchell_worst_case_point(self):
        # x1 = x2 = 0.5 is the 1/9 maximum.
        err = mitchell_pointwise_error(0.4999999, 0.4999999)
        assert err == pytest.approx(1 / 9, rel=1e-4)
        assert mitchell_pointwise_error(0.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            mitchell_pointwise_error(1.0, 0.5)

    def test_empirical_never_exceeds_analytic(self):
        pmf = characterize_unit("ifpadd", n_samples=65536)
        # Effective additions and case-c subtractions obey the bounds; the
        # PMF includes case-d so only check that mass above 8% is negligible
        # (the paper's Figure-8 observation).
        assert pmf.probability_above(8.0) < 0.01
