"""The batch axis: batched backend entry points, ContextBatch, runner grouping.

One decompose, N configurations — and every lane bit-identical to the
per-config path.  Covers the four layers of the batch contract:

- backend: ``*_batch`` entry points vs per-config reference calls over
  random + adversarial + special-value operands (``check_batch_parity``),
  mixed config lists including duplicates and single-config batches;
- context: :class:`ContextBatch` lane results vs per-config
  :class:`ArithmeticContext`, per-lane counters, compatibility validation;
- config: batch signatures, grouping, and cache-key independence;
- runtime: batched sweeps produce identical results, cache entries, and
  resume behavior as the unbatched path, and scratch pools are reclaimed
  between tasks with the high-water gauge published.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    ArithmeticContext,
    ContextBatch,
    IHWConfig,
    batch_compatible,
    batch_groups,
)
from repro.core.backends import (
    get_backend,
    release_all_scratch,
    scratch_nbytes,
)
from repro.core.backends.base import BATCH_OPS, ComputeBackend
from repro.core.backends.parity import BATCH_PARITY_OPS, check_batch_parity
from repro.core.configurable import MultiplierConfig
from repro.runtime import ExperimentRunner, ExperimentSpec, ResultCache

SPEC = ExperimentSpec.create(
    "hotspot", metric="mae", rows=16, cols=16, iterations=3
)


def _bits(x):
    fmt_uint = {4: np.uint32, 8: np.uint64, 2: np.uint16}[x.dtype.itemsize]
    return np.asarray(x).view(fmt_uint)


def _assert_identical(a, b):
    __tracebackhide__ = True
    assert np.array_equal(_bits(a), _bits(b))


# ----------------------------------------------------------------------
# Backend layer
# ----------------------------------------------------------------------
class TestBatchedBackendParity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_fused_batch_parity(self, dtype):
        """Random + adversarial + special vectors, duplicates, singletons."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            failures = check_batch_parity(
                get_backend("fused"), dtype=dtype, n_random=2048
            )
        assert failures == []

    def test_harness_covers_every_batch_op(self):
        assert set(BATCH_PARITY_OPS) == set(BATCH_OPS)

    def test_reference_batch_is_the_per_config_loop(self):
        backend = get_backend("reference")
        rng = np.random.default_rng(5)
        a = rng.normal(size=256).astype(np.float32)
        b = rng.normal(size=256).astype(np.float32)
        thresholds = [1, 8, 8, 16]
        outs = backend.imprecise_add_batch(a, b, thresholds)
        assert len(outs) == len(thresholds)
        for th, out in zip(thresholds, outs):
            _assert_identical(out, backend.imprecise_add(a, b, threshold=th))
        # Duplicate thresholds produce identical bits, independently.
        _assert_identical(outs[1], outs[2])

    def test_truncated_batch_rounding_length_mismatch(self):
        backend = get_backend("fused")
        a = np.ones(8, dtype=np.float32)
        with pytest.raises(ValueError, match="rounding"):
            backend.truncated_multiply_batch(a, a, [0, 8], rounding=[True])

    def test_empty_batch_returns_empty(self):
        backend = get_backend("fused")
        a = np.ones(8, dtype=np.float32)
        assert backend.imprecise_add_batch(a, a, []) == []
        assert backend.configurable_multiply_batch(a, a, []) == []
        assert backend.truncated_multiply_batch(a, a, []) == []


# ----------------------------------------------------------------------
# Context layer
# ----------------------------------------------------------------------
class TestContextBatch:
    def _operands(self, n=512, dtype=np.float32, seed=9):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=n).astype(dtype)
        b = rng.normal(size=n).astype(dtype)
        c = rng.normal(size=n).astype(dtype)
        return a, b, c

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_threshold_lanes_match_scalar_contexts(self, dtype):
        from repro.core.adder import max_threshold

        limit = max_threshold(dtype)
        configs = [
            IHWConfig.all_imprecise(adder_threshold=t).with_backend("fused")
            for t in (1, 4, 8, 8, limit)  # duplicate on purpose
        ]
        batch = ContextBatch(configs, dtype=dtype)
        a, b, c = self._operands(dtype=dtype)
        for op, outs in (
            ("add", batch.add(a, b)),
            ("sub", batch.sub(a, b)),
            ("mul", batch.mul(a, b)),
            ("fma", batch.fma(a, b, c)),
            ("rcp", batch.rcp(a)),
            ("sqrt", batch.sqrt(np.abs(a))),
        ):
            assert len(outs) == len(configs)
            for cfg, out in zip(configs, outs):
                ctx = ArithmeticContext(cfg, dtype=dtype)
                expected = getattr(ctx, op)(*((a, b, c)[: {
                    "add": 2, "sub": 2, "mul": 2, "fma": 3,
                }.get(op, 1)] if op != "sqrt" else (np.abs(a),)))
                _assert_identical(out, expected)

    @pytest.mark.parametrize("mode,knob", [
        ("mitchell", [MultiplierConfig.from_name(n)
                      for n in ("fp_tr0", "lp_tr0", "lp_tr8", "lp_tr8")]),
        ("truncated", [0, 4, 8, 8]),
    ])
    def test_multiplier_lanes_match_scalar_contexts(self, mode, knob):
        base = IHWConfig.units("mul").with_backend("fused")
        if mode == "mitchell":
            configs = [base.with_multiplier("mitchell", config=k)
                       for k in knob]
        else:
            configs = [base.with_multiplier("truncated", truncation=k)
                       for k in knob]
        batch = ContextBatch(configs)
        a, b, _ = self._operands()
        outs = batch.mul(a, b)
        for cfg, out in zip(configs, outs):
            _assert_identical(out, ArithmeticContext(cfg).mul(a, b))

    def test_single_config_batch_degenerates(self):
        cfg = IHWConfig.all_imprecise().with_backend("fused")
        batch = ContextBatch([cfg])
        a, b, _ = self._operands()
        (out,) = batch.add(a, b)
        _assert_identical(out, ArithmeticContext(cfg).add(a, b))

    def test_per_lane_counters_match_scalar_contexts(self):
        configs = [IHWConfig.all_imprecise(adder_threshold=t)
                   for t in (4, 8)]
        batch = ContextBatch(configs)
        a, b, c = self._operands(n=100)
        batch.add(a, b)
        batch.fma(a, b, c)
        batch.rcp(a)
        for cfg, lane in zip(configs, batch.lanes):
            ctx = ArithmeticContext(cfg)
            ctx.add(a, b)
            ctx.fma(a, b, c)
            ctx.rcp(a)
            assert lane.counts == ctx.counts
        batch.reset_counts()
        assert all(not lane.counts for lane in batch.lanes)

    def test_precise_path_counts_per_lane(self):
        configs = [IHWConfig.precise(), IHWConfig.precise()]
        batch = ContextBatch(configs)
        a, b, _ = self._operands(n=50)
        outs = batch.add(a, b)
        _assert_identical(outs[0], np.add(a, b, dtype=np.float32))
        assert all(
            lane.counts[("add", "precise")] == 50 for lane in batch.lanes
        )

    def test_incompatible_configs_rejected(self):
        with pytest.raises(ValueError, match="batch-compatible"):
            ContextBatch([
                IHWConfig.units("add"),
                IHWConfig.units("mul"),
            ])
        with pytest.raises(ValueError, match="at least one"):
            ContextBatch([])

    def test_lanes_share_one_backend_instance(self):
        configs = [IHWConfig.all_imprecise(adder_threshold=t)
                   for t in (4, 8)]
        batch = ContextBatch(configs, backend="fused")
        assert batch.lanes[0].backend is batch.lanes[1].backend
        assert batch.lanes[0].backend is batch.backend


# ----------------------------------------------------------------------
# Config layer
# ----------------------------------------------------------------------
class TestBatchGrouping:
    def test_signature_ignores_batchable_knobs_and_backend(self):
        a = IHWConfig.all_imprecise(adder_threshold=1)
        b = IHWConfig.all_imprecise(adder_threshold=23).with_backend("fused")
        assert a.batch_signature() == b.batch_signature()
        assert batch_compatible([a, b])

    def test_signature_splits_on_structural_switches(self):
        base = IHWConfig.units("mul")
        mitchell = base.with_multiplier("mitchell", config="fp_tr0")
        truncated = base.with_multiplier("truncated", truncation=8)
        assert mitchell.batch_signature() != truncated.batch_signature()
        assert not batch_compatible([mitchell, truncated])
        quad = IHWConfig.units("rcp").with_sfu_mode("quadratic")
        assert quad.batch_signature() != IHWConfig.units("rcp").batch_signature()

    def test_batch_groups_preserve_first_appearance_order(self):
        base = IHWConfig.units("mul")
        named = {
            "th1": IHWConfig.all_imprecise(adder_threshold=1),
            "bt8": base.with_multiplier("truncated", truncation=8),
            "th8": IHWConfig.all_imprecise(adder_threshold=8),
            "bt16": base.with_multiplier("truncated", truncation=16),
        }
        groups = batch_groups(named)
        assert [list(g) for g in groups] == [["th1", "th8"], ["bt8", "bt16"]]

    def test_empty_inputs(self):
        assert not batch_compatible([])
        assert batch_groups({}) == []

    def test_cache_key_is_batch_invariant(self):
        """Batching must never fragment the result cache."""
        cfg = IHWConfig.all_imprecise()
        assert cfg.cache_key() == cfg.with_backend("fused").cache_key()


# ----------------------------------------------------------------------
# Runtime layer
# ----------------------------------------------------------------------
def _mixed_configs():
    base = IHWConfig.units("mul")
    return {
        "th4": IHWConfig.all_imprecise(adder_threshold=4),
        "bt8": base.with_multiplier("truncated", truncation=8),
        "th8": IHWConfig.all_imprecise(adder_threshold=8),
        "fp_tr0": base.with_multiplier("mitchell", config="fp_tr0"),
        "th12": IHWConfig.all_imprecise(adder_threshold=12),
        "bt16": base.with_multiplier("truncated", truncation=16),
    }


def _evaluation_equal(a, b):
    return (
        a.quality == b.quality
        and a.savings == b.savings
        and np.array_equal(a.output, b.output)
    )


class TestBatchedSweep:
    def test_batched_matches_unbatched_and_shares_cache(self, tmp_path):
        configs = _mixed_configs()
        batched_runner = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path / "batched")
        )
        batched = batched_runner.sweep(SPEC, configs, batch=True)
        plain_runner = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path / "plain")
        )
        plain = plain_runner.sweep(SPEC, configs, batch=False)

        assert list(batched) == list(configs)  # insertion order preserved
        for name in configs:
            assert _evaluation_equal(batched[name], plain[name]), name

        # Identical cache entries: the batched path serves the unbatched
        # runner (and vice versa) with a 100% hit rate.
        crossover = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path / "batched")
        )
        again = crossover.sweep(SPEC, configs, batch=False)
        assert crossover.stats.cache_hits == len(configs)
        for name in configs:
            assert _evaluation_equal(again[name], batched[name]), name

    def test_batched_sweep_in_worker_pool(self, tmp_path):
        """The _evaluate_batch_chunk worker path, group-aligned chunks."""
        configs = _mixed_configs()
        runner = ExperimentRunner(
            max_workers=2, chunk_size=3,
            cache=ResultCache(tmp_path / "pool"),
        )
        pooled = runner.sweep(SPEC, configs, batch=True)
        sequential = ExperimentRunner(max_workers=1, cache=None).sweep(
            SPEC, configs, batch=False
        )
        for name in configs:
            assert _evaluation_equal(pooled[name], sequential[name]), name
        note_text = " ".join(runner.stats.notes)
        assert "compatible groups" in note_text

    def test_resume_after_interruption_with_batching(self, tmp_path):
        cache = ResultCache(tmp_path / "resume")
        configs = _mixed_configs()
        first = dict(list(configs.items())[:3])
        ExperimentRunner(max_workers=1, cache=cache).sweep(
            SPEC, first, batch=True
        )
        resumed_runner = ExperimentRunner(max_workers=1, cache=cache)
        results = resumed_runner.sweep(SPEC, configs, resume=True, batch=True)
        assert list(results) == list(configs)
        assert resumed_runner.stats.cache_hits == len(first)

    def test_evaluate_many_batch_passthrough(self, tmp_path):
        framework = SPEC.framework()
        runner = ExperimentRunner(max_workers=1, cache=None)
        configs = {"th4": IHWConfig.all_imprecise(adder_threshold=4),
                   "th8": IHWConfig.all_imprecise(adder_threshold=8)}
        batched = framework.evaluate_many(configs, runner=runner, batch=True)
        direct = {name: SPEC.framework().evaluate(cfg)
                  for name, cfg in configs.items()}
        for name in configs:
            assert _evaluation_equal(batched[name], direct[name]), name


class TestScratchReclamation:
    def test_runner_reclaims_and_publishes_high_water(self):
        from repro import telemetry
        from repro.runtime.runner import _reclaim_scratch

        release_all_scratch()
        backend = get_backend("fused")
        a = np.linspace(0.5, 2.0, 4096, dtype=np.float32)
        backend.imprecise_add_batch(a, a, [1, 4, 8, 16])
        held = scratch_nbytes()
        assert held > 0
        with telemetry.override("metrics"):
            telemetry.reset()
            assert _reclaim_scratch() == held
            snapshot = telemetry.get_registry().drain()
            gauges = {s["name"]: s for s in snapshot}
            assert gauges["repro_backend_scratch_bytes"]["value"] == held
            telemetry.reset()
        assert backend.scratch_nbytes() == 0
        assert _reclaim_scratch() == 0  # idempotent no-op when empty

    def test_sweep_leaves_no_scratch_behind(self):
        release_all_scratch()
        runner = ExperimentRunner(max_workers=1, cache=None)
        runner.sweep(SPEC, {
            "th8": IHWConfig.all_imprecise().with_backend("fused"),
        })
        assert scratch_nbytes() == 0

    def test_base_backend_scratch_contract(self):
        backend = ComputeBackend()
        assert backend.scratch_nbytes() == 0
        assert backend.release_scratch() == 0
