"""Tests for the imprecise threshold FP adder (Chapter 3.1 / 4.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    imprecise_add,
    imprecise_subtract,
    max_threshold,
)

finite32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=-2.0**99,
    max_value=2.0**99,
)


class TestBasics:
    def test_exact_when_exponents_equal(self):
        # d = 0 <= TH and no bits shifted out: exact apart from truncation.
        out = imprecise_add(np.float32(1.5), np.float32(1.25))
        assert out == np.float32(2.75)

    def test_zero_identity(self):
        x = np.array([1.5, -3.25, 100.0], dtype=np.float32)
        np.testing.assert_array_equal(imprecise_add(x, np.float32(0.0)), x)
        np.testing.assert_array_equal(imprecise_add(np.float32(0.0), x), x)

    def test_large_exponent_difference_absorbs_small_operand(self):
        # d = 20 > TH = 8: the small operand vanishes entirely.
        out = imprecise_add(np.float32(1024.0), np.float32(1024.0 * 2.0**-20))
        assert out == np.float32(1024.0)

    def test_equation_7_example(self):
        # TH = 3, d = 1, b = 1.11111 * 2^(expa-1): b' keeps bits x1 x2 only.
        a = np.float32(2.0)  # expa = 1
        b = np.float32(1.96875)  # 1.11111b * 2^0
        out = imprecise_add(a, b, threshold=3)
        # b' = 0.111b * 2^1 = 1.75, sum = 3.75
        assert out == np.float32(3.75)

    def test_exact_cancellation_gives_zero(self):
        out = imprecise_add(np.float32(1.5), np.float32(-1.5))
        assert out == 0.0 and not np.signbit(out)

    def test_commutative(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(-10, 10, 1000).astype(np.float32)
        b = rng.uniform(-10, 10, 1000).astype(np.float32)
        np.testing.assert_array_equal(
            imprecise_add(a, b), imprecise_add(b, a)
        )

    def test_subtract_matches_add_of_negation(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(-10, 10, 1000).astype(np.float32)
        b = rng.uniform(-10, 10, 1000).astype(np.float32)
        np.testing.assert_array_equal(
            imprecise_subtract(a, b), imprecise_add(a, -b)
        )


class TestSpecialCases:
    def test_nan_propagates(self):
        assert np.isnan(imprecise_add(np.float32(np.nan), np.float32(1.0)))

    def test_inf_plus_finite(self):
        assert np.isposinf(imprecise_add(np.float32(np.inf), np.float32(-5.0)))
        assert np.isneginf(imprecise_add(np.float32(-np.inf), np.float32(5.0)))

    def test_inf_minus_inf_is_nan(self):
        assert np.isnan(imprecise_add(np.float32(np.inf), np.float32(-np.inf)))

    def test_inf_plus_inf(self):
        assert np.isposinf(imprecise_add(np.float32(np.inf), np.float32(np.inf)))

    def test_overflow_to_inf(self):
        big = np.float32(3e38)
        assert np.isposinf(imprecise_add(big, big))

    def test_subnormal_result_flushes(self):
        tiny = np.float32(np.finfo(np.float32).tiny)
        # 1.5*tiny - tiny = 0.5*tiny is subnormal and must flush to zero.
        out = imprecise_add(np.float32(1.5) * tiny, -tiny)
        assert out == 0.0

    def test_subnormal_inputs_treated_as_zero(self):
        sub = np.float32(1e-45)
        out = imprecise_add(sub, np.float32(1.0))
        assert out == 1.0


class TestThresholdValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ValueError):
            imprecise_add(np.float32(1.0), np.float32(1.0), threshold=0)

    def test_rejects_above_max(self):
        with pytest.raises(ValueError):
            imprecise_add(np.float32(1.0), np.float32(1.0), threshold=28)

    def test_max_threshold_values(self):
        assert max_threshold(np.float32) == 27
        assert 1 <= max_threshold(np.float64) <= 27

    def test_float64_supported(self):
        out = imprecise_add(np.float64(1.5), np.float64(2.5), threshold=8, dtype=np.float64)
        assert out == 4.0


class TestErrorBounds:
    """The Chapter 4.1.1 analytic bounds, cases (a)-(c)."""

    @pytest.mark.parametrize("th", [4, 8, 12])
    def test_effective_addition_bound(self, th):
        # Cases (a) and (b): same-sign operands, eps_max < 1/(2^(TH-1)+1).
        rng = np.random.default_rng(5)
        a = rng.uniform(1e-3, 1e3, 50000).astype(np.float32)
        b = rng.uniform(1e-3, 1e3, 50000).astype(np.float32)
        out = imprecise_add(a, b, threshold=th).astype(np.float64)
        true = a.astype(np.float64) + b.astype(np.float64)
        rel = np.abs((out - true) / true)
        # Bound: truncation loss (2^-TH at the larger scale) plus the
        # zeroed-operand case (< 1/(2^(TH-1)+1)), plus result truncation.
        assert rel.max() <= 1.0 / (2 ** (th - 1) + 1) + 2.0 ** -23

    @pytest.mark.parametrize("th", [8, 12])
    def test_far_apart_subtraction_bound(self, th):
        # Case (c): opposite signs with d >= TH, eps_max < 1/(2^(TH-1)-1).
        rng = np.random.default_rng(6)
        a = rng.uniform(1.0, 2.0, 20000).astype(np.float32) * 2.0**20
        b = -rng.uniform(1.0, 2.0, 20000).astype(np.float32)
        out = imprecise_add(a, b, threshold=th).astype(np.float64)
        true = a.astype(np.float64) + b.astype(np.float64)
        rel = np.abs((out - true) / true)
        assert rel.max() <= 1.0 / (2 ** (th - 1) - 1)

    def test_close_subtraction_small_absolute_error(self):
        # Case (d): relative error explodes but the absolute error is tiny
        # relative to the operands' magnitude.
        a = np.float32(1.0000001)
        b = np.float32(-1.0)
        out = imprecise_add(a, b, threshold=8)
        assert abs(float(out) - (float(a) + float(b))) < 2.0**-8 * float(a)

    def test_larger_threshold_never_less_accurate_on_average(self):
        rng = np.random.default_rng(8)
        a = rng.uniform(0.1, 100, 20000).astype(np.float32)
        b = rng.uniform(0.1, 100, 20000).astype(np.float32)
        true = a.astype(np.float64) + b.astype(np.float64)
        errors = []
        for th in (2, 8, 16, 27):
            out = imprecise_add(a, b, threshold=th).astype(np.float64)
            errors.append(np.abs((out - true) / true).mean())
        assert errors == sorted(errors, reverse=True)

    @given(finite32, finite32, st.integers(1, 27))
    @settings(max_examples=400, deadline=None)
    def test_effective_addition_bound_hypothesis(self, a, b, th):
        if (a >= 0) != (b >= 0):
            return
        a32, b32 = np.float32(a), np.float32(b)
        out = imprecise_add(a32, b32, threshold=th)
        true = float(a32) + float(b32)
        if true == 0 or not np.isfinite(true) or np.isinf(out):
            return
        if abs(true) < 4 * float(np.finfo(np.float32).tiny):
            return
        rel = abs((float(out) - true) / true)
        assert rel <= 2.0 ** -(th - 1) + 2.0 ** -22

    @given(finite32, finite32)
    @settings(max_examples=300, deadline=None)
    def test_result_magnitude_never_exceeds_exact(self, a, b):
        # Truncation everywhere: |result| <= |exact sum| for same signs.
        if (a >= 0) != (b >= 0):
            return
        a32, b32 = np.float32(a), np.float32(b)
        out = imprecise_add(a32, b32)
        true = float(a32) + float(b32)
        if not np.isfinite(true) or np.isinf(out):
            return
        assert abs(float(out)) <= abs(true) + 1e-45
