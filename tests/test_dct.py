"""Tests for the JPEG-style DCT codec extension app."""

import numpy as np
import pytest

from repro.apps import dct
from repro.core import IHWConfig
from repro.quality import psnr


class TestBasis:
    def test_orthonormal(self):
        basis = dct.dct_basis().astype(np.float64)
        np.testing.assert_allclose(basis @ basis.T, np.eye(8), atol=1e-6)

    def test_dc_row_constant(self):
        basis = dct.dct_basis()
        assert np.allclose(basis[0], basis[0, 0])


class TestImage:
    def test_range_and_shape(self):
        img = dct.test_image(64)
        assert img.shape == (64, 64)
        assert img.min() >= 0 and img.max() <= 255

    def test_rejects_non_block_size(self):
        with pytest.raises(ValueError):
            dct.test_image(60)

    def test_deterministic(self):
        np.testing.assert_array_equal(dct.test_image(32), dct.test_image(32))


class TestCodec:
    @pytest.fixture(scope="class")
    def reference(self):
        return dct.reference_run(64)

    def test_precise_codec_reconstructs(self, reference):
        original = dct.test_image(64).astype(np.float64)
        # Quantization loss only: a healthy JPEG-quality PSNR.
        assert psnr(reference.output, original, data_range=255) > 28

    def test_zero_quantization_near_lossless(self):
        result = dct.run(None, 64, quality=0.01)
        original = dct.test_image(64).astype(np.float64)
        assert psnr(result.output, original, data_range=255) > 45

    def test_coarser_quantization_hurts(self):
        original = dct.test_image(64).astype(np.float64)
        fine = dct.run(None, 64, quality=0.5)
        coarse = dct.run(None, 64, quality=4.0)
        assert psnr(coarse.output, original, data_range=255) < psnr(
            fine.output, original, data_range=255
        )

    def test_full_path_error_below_quantization_loss(self, reference):
        cfg = IHWConfig.units("add").with_multiplier("mitchell", config="fp_tr0")
        result = dct.run(cfg, 64)
        original = dct.test_image(64).astype(np.float64)
        arith_psnr = psnr(result.output, reference.output, data_range=255)
        codec_psnr = psnr(reference.output, original, data_range=255)
        assert arith_psnr > codec_psnr  # the Figure-5 'negligible loss' story

    def test_table1_multiplier_visible_damage(self, reference):
        result = dct.run(IHWConfig.units("mul", "add"), 64)
        assert psnr(result.output, reference.output, data_range=255) < 28

    def test_mul_add_balanced_workload(self, reference):
        counts = reference.op_counts
        assert counts["mul"] > 0 and counts["add"] > 0
        ratio = counts["mul"] / counts["add"]
        assert 0.8 <= ratio <= 1.5  # MAC structure

    def test_output_in_pixel_range(self):
        result = dct.run(IHWConfig.units("mul", "add"), 32)
        assert result.output.min() >= 0 and result.output.max() <= 255

    def test_validation(self):
        with pytest.raises(ValueError):
            dct.run(None, quality=0.0)
        with pytest.raises(ValueError):
            dct.run(None, image=np.zeros((60, 60), np.float32))
