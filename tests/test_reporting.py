"""Tests for the markdown report generator and its CLI command."""

import io
import os

from repro.cli import main
from repro.reporting import generate_report, report_sections


class TestReportSections:
    def test_six_sections(self):
        sections = report_sections(fast=True)
        assert len(sections) == 6

    def test_runtime_section_reports_cache(self):
        text = "\n".join(report_sections(fast=True)[4])
        assert "hit rate" in text
        assert "Warm rerun" in text

    def test_telemetry_section_has_span_tree_and_drift(self):
        text = "\n".join(report_sections(fast=True)[5])
        assert "## Telemetry" in text
        assert "sweep" in text and "experiment" in text and "kernel" in text
        assert "ERR%" in text

    def test_units_section_has_all_rows(self):
        units = report_sections(fast=True)[0]
        text = "\n".join(units)
        for name in ("ircp", "ifpmul", "fp_tr0", "lp_tr19"):
            assert name in text

    def test_hardware_section_mentions_reductions(self):
        text = "\n".join(report_sections(fast=True)[1])
        assert "lp_tr19" in text and "bt_21" in text


class TestGenerateReport:
    def test_full_document_structure(self):
        report = generate_report(fast=True)
        assert report.startswith("# Reproduction report")
        for heading in (
            "## Imprecise units",
            "## Hardware power",
            "## Applications",
            "## Functional verification",
            "## Telemetry",
        ):
            assert heading in report

    def test_markdown_tables_well_formed(self):
        report = generate_report(fast=True)
        table_rows = [l for l in report.splitlines() if l.startswith("|")]
        assert len(table_rows) > 15
        # Every table row has a consistent pipe structure.
        for row in table_rows:
            assert row.count("|") >= 3

    def test_measured_values_present(self):
        report = generate_report(fast=True)
        assert "%" in report and "ULP" in report


class TestReportCLI:
    def test_stdout(self):
        out = io.StringIO()
        code = main(["report", "--fast"], out=out)
        assert code == 0
        assert "# Reproduction report" in out.getvalue()

    def test_file_output(self, tmp_path):
        path = os.path.join(tmp_path, "report.md")
        out = io.StringIO()
        code = main(["report", "--fast", "--output", path], out=out)
        assert code == 0
        with open(path) as handle:
            assert "## Applications" in handle.read()
        assert "written to" in out.getvalue()
