"""Tests for the GPU timing simulator, power model, and savings algorithm."""

import numpy as np
import pytest

from repro.core import ArithmeticContext, IHWConfig
from repro.gpu import (
    COMPONENTS,
    EnergyParams,
    FERMI_GTX480,
    GPUConfig,
    GPUPowerModel,
    KernelCounters,
    OpClass,
    build_warp_stream,
    estimate_system_savings,
    pipeline_latency_ns,
    simulate_kernel,
    simulate_sm_window,
)
from repro.hardware import HardwareLibrary


def make_counters(fpu=1000, sfu=100, alu=200, mem=300, ctrl=50, threads=3200):
    ctx = ArithmeticContext()
    a = np.ones(fpu, dtype=np.float32)
    if fpu:
        ctx.add(a, a)
    if sfu:
        ctx.rsqrt(np.ones(sfu, dtype=np.float32))
    return KernelCounters.from_context(
        ctx, "test", int_ops=alu, mem_ops=mem, ctrl_ops=ctrl, threads=threads
    )


class TestCounters:
    def test_class_counts(self):
        c = make_counters()
        counts = c.class_counts()
        assert counts[OpClass.FPU] == 1000
        assert counts[OpClass.SFU] == 100
        assert counts[OpClass.ALU] == 200
        assert counts[OpClass.MEM] == 300

    def test_arithmetic_fraction(self):
        c = make_counters()
        assert c.arithmetic_fraction() == pytest.approx(1100 / 1650)

    def test_precise_vs_imprecise_counts(self):
        ctx = ArithmeticContext(IHWConfig.units("mul"))
        a = np.ones(10, dtype=np.float32)
        ctx.mul(a, a)
        ctx.mul(a, a, precise=True)
        c = KernelCounters.from_context(ctx)
        assert c.precise_count("mul") == 10
        assert c.imprecise_count("mul") == 10
        assert c.op_count("mul") == 20

    def test_merged(self):
        a = make_counters(fpu=100, sfu=0, alu=10, mem=5, ctrl=1)
        b = make_counters(fpu=50, sfu=20, alu=5, mem=5, ctrl=2)
        m = a.merged_with(b)
        assert m.op_count("add") == 150
        assert m.int_ops == 15

    def test_warp_instruction_counts(self):
        c = make_counters(fpu=3200, sfu=0, alu=0, mem=0, ctrl=0)
        warp = c.warp_instruction_counts(32)
        assert warp[OpClass.FPU] == 100

    def test_empty_fraction(self):
        c = KernelCounters(name="empty")
        assert c.arithmetic_fraction() == 0.0

    def test_from_context_round_trips_non_arith_counts(self):
        ctx = ArithmeticContext(IHWConfig.units("add"))
        a = np.ones(7, dtype=np.float32)
        ctx.add(a, a)
        c = KernelCounters.from_context(
            ctx, name="k", int_ops=11, mem_ops=22, ctrl_ops=33, threads=44
        )
        assert c.name == "k"
        assert (c.int_ops, c.mem_ops, c.ctrl_ops, c.threads) == (11, 22, 33, 44)
        assert c.arith == dict(ctx.counts)
        # The snapshot is a copy: later context activity must not leak in.
        ctx.add(a, a)
        assert c.imprecise_count("add") == 7


class TestWarpStream:
    def test_proportions_match(self):
        mix = {OpClass.FPU: 60, OpClass.MEM: 30, OpClass.ALU: 10}
        stream = build_warp_stream(mix, 100)
        assert stream.count(OpClass.FPU) == 60
        assert stream.count(OpClass.MEM) == 30
        assert stream.count(OpClass.ALU) == 10

    def test_every_class_present_in_short_window(self):
        mix = {OpClass.FPU: 1000, OpClass.SFU: 10, OpClass.MEM: 10}
        stream = build_warp_stream(mix, 32)
        assert OpClass.SFU in stream or OpClass.MEM in stream

    def test_no_empty_slots(self):
        mix = {OpClass.FPU: 5, OpClass.CTRL: 5}
        stream = build_warp_stream(mix, 64)
        assert None not in stream

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            build_warp_stream({OpClass.FPU: 0}, 10)
        with pytest.raises(ValueError):
            build_warp_stream({OpClass.FPU: 10}, 0)


class TestSimulator:
    def test_pure_fpu_ipc_near_issue_bound(self):
        mix = {OpClass.FPU: 100}
        cycles, issued = simulate_sm_window(mix, resident_warps=32, window=64)
        ipc = issued / cycles
        assert 0.8 <= ipc <= FERMI_GTX480.issue_width

    def test_sfu_serializes(self):
        fpu_only = {OpClass.FPU: 100}
        sfu_heavy = {OpClass.FPU: 50, OpClass.SFU: 50}
        c1, i1 = simulate_sm_window(fpu_only, resident_warps=32, window=64)
        c2, i2 = simulate_sm_window(sfu_heavy, resident_warps=32, window=64)
        assert i2 / c2 < i1 / c1  # SFU occupancy lowers IPC

    def test_more_warps_hide_latency(self):
        mix = {OpClass.FPU: 70, OpClass.MEM: 30}
        c_few, i_few = simulate_sm_window(mix, resident_warps=4, window=64)
        c_many, i_many = simulate_sm_window(mix, resident_warps=32, window=64)
        assert i_many / c_many > i_few / c_few

    def test_all_instructions_issue(self):
        mix = {OpClass.FPU: 50, OpClass.MEM: 30, OpClass.ALU: 20}
        cycles, issued = simulate_sm_window(mix, resident_warps=8, window=32)
        assert issued == 8 * 32

    def test_kernel_timing_scales_with_work(self):
        small = simulate_kernel(make_counters(fpu=10000, threads=3200))
        large = simulate_kernel(make_counters(fpu=100000, threads=3200))
        assert large.cycles > small.cycles
        assert large.time_s > small.time_s

    def test_kernel_timing_fields(self):
        t = simulate_kernel(make_counters())
        assert t.time_ns == pytest.approx(t.time_s * 1e9)
        assert 0 < t.occupancy <= 1
        assert t.ipc_per_sm > 0

    def test_empty_kernel_rejected(self):
        with pytest.raises(ValueError):
            simulate_kernel(KernelCounters(name="empty", threads=32))

    def test_resident_warp_validation(self):
        with pytest.raises(ValueError):
            simulate_sm_window({OpClass.FPU: 10}, resident_warps=0)


class TestGPUConfig:
    def test_peak_gflops(self):
        # 15 SMs x 32 lanes x 0.7 GHz x 2 flops = 672 GFLOPS.
        assert FERMI_GTX480.peak_gflops() == pytest.approx(672.0)

    def test_sfu_occupancy(self):
        assert FERMI_GTX480.sfu_occupancy_cycles == 8

    def test_custom_config(self):
        small = GPUConfig(num_sms=2, fpu_lanes=16)
        assert small.peak_gflops() < FERMI_GTX480.peak_gflops()


class TestPowerModel:
    def test_all_components_present(self):
        bd = GPUPowerModel().breakdown(make_counters())
        assert set(bd.watts) == set(COMPONENTS)
        assert bd.total_w > 0

    def test_shares_sum_to_one(self):
        bd = GPUPowerModel().breakdown(make_counters())
        assert sum(bd.share(c) for c in COMPONENTS) == pytest.approx(1.0)

    def test_compute_intensive_in_figure2_band(self):
        c = make_counters(fpu=100000, sfu=8000, alu=20000, mem=15000, ctrl=3000)
        bd = GPUPowerModel().breakdown(c)
        assert 0.2 <= bd.arithmetic_share <= 0.5

    def test_memory_bound_has_lower_arith_share(self):
        compute = make_counters(fpu=100000, sfu=5000, alu=10000, mem=10000)
        memory = make_counters(fpu=20000, sfu=1000, alu=10000, mem=120000)
        pm = GPUPowerModel()
        assert pm.breakdown(memory).arithmetic_share < pm.breakdown(compute).arithmetic_share

    def test_alu_share_small(self):
        # Figure 2: the integer unit is under ~10% of total power.
        c = make_counters(fpu=100000, sfu=8000, alu=30000, mem=20000)
        bd = GPUPowerModel().breakdown(c)
        assert bd.share("ALU") < 0.10

    def test_custom_energy_params(self):
        hot = GPUPowerModel(params=EnergyParams(fpu_pj=200.0))
        cold = GPUPowerModel(params=EnergyParams(fpu_pj=10.0))
        c = make_counters()
        assert hot.breakdown(c).fpu_share > cold.breakdown(c).fpu_share

    def test_unknown_component_rejected(self):
        bd = GPUPowerModel().breakdown(make_counters())
        with pytest.raises(ValueError):
            bd.share("TPU")

    def test_format_rows(self):
        text = GPUPowerModel().breakdown(make_counters()).format_rows()
        assert "FPU" in text and "Static" in text


class TestPipelineLatency:
    def test_single_access(self):
        # One op: just the unit latency in whole cycles.
        assert pipeline_latency_ns(1, 1.3, 0.7) == pytest.approx(1 / 0.7)

    def test_pipelined_throughput(self):
        # Many ops: one per cycle after the fill.
        lat = pipeline_latency_ns(1000, 1.3, 0.7)
        assert lat == pytest.approx((999 + 1) / 0.7)

    def test_zero_accesses(self):
        assert pipeline_latency_ns(0, 1.3, 0.7) == 0.0


class TestSavings:
    def _imprecise_counters(self, config):
        ctx = ArithmeticContext(config)
        a = np.ones(10000, dtype=np.float32)
        for _ in range(4):
            ctx.mul(a, a)
        for _ in range(6):
            ctx.add(a, a)
        ctx.rcp(a)
        return KernelCounters.from_context(ctx, "mix", threads=10000)

    def test_all_imprecise_saves_most(self):
        cfg_all = IHWConfig.all_imprecise()
        cfg_add = IHWConfig.units("add")
        c = self._imprecise_counters(cfg_all)
        r_all = estimate_system_savings(c, cfg_all, 0.3, 0.05)
        r_add = estimate_system_savings(c, cfg_add, 0.3, 0.05)
        assert r_all.system_savings > r_add.system_savings

    def test_savings_bounded_by_shares(self):
        cfg = IHWConfig.all_imprecise()
        c = self._imprecise_counters(cfg)
        r = estimate_system_savings(c, cfg, 0.3, 0.05)
        assert 0 <= r.system_savings <= 0.35

    def test_mul_dominated_fpu_improvement_near_table2(self):
        # A mul-only FPU mix approaches the 96% per-unit saving.
        ctx = ArithmeticContext(IHWConfig.units("mul"))
        a = np.ones(10000, dtype=np.float32)
        ctx.mul(a, a)
        c = KernelCounters.from_context(ctx, threads=10000)
        r = estimate_system_savings(c, IHWConfig.units("mul"), 0.3, 0.0)
        assert 0.9 <= r.fpu_improvement <= 0.99

    def test_precise_pinned_ops_dilute(self):
        cfg = IHWConfig.units("mul")
        ctx = ArithmeticContext(cfg)
        a = np.ones(10000, dtype=np.float32)
        ctx.mul(a, a)
        ctx.mul(a, a, precise=True)  # half the muls pinned precise
        half = KernelCounters.from_context(ctx, threads=10000)
        r_half = estimate_system_savings(half, cfg, 0.3, 0.0)

        ctx2 = ArithmeticContext(cfg)
        ctx2.mul(a, a)
        full = KernelCounters.from_context(ctx2, threads=10000)
        r_full = estimate_system_savings(full, cfg, 0.3, 0.0)
        assert r_half.fpu_improvement < r_full.fpu_improvement

    def test_no_sfu_ops_zero_sfu_improvement(self):
        ctx = ArithmeticContext(IHWConfig.all_imprecise())
        ctx.add(np.ones(100, dtype=np.float32), 1.0)
        c = KernelCounters.from_context(ctx, threads=100)
        r = estimate_system_savings(c, IHWConfig.all_imprecise(), 0.3, 0.05)
        assert r.sfu_improvement == 0.0

    def test_invalid_shares_rejected(self):
        c = self._imprecise_counters(IHWConfig.all_imprecise())
        with pytest.raises(ValueError):
            estimate_system_savings(c, IHWConfig.all_imprecise(), 0.8, 0.5)
        with pytest.raises(ValueError):
            estimate_system_savings(c, IHWConfig.all_imprecise(), -0.1, 0.1)

    def test_analytic_library_also_works(self):
        cfg = IHWConfig.all_imprecise()
        c = self._imprecise_counters(cfg)
        r = estimate_system_savings(
            c, cfg, 0.3, 0.05, library=HardwareLibrary.analytic()
        )
        assert r.system_savings > 0

    def test_report_format(self):
        cfg = IHWConfig.all_imprecise()
        c = self._imprecise_counters(cfg)
        text = estimate_system_savings(c, cfg, 0.3, 0.05).format_row()
        assert "holistic" in text and "arith" in text


class TestStallProfile:
    def test_slots_accounted(self):
        from repro.gpu import StallProfile, simulate_sm_window

        profile = StallProfile()
        mix = {OpClass.FPU: 60, OpClass.MEM: 30, OpClass.ALU: 10}
        cycles, issued = simulate_sm_window(mix, resident_warps=8, window=32,
                                            profile=profile)
        assert profile.issued == issued
        # Every (cycle, slot) pair is accounted once.
        assert profile.total_slots == cycles * FERMI_GTX480.issue_width

    def test_fractions_sum_to_one(self):
        from repro.gpu import StallProfile, simulate_sm_window

        profile = StallProfile()
        simulate_sm_window({OpClass.FPU: 10}, resident_warps=4, window=16,
                           profile=profile)
        assert sum(profile.fractions().values()) == pytest.approx(1.0)

    def test_sfu_heavy_kernel_sfu_port_bound(self):
        from repro.gpu import profile_kernel_stalls

        sfu_heavy = make_counters(fpu=2000, sfu=100000, alu=100, mem=100)
        profile = profile_kernel_stalls(sfu_heavy)
        fr = profile.fractions()
        assert fr["sfu_port"] + fr["dependency"] > 0.4

    def test_mem_bound_kernel_shows_memory_stalls(self):
        from repro.gpu import profile_kernel_stalls

        mem_heavy = make_counters(fpu=5000, sfu=0, alu=1000, mem=200000)
        compute = make_counters(fpu=200000, sfu=0, alu=1000, mem=2000)
        fr_mem = profile_kernel_stalls(mem_heavy).fractions()
        fr_cmp = profile_kernel_stalls(compute).fractions()
        mem_stalls = fr_mem["mem_bandwidth"] + fr_mem["lsu_port"] + fr_mem["dependency"]
        cmp_stalls = fr_cmp["mem_bandwidth"] + fr_cmp["lsu_port"] + fr_cmp["dependency"]
        assert mem_stalls > cmp_stalls

    def test_empty_kernel_rejected(self):
        from repro.gpu import KernelCounters, profile_kernel_stalls

        with pytest.raises(ValueError):
            profile_kernel_stalls(KernelCounters(name="empty", threads=32))

    def test_format_rows(self):
        from repro.gpu import profile_kernel_stalls

        text = profile_kernel_stalls(make_counters()).format_rows()
        assert "issued" in text and "dependency" in text
