"""Tests for the analytic error propagation calculus."""

import numpy as np
import pytest

from repro.core import ArithmeticContext, IHWConfig
from repro.erroranalysis import (
    ErrorEstimate,
    Propagator,
    Quantity,
    mantissa_inputs,
    signed_error_moments,
    unit_moments,
)


class TestSignedMoments:
    def test_known_values(self):
        bias, var = signed_error_moments([1.1, 0.9], [1.0, 1.0])
        assert bias == pytest.approx(0.0)
        assert var == pytest.approx(0.01)

    def test_drops_invalid(self):
        bias, var = signed_error_moments([1.1, np.nan], [1.0, 1.0])
        assert bias == pytest.approx(0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            signed_error_moments([np.nan], [1.0])


class TestErrorEstimate:
    def test_spread(self):
        assert ErrorEstimate(0.0, 0.04).spread == pytest.approx(0.2)

    def test_bound(self):
        e = ErrorEstimate(-0.1, 0.01)
        assert e.bound(k=2) == pytest.approx(0.3)

    def test_expected_magnitude_zero_spread(self):
        assert ErrorEstimate(-0.05, 0.0).expected_magnitude() == pytest.approx(0.05)

    def test_expected_magnitude_zero_bias(self):
        # E|N(0, s^2)| = s sqrt(2/pi).
        e = ErrorEstimate(0.0, 0.04)
        assert e.expected_magnitude() == pytest.approx(0.2 * np.sqrt(2 / np.pi))

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            ErrorEstimate(0.0, -1.0)

    def test_exact(self):
        assert ErrorEstimate.exact().bound() == 0.0


class TestUnitMoments:
    def test_disabled_unit_exact(self):
        e = unit_moments("mul", IHWConfig.precise())
        assert e.bias == 0.0 and e.variance == 0.0

    def test_table1_mul_biased_low(self):
        # The Table-1 multiplier always underestimates: negative bias.
        e = unit_moments("mul", IHWConfig.units("mul"))
        assert -0.15 < e.bias < -0.05
        assert e.spread > 0.01

    def test_mitchell_full_path_less_biased(self):
        table1 = unit_moments("mul", IHWConfig.units("mul"))
        full = unit_moments(
            "mul", IHWConfig.units("mul").with_multiplier("mitchell", config="fp_tr0")
        )
        assert abs(full.bias) < 0.2 * abs(table1.bias)

    def test_adder_small_moments(self):
        e = unit_moments("add", IHWConfig.units("add"))
        assert abs(e.bias) < 0.01
        assert e.spread < 0.02

    def test_sub_follows_add(self):
        a = unit_moments("add", IHWConfig.units("add"))
        s = unit_moments("sub", IHWConfig.units("add"))
        assert a == s

    def test_fma_composes_mul_and_add(self):
        fma = unit_moments("fma", IHWConfig.all_imprecise())
        mul = unit_moments("mul", IHWConfig.all_imprecise())
        # The multiplier's 25%-class injection dominates the FMA moments.
        assert fma.bias == pytest.approx(mul.bias, abs=0.01)
        assert fma.variance >= mul.variance

    def test_unsupported_op(self):
        with pytest.raises(ValueError):
            unit_moments("log2", IHWConfig.all_imprecise())


class TestQuantity:
    def test_rejects_negative_magnitude(self):
        with pytest.raises(ValueError):
            Quantity(-1.0)


class TestPropagatorCalculus:
    def test_precise_config_propagates_nothing(self):
        prop = Propagator(IHWConfig.precise())
        q = prop.mul(prop.quantity(2.0), prop.quantity(3.0))
        assert q.magnitude == 6.0
        assert q.error.bound() == 0.0

    def test_mul_magnitudes(self):
        prop = Propagator(IHWConfig.units("mul"))
        q = prop.mul(prop.quantity(2.0), prop.quantity(3.0))
        assert q.magnitude == 6.0
        assert q.error.bias < 0

    def test_variance_accumulates_through_chain(self):
        prop = Propagator(IHWConfig.units("mul"))
        q = prop.quantity(1.0)
        spreads = []
        for _ in range(4):
            q = prop.mul(q, prop.quantity(1.0))
            spreads.append(q.error.spread)
        assert spreads == sorted(spreads)

    def test_add_weights_by_magnitude(self):
        prop = Propagator(IHWConfig.units("mul"))
        big = prop.mul(prop.quantity(100.0), prop.quantity(1.0))
        small = prop.mul(prop.quantity(1.0), prop.quantity(1.0))
        clean = prop.quantity(100.0)
        # Adding a small erroneous term to a large clean one dilutes it.
        diluted = prop.add(clean, small)
        dominated = prop.add(big, small)
        assert abs(diluted.error.bias) < abs(dominated.error.bias)

    def test_rcp_flips_bias(self):
        prop = Propagator(IHWConfig.units("mul"))
        q = prop.mul(prop.quantity(1.0), prop.quantity(1.0))  # bias < 0
        r = Propagator(IHWConfig.units("mul")).rcp(q)
        assert r.error.bias > 0  # 1/(1+b) - 1 > 0 for b < 0

    def test_rsqrt_halves_sensitivity(self):
        prop = Propagator(IHWConfig.precise())
        q = Quantity(4.0, ErrorEstimate(-0.2, 0.04))
        r = prop.rsqrt(q)
        assert r.magnitude == pytest.approx(0.5)
        assert r.error.bias == pytest.approx((1 - 0.2) ** -0.5 - 1)
        assert r.error.variance == pytest.approx(0.01)

    def test_accumulate(self):
        prop = Propagator(IHWConfig.units("add"))
        total = prop.accumulate(prop.quantity(1.0) for _ in range(8))
        assert total.magnitude == pytest.approx(8.0)
        with pytest.raises(ValueError):
            prop.accumulate([])

    def test_zero_scale_guards(self):
        prop = Propagator(IHWConfig.all_imprecise())
        with pytest.raises(ValueError):
            prop.rcp(prop.quantity(0.0))
        with pytest.raises(ValueError):
            prop.rsqrt(prop.quantity(0.0))
        with pytest.raises(ValueError):
            prop.div(prop.quantity(1.0), prop.quantity(0.0))


class TestPredictionsMatchMonteCarlo:
    """The headline validation: predicted vs measured error magnitudes."""

    N = 50_000

    def _measure_chain(self, config, k):
        ctx = ArithmeticContext(config)
        (acc,) = mantissa_inputs(self.N, 1, seed=4)
        exact = acc.astype(np.float64)
        for i in range(k):
            (y,) = mantissa_inputs(self.N, 1, seed=10 + i)
            acc = ctx.mul(acc, y)
            exact = exact * y.astype(np.float64)
        rel = (acc.astype(np.float64) - exact) / exact
        return float(np.abs(rel).mean()), float(rel.std())

    def test_multiplication_chain_magnitude(self):
        config = IHWConfig.units("mul")
        k = 4
        prop = Propagator(config)
        q = prop.quantity(1.0)
        for _ in range(k):
            q = prop.mul(q, prop.quantity(1.0))
        predicted = q.error.expected_magnitude()
        measured, _ = self._measure_chain(config, k)
        assert predicted == pytest.approx(measured, rel=0.35)

    def test_cp_inner_kernel_magnitude(self):
        # q * rsqrt(dx^2 + dy^2 + z^2): the CP hot loop.
        config = IHWConfig.all_imprecise()
        prop = Propagator(config)
        d = prop.quantity(1.0)
        r2 = prop.add(prop.add(prop.mul(d, d), prop.mul(d, d)), prop.quantity(1.0))
        predicted = prop.mul(
            prop.quantity(1.0), prop.rsqrt(r2)
        ).error.expected_magnitude()

        ctx = ArithmeticContext(config)
        dx, dy, z = mantissa_inputs(self.N, 3, seed=9)
        r2_m = ctx.add(
            ctx.add(ctx.mul(dx, dx), ctx.mul(dy, dy)), ctx.mul(z, z, precise=True)
        )
        out = ctx.mul(np.float32(1.0), ctx.rsqrt(r2_m))
        exact = 1.0 / np.sqrt(
            dx.astype(np.float64) ** 2
            + dy.astype(np.float64) ** 2
            + z.astype(np.float64) ** 2
        )
        measured = float(np.abs((out.astype(np.float64) - exact) / exact).mean())
        assert predicted == pytest.approx(measured, rel=0.35)

    def test_dot_product_spread(self):
        config = IHWConfig.units("mul", "add")
        prop = Propagator(config)
        terms = [
            prop.mul(prop.quantity(1.0), prop.quantity(1.0)) for _ in range(8)
        ]
        predicted = prop.accumulate(terms).error

        ctx = ArithmeticContext(config)
        vectors = mantissa_inputs(self.N, 16, seed=21)
        acc = ctx.mul(vectors[0], vectors[1])
        exact = vectors[0].astype(np.float64) * vectors[1].astype(np.float64)
        for i in range(1, 8):
            term = ctx.mul(vectors[2 * i], vectors[2 * i + 1])
            acc = ctx.add(acc, term)
            exact = exact + vectors[2 * i].astype(np.float64) * vectors[
                2 * i + 1
            ].astype(np.float64)
        rel = (acc.astype(np.float64) - exact) / exact
        assert predicted.expected_magnitude() == pytest.approx(
            float(np.abs(rel).mean()), rel=0.4
        )


class TestWorstCasePropagator:
    def test_guaranteed_bound_dominates_measured_max(self):
        from repro.erroranalysis import WorstCasePropagator

        config = IHWConfig.all_imprecise()
        wc = WorstCasePropagator(config)
        d = wc.quantity(1.0)
        r2 = wc.add(wc.add(wc.mul(d, d), wc.mul(d, d)), wc.quantity(1.0))
        out = wc.mul(wc.quantity(1.0), wc.rsqrt(r2))
        bound = wc.bound_of(out)

        ctx = ArithmeticContext(config)
        dx, dy, z = mantissa_inputs(100_000, 3, seed=9)
        r2m = ctx.add(
            ctx.add(ctx.mul(dx, dx), ctx.mul(dy, dy)), ctx.mul(z, z, precise=True)
        )
        o = ctx.mul(np.float32(1.0), ctx.rsqrt(r2m))
        exact = 1.0 / np.sqrt(
            dx.astype(np.float64) ** 2
            + dy.astype(np.float64) ** 2
            + z.astype(np.float64) ** 2
        )
        measured_max = float(np.abs((o.astype(np.float64) - exact) / exact).max())
        assert bound >= measured_max
        assert bound <= 5 * measured_max  # conservative but not vacuous

    def test_precise_config_zero_bound(self):
        from repro.erroranalysis import WorstCasePropagator

        wc = WorstCasePropagator(IHWConfig.precise())
        out = wc.mul(wc.quantity(1.0), wc.quantity(1.0))
        assert wc.bound_of(out) == 0.0

    def test_bound_grows_through_chain(self):
        from repro.erroranalysis import WorstCasePropagator

        wc = WorstCasePropagator(IHWConfig.units("mul"))
        q = wc.quantity(1.0)
        bounds = []
        for _ in range(4):
            q = wc.mul(q, wc.quantity(1.0))
            bounds.append(wc.bound_of(q))
        assert bounds == sorted(bounds)
        assert bounds[0] == pytest.approx(0.25, abs=1e-9)

    def test_worst_bound_dominates_moments_envelope(self):
        from repro.erroranalysis import Propagator, WorstCasePropagator

        config = IHWConfig.units("mul", "add")
        wc = WorstCasePropagator(config)
        mo = Propagator(config)
        q_wc = wc.accumulate(
            [wc.mul(wc.quantity(1.0), wc.quantity(1.0)) for _ in range(4)]
        )
        q_mo = mo.accumulate(
            [mo.mul(mo.quantity(1.0), mo.quantity(1.0)) for _ in range(4)]
        )
        assert wc.bound_of(q_wc) >= q_mo.error.expected_magnitude()

    def test_unbounded_inputs_rejected(self):
        from repro.erroranalysis import WorstCasePropagator

        wc = WorstCasePropagator(IHWConfig.all_imprecise())
        saturated = wc.quantity(1.0, bound=1.0)
        with pytest.raises(ValueError):
            wc.rcp(saturated)
        with pytest.raises(ValueError):
            wc.div(wc.quantity(1.0), saturated)
        with pytest.raises(ValueError):
            wc.quantity(1.0, bound=-0.1)

    def test_mixed_multiplier_modes(self):
        from repro.erroranalysis import WorstCasePropagator

        table1 = WorstCasePropagator(IHWConfig.units("mul"))
        mitchell = WorstCasePropagator(
            IHWConfig.units("mul").with_multiplier("mitchell", config="fp_tr0")
        )
        q1 = table1.mul(table1.quantity(1.0), table1.quantity(1.0))
        q2 = mitchell.mul(mitchell.quantity(1.0), mitchell.quantity(1.0))
        assert table1.bound_of(q1) > mitchell.bound_of(q2)
