"""Tests for the telemetry subsystem: metrics, tracer, drift, integration.

The load-bearing contract: with ``REPRO_TELEMETRY=off`` (the default) the
instrumentation is a true no-op — identical ``ArithmeticContext.counts``,
identical cache keys, no spans, no metrics — and with it on, the spans
nest ``sweep -> experiment -> kernel`` / ``cache.*`` and the drift probe's
binning matches the Figure 8-9 characterization binning.
"""

import io
import json

import numpy as np
import pytest

from repro import telemetry
from repro.core import ArithmeticContext, IHWConfig
from repro.erroranalysis import bin_errors
from repro.runtime import ExperimentRunner, ExperimentSpec, ResultCache
from repro.telemetry import DriftProbe, MetricsRegistry, Tracer, render_span_tree

HOTSPOT = ExperimentSpec.create(
    "hotspot", metric="mae", rows=16, cols=16, iterations=4
)
SWEEP = {"precise": IHWConfig.precise(), "all": IHWConfig.all_imprecise()}


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("ops", op="add").inc(2)
        reg.counter("ops", op="add").inc(3)
        reg.counter("ops", op="mul").inc()
        assert reg.counter("ops", op="add").value == 5
        assert reg.counter("ops", op="mul").value == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_aggregations(self):
        reg = MetricsRegistry()
        for value in (3.0, 7.0, 5.0):
            reg.gauge("last").set(value)
            reg.gauge("hi", agg="max").set(value)
            reg.gauge("lo", agg="min").set(value)
        assert reg.gauge("last").value == 5.0
        assert reg.gauge("hi", agg="max").value == 7.0
        assert reg.gauge("lo", agg="min").value == 3.0

    def test_histogram_buckets_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("t", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            h.observe(value)
        assert h.bucket_counts == [2, 1, 1]
        assert h.cumulative() == [2, 3, 4]
        assert h.sum == pytest.approx(106.2)
        assert h.count == 4

    def test_snapshot_merge_round_trip(self):
        a = MetricsRegistry()
        a.counter("c", k="x").inc(2)
        a.gauge("g", agg="max").set(5)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry.from_snapshot(a.snapshot())
        b.merge(a.snapshot())
        assert b.counter("c", k="x").value == 4
        assert b.gauge("g", agg="max").value == 5
        assert b.histogram("h", buckets=(1.0,)).count == 2

    def test_snapshot_is_json_round_trippable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.01)
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(reg.snapshot()))
        )
        assert restored.snapshot() == reg.snapshot()

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_ops_total", op="add").inc(3)
        reg.histogram("repro_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.prometheus_text()
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{op="add"} 3' in text
        assert 'repro_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_seconds_count 1" in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", label='quo"te').inc()
        assert 'label="quo\\"te"' in reg.prometheus_text()


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_via_context_managers(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", role="x"):
                pass
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner = spans[0]
        assert inner["parent"] == outer["id"]
        assert inner["attrs"] == {"role": "x"}
        assert inner["dur_ms"] >= 0

    def test_absorb_reparents_worker_roots(self):
        parent, worker = Tracer(), Tracer()
        with worker.span("experiment"):
            with worker.span("kernel"):
                pass
        payload = worker.drain()
        with parent.span("sweep") as sweep:
            parent.absorb(payload, parent_id=sweep["id"])
        spans = parent.spans()
        by_name = {s["name"]: s for s in spans}
        assert by_name["experiment"]["parent"] == by_name["sweep"]["id"]
        assert by_name["kernel"]["parent"] == by_name["experiment"]["id"]

    def test_render_span_tree(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            with tracer.span("experiment", app="hotspot"):
                pass
        text = render_span_tree(tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("sweep")
        assert lines[1].startswith("  experiment")
        assert "app=hotspot" in lines[1]

    def test_render_last_root_only(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert render_span_tree(tracer.spans(), roots_only_last=True).startswith(
            "second"
        )


# ----------------------------------------------------------------------
# Drift probe
# ----------------------------------------------------------------------
class TestDriftProbe:
    def test_binning_matches_characterization(self):
        approx = np.array([1.01, 2.1, 3.0, 5.0])
        exact = np.array([1.0, 2.0, 3.0, 4.0])
        probe = DriftProbe(sample_every=1, max_elements=1024)
        probe.observe("mul", approx, lambda: exact)
        stats = probe.ops["mul"]

        rel = np.abs(approx - exact) / np.abs(exact)
        bins, counts = bin_errors(rel)
        assert stats.bins == dict(zip(bins.tolist(), counts.tolist()))
        assert stats.observed == 4
        assert stats.nonzero == 3
        assert stats.err_pct_max == pytest.approx(25.0)

    def test_sampling_every_nth_call(self):
        probe = DriftProbe(sample_every=3, max_elements=16)
        evaluated = []
        for i in range(7):
            probe.observe("add", np.ones(2), lambda i=i: evaluated.append(i)
                          or np.ones(2))
        stats = probe.ops["add"]
        assert stats.calls == 7
        assert stats.sampled_calls == 3  # calls 1, 4, 7
        assert evaluated == [0, 3, 6]  # exact thunk only runs when sampled

    def test_element_subsampling(self):
        probe = DriftProbe(sample_every=1, max_elements=10)
        probe.observe("add", np.ones(100), lambda: np.ones(100))
        assert probe.ops["add"].observed <= 10

    def test_zero_and_nonfinite_exact_skipped(self):
        probe = DriftProbe(sample_every=1, max_elements=16)
        probe.observe(
            "div",
            np.array([1.0, 2.0, 3.0]),
            lambda: np.array([0.0, np.inf, 3.0]),
        )
        stats = probe.ops["div"]
        assert stats.observed == 1
        assert stats.nonzero == 0

    def test_flush_into_registry_and_reset(self):
        probe = DriftProbe(sample_every=1, max_elements=16)
        probe.observe("mul", np.array([1.5]), lambda: np.array([1.0]))
        reg = MetricsRegistry()
        probe.flush_into(reg, kernel="k")
        assert reg.counter("repro_drift_calls_total", kernel="k",
                           op="mul").value == 1
        assert reg.gauge("repro_drift_err_pct_max", agg="max", kernel="k",
                         op="mul").value == pytest.approx(50.0)
        assert not probe.ops  # flushed probes restart clean


# ----------------------------------------------------------------------
# Off is a true no-op
# ----------------------------------------------------------------------
def _run_kernel_counts():
    from repro.apps import hotspot

    result = hotspot.run(IHWConfig.all_imprecise(), 12, 12, 3)
    return dict(result.counters.arith)


class TestOffIsNoOp:
    def test_mode_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry.telemetry_mode() == "off"
        assert not telemetry.metrics_enabled()

    def test_unknown_mode_treated_as_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "bogus")
        assert telemetry.telemetry_mode() == "off"

    def test_counts_identical_with_and_without_telemetry(self):
        with telemetry.override("off"):
            counts_off = _run_kernel_counts()
        with telemetry.override("trace"):
            counts_on = _run_kernel_counts()
        assert counts_off == counts_on

    def test_context_probe_never_touches_counts(self):
        a = np.linspace(0.5, 2.0, 32, dtype=np.float32)
        plain = ArithmeticContext(IHWConfig.all_imprecise())
        probed = ArithmeticContext(IHWConfig.all_imprecise())
        probed.drift_probe = DriftProbe(sample_every=1, max_elements=1024)
        for ctx in (plain, probed):
            ctx.mul(ctx.add(a, a), a)
            ctx.sqrt(a)
        assert dict(plain.counts) == dict(probed.counts)
        assert probed.drift_probe.ops  # the probe did observe

    def test_cache_keys_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = IHWConfig.all_imprecise()
        with telemetry.override("off"):
            key_off = cache.key(HOTSPOT, config)
        with telemetry.override("trace"):
            key_on = cache.key(HOTSPOT, config)
        assert key_off == key_on

    def test_no_spans_or_metrics_recorded_when_off(self):
        with telemetry.override("off"):
            runner = ExperimentRunner(max_workers=1, cache=None)
            runner.sweep(HOTSPOT, SWEEP)
            assert len(telemetry.get_registry()) == 0
            assert telemetry.get_tracer().spans() == []
            assert telemetry.drain_worker() is None
            assert telemetry.flush() == {}


# ----------------------------------------------------------------------
# End-to-end integration
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_traced_sweep_nests_spans(self, tmp_path):
        with telemetry.override("trace"):
            runner = ExperimentRunner(max_workers=1,
                                      cache=ResultCache(tmp_path))
            runner.sweep(HOTSPOT, SWEEP)
            spans = telemetry.get_tracer().spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert set(by_name) >= {"sweep", "experiment", "kernel", "cache.get",
                                "cache.put"}
        ids = {s["id"]: s for s in spans}
        sweep_id = by_name["sweep"][0]["id"]
        for experiment in by_name["experiment"]:
            assert experiment["parent"] == sweep_id
        for kernel in by_name["kernel"]:
            assert ids[kernel["parent"]]["name"] == "experiment"

    def test_metrics_mode_records_without_spans(self):
        with telemetry.override("metrics"):
            runner = ExperimentRunner(max_workers=1, cache=None)
            runner.sweep(HOTSPOT, SWEEP)
            snapshot = telemetry.get_registry().snapshot()
            assert telemetry.get_tracer().spans() == []
        names = {doc["name"] for doc in snapshot}
        assert "repro_kernel_ops_total" in names
        assert "repro_drift_observed_total" in names
        assert "repro_runner_sweeps_total" in names

    def test_drift_only_for_imprecise_kernels(self):
        with telemetry.override("metrics"):
            runner = ExperimentRunner(max_workers=1, cache=None)
            runner.sweep(HOTSPOT, {"precise": IHWConfig.precise()})
            drift = [
                doc for doc in telemetry.get_registry().snapshot()
                if doc["name"].startswith("repro_drift_")
            ]
        assert drift == []

    def test_worker_payload_round_trip(self):
        with telemetry.override("trace"):
            with telemetry.span("kernel"):
                telemetry.counter_inc("repro_x_total")
            payload = telemetry.drain_worker()
            assert telemetry.get_tracer().spans() == []
            with telemetry.span("sweep") as sweep:
                telemetry.absorb_worker(payload, parent_id=sweep["id"])
            spans = telemetry.get_tracer().spans()
        kernel = next(s for s in spans if s["name"] == "kernel")
        sweep = next(s for s in spans if s["name"] == "sweep")
        assert kernel["parent"] == sweep["id"]
        assert telemetry.get_registry().counter("repro_x_total").value == 1

    def test_parallel_sweep_does_not_duplicate_parent_telemetry(
            self, tmp_path, monkeypatch):
        # Forked workers inherit the parent's buffered spans and counters;
        # the pool initializer must clear them at worker startup or they
        # ship back with the chunk results and double-count on absorb.
        monkeypatch.setenv("REPRO_TELEMETRY", "trace")
        telemetry.counter_inc("repro_preexisting_total")
        with telemetry.span("preexisting"):
            pass
        runner = ExperimentRunner(max_workers=2, cache=ResultCache(tmp_path))
        runner.sweep(HOTSPOT, SWEEP)
        spans = telemetry.get_tracer().spans()
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))
        assert sum(s["name"] == "preexisting" for s in spans) == 1
        assert sum(s["name"] == "cache.get" for s in spans) == len(SWEEP)
        registry = telemetry.get_registry()
        assert registry.counter("repro_preexisting_total").value == 1
        misses = registry.counter(
            "repro_cache_requests_total", outcome="miss"
        ).value
        assert misses == len(SWEEP)

    def test_sequential_map_preserves_buffered_telemetry(self):
        # The in-process map path must not drain the parent's buffers the
        # way a worker chunk does.
        with telemetry.override("trace"):
            telemetry.counter_inc("repro_preexisting_total")
            with telemetry.span("preexisting"):
                pass
            runner = ExperimentRunner(max_workers=1, cache=None)
            assert runner.map(abs, [(-1,), (2,)]) == [1, 2]
            names = [s["name"] for s in telemetry.get_tracer().spans()]
            counter = telemetry.get_registry().counter(
                "repro_preexisting_total"
            )
            assert "preexisting" in names and "map" in names
            assert counter.value == 1

    def test_flush_merges_metrics_and_appends_trace(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        with telemetry.override("trace"):
            for expected in (1, 2):
                with telemetry.span("sweep"):
                    telemetry.counter_inc("repro_runs_total")
                written = telemetry.flush()
                merged = MetricsRegistry.from_snapshot_file(
                    written["metrics"]
                )
                assert merged.counter("repro_runs_total").value == expected
        trace_lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert len(trace_lines) == 2
        assert json.loads(trace_lines[0])["name"] == "sweep"

    def test_autotune_and_characterize_emit(self):
        from repro.erroranalysis import characterize_unit
        from repro.quality import MultiplierAutoTuner

        with telemetry.override("metrics"):
            characterize_unit("ifpmul", 1 << 10)
            tuner = MultiplierAutoTuner(
                evaluate=lambda cfg: 0.0,
                constraint=lambda q: q < 1.0,
                max_truncation=4,
            )
            tuner.tune()
            names = {d["name"] for d in telemetry.get_registry().snapshot()}
        assert "repro_characterizations_total" in names
        assert "repro_autotune_probes_total" in names
        assert "repro_autotune_runs_total" in names


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def _sweep(self, tmp_path, extra=()):
        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["sweep", "hotspot", "--configs", "precise|all", "--rows", "16",
             "--iterations", "4", "--workers", "1", "--cache-dir",
             str(tmp_path / "cache"), *extra],
            out=out,
        )
        return code, out.getvalue()

    def test_sweep_stats_flag(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        code, text = self._sweep(tmp_path, extra=["--stats"])
        assert code == 0
        assert "runner stats:" in text
        assert "speedup_vs_sequential" in text

    def test_sweep_json_has_top_level_speedup(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        path = tmp_path / "out.json"
        code, _ = self._sweep(tmp_path, extra=["--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["speedup_vs_sequential"] == \
            payload["stats"]["speedup_vs_sequential"]

    def test_metrics_and_trace_commands(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_TELEMETRY", "trace")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "tel"))
        code, text = self._sweep(tmp_path)
        assert code == 0
        assert "telemetry metrics written to" in text
        assert "telemetry trace written to" in text

        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        out = io.StringIO()
        assert main(["metrics", "--dir", str(tmp_path / "tel")], out=out) == 0
        text = out.getvalue()
        assert "# TYPE repro_kernel_ops_total counter" in text
        assert "repro_drift_err_pct_log2_bin_total" in text

        out = io.StringIO()
        assert main(["trace", "--dir", str(tmp_path / "tel")], out=out) == 0
        tree = out.getvalue()
        assert tree.startswith("sweep")
        assert "experiment" in tree and "kernel" in tree

    def test_viewer_commands_error_without_snapshots(self, tmp_path):
        from repro.cli import main

        empty = str(tmp_path / "void")
        assert main(["metrics", "--dir", empty], out=io.StringIO()) == 2
        assert main(["trace", "--dir", empty], out=io.StringIO()) == 2
