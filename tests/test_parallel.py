"""The multi-core backend leg: thread policy, tiled parity, pool pinning.

Covers the four layers of the parallel contract:

- policy: :mod:`repro.core.backends.threads` resolution order (explicit >
  worker pin > ``REPRO_THREADS`` > CPU count) and clamping rules;
- backend: the ``threaded`` tiling machinery stays bit-identical to the
  fused/reference kernels even with a forced tiny tile width, and the
  numba scalar datapaths match reference element-for-element (exercised
  through the pure-Python stubs when numba is absent, through the JIT
  when present);
- config/registry: ``backend_threads`` plumbs through ``IHWConfig`` and
  ``get_backend`` without ever reaching a serial backend or the cache key;
- runtime: a sweep through a ``ProcessPoolExecutor`` pins worker-side
  backends to one thread and stays bit-identical to the sequential path,
  and the ``repro_backend_threads`` gauge / per-backend op counters are
  published.
"""

import io
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import telemetry
from repro.core import ArithmeticContext, IHWConfig
from repro.core.backends import (
    BackendUnavailableError,
    backend_accepts_threads,
    backend_available,
    get_backend,
)
from repro.core.backends import threads as threads_mod
from repro.core.backends.bench import run_parallel_benchmarks
from repro.core.backends.numba_backend import (
    NUMBA_AVAILABLE,
    NumbaBackend,
    _add_kernel,
    _bt_kernel,
    _mitchell_kernel,
    _mul_kernel,
)
from repro.core.backends.parity import (
    adversarial_operands,
    check_batch_parity,
    check_parity,
)
from repro.core.backends.threaded import MIN_TILE_ELEMENTS, ThreadedFusedBackend
from repro.core.configurable import MultiplierConfig
from repro.core.floatops import format_for_dtype
from repro.runtime import ExperimentRunner, ExperimentSpec, ResultCache

SPEC = ExperimentSpec.create(
    "hotspot", metric="mae", rows=16, cols=16, iterations=3
)


@pytest.fixture(autouse=True)
def _fresh_thread_policy(monkeypatch):
    monkeypatch.delenv(threads_mod.ENV_VAR, raising=False)
    threads_mod.reset()
    yield
    threads_mod.reset()


def _assert_identical(a, b):
    __tracebackhide__ = True
    fmt_uint = {4: np.uint32, 8: np.uint64}[np.asarray(a).dtype.itemsize]
    assert np.array_equal(np.asarray(a).view(fmt_uint),
                          np.asarray(b).view(fmt_uint))


# ----------------------------------------------------------------------
# Thread-count policy
# ----------------------------------------------------------------------
class TestThreadPolicy:
    def test_default_is_cpu_count(self):
        assert threads_mod.resolve_thread_count() == threads_mod.cpu_count()

    def test_explicit_wins_and_is_not_clamped(self):
        big = threads_mod.cpu_count() + 7
        assert threads_mod.resolve_thread_count(big) == big

    def test_explicit_below_one_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            threads_mod.resolve_thread_count(0)

    def test_env_var_honored(self, monkeypatch):
        monkeypatch.setenv(threads_mod.ENV_VAR, "1")
        assert threads_mod.resolve_thread_count() == 1

    def test_env_var_clamped_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv(threads_mod.ENV_VAR,
                           str(threads_mod.cpu_count() + 100))
        assert threads_mod.resolve_thread_count() == threads_mod.cpu_count()

    def test_env_var_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(threads_mod.ENV_VAR, "lots")
        with pytest.raises(ValueError, match="REPRO_THREADS"):
            threads_mod.resolve_thread_count()
        monkeypatch.setenv(threads_mod.ENV_VAR, "0")
        with pytest.raises(ValueError, match=">= 1"):
            threads_mod.resolve_thread_count()

    def test_worker_pin_forces_one_thread(self, monkeypatch):
        monkeypatch.setenv(threads_mod.ENV_VAR, "4")
        threads_mod.pin_worker_threads()
        assert threads_mod.worker_pinned()
        assert threads_mod.resolve_thread_count() == 1
        # An explicit request still beats the pin (deliberate nesting).
        assert threads_mod.resolve_thread_count(3) == 3
        threads_mod.reset()
        assert not threads_mod.worker_pinned()


# ----------------------------------------------------------------------
# Registry and config plumbing
# ----------------------------------------------------------------------
class TestThreadsPlumbing:
    def test_accepts_threads_predicate(self):
        assert backend_accepts_threads("threaded")
        assert backend_accepts_threads("numba-parallel")
        assert not backend_accepts_threads("reference")
        assert not backend_accepts_threads("fused")
        assert not backend_accepts_threads("numba")

    def test_get_backend_forwards_threads(self):
        assert get_backend("threaded", threads=2).threads == 2
        assert get_backend("threaded").threads == threads_mod.cpu_count()

    def test_get_backend_rejects_threads_for_serial_backends(self):
        for name in ("reference", "fused"):
            with pytest.raises(ValueError, match="does not take a thread"):
                get_backend(name, threads=2)

    def test_numba_parallel_availability_follows_numba(self):
        assert backend_available("numba-parallel") == NUMBA_AVAILABLE
        if not NUMBA_AVAILABLE:
            with pytest.raises(BackendUnavailableError):
                get_backend("numba-parallel")

    def test_config_backend_threads_validation(self):
        assert IHWConfig(backend_threads=2).backend_threads == 2
        with pytest.raises(ValueError, match="backend_threads"):
            IHWConfig(backend_threads=0)

    def test_config_with_backend_sets_threads(self):
        cfg = IHWConfig.all_imprecise().with_backend("threaded", threads=2)
        assert cfg.backend == "threaded"
        assert cfg.backend_threads == 2
        assert "threads=2" in cfg.describe()

    def test_backend_threads_never_changes_cache_key(self):
        base = IHWConfig.all_imprecise()
        pinned = base.with_backend("threaded", threads=8)
        assert pinned.cache_key() == base.cache_key()
        assert pinned.canonical() == base.canonical()

    def test_context_uses_config_threads(self):
        ctx = ArithmeticContext(
            IHWConfig(backend="threaded", backend_threads=2))
        assert ctx.backend.name == "threaded"
        assert ctx.backend.threads == 2

    def test_context_ignores_threads_for_serial_backend(self):
        # backend_threads set but the resolved backend is serial: the
        # count must be dropped, not passed (which would raise).
        ctx = ArithmeticContext(IHWConfig(backend_threads=4))
        assert ctx.backend.name == "reference"


# ----------------------------------------------------------------------
# Threaded backend: tiling machinery and bit identity
# ----------------------------------------------------------------------
class TestThreadedBackend:
    def test_bounds_partition_the_range(self):
        bounds = ThreadedFusedBackend._bounds(10, 3)
        assert bounds == [0, 4, 7, 10]
        for n, tiles in ((1, 1), (100, 7), (64, 64)):
            b = ThreadedFusedBackend._bounds(n, tiles)
            assert b[0] == 0 and b[-1] == n and len(b) == tiles + 1
            assert all(hi > lo for lo, hi in zip(b, b[1:]))

    def test_small_arrays_stay_inline(self):
        backend = ThreadedFusedBackend(threads=4)
        assert backend._tile_count(MIN_TILE_ELEMENTS) == 1
        assert backend._tile_count(4 * MIN_TILE_ELEMENTS) == 4
        assert backend._tile_count(10**9) == 4

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_forced_tiling_parity(self, dtype):
        """Bit identity with real multi-tile execution on small vectors."""
        backend = ThreadedFusedBackend(threads=4)
        backend._min_tile = 64  # force the tiled path in the harness
        with np.errstate(all="ignore"):
            assert check_parity(backend, dtype=dtype, n_random=1024) == []
            assert check_batch_parity(backend, dtype=dtype,
                                      n_random=1024) == []

    def test_tiled_matches_untiled_2d(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(64, 64)).astype(np.float32)
        b = rng.normal(size=(64, 64)).astype(np.float32)
        tiled = ThreadedFusedBackend(threads=3)
        tiled._min_tile = 128
        inline = ThreadedFusedBackend(threads=1)
        out = tiled.imprecise_add(a, b, 8)
        assert out.shape == a.shape
        _assert_identical(out, inline.imprecise_add(a, b, 8))

    def test_scratch_accounting_aggregates_shards(self):
        backend = ThreadedFusedBackend(threads=2)
        backend._min_tile = 64
        rng = np.random.default_rng(4)
        a = rng.normal(size=512).astype(np.float32)
        backend.imprecise_add(a, a, 8)
        assert len(backend._shards) == 2
        assert backend.scratch_nbytes() > 0
        assert backend.release_scratch() > 0
        assert backend.scratch_nbytes() == 0


# ----------------------------------------------------------------------
# Numba scalar datapaths (pure-Python stubs when numba is absent)
# ----------------------------------------------------------------------
def _run_kernel(kernel, a, b, fmt, extra):
    bits_a = np.ascontiguousarray(a.view(fmt.uint).reshape(-1)).astype(np.int64)
    bits_b = np.ascontiguousarray(b.view(fmt.uint).reshape(-1)).astype(np.int64)
    out = np.empty(a.size, dtype=np.int64)
    kernel(bits_a, bits_b, out, fmt.mantissa_bits, fmt.exponent_bits, *extra)
    return out.astype(fmt.uint).view(fmt.dtype)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestNumbaKernels:
    """Element loops vs reference on adversarial operands.

    These run in every environment: without numba the ``@njit`` stub makes
    the kernels plain Python (slow but exact), with numba they are the
    compiled dispatchers the backend ships.
    """

    def _operands(self, dtype):
        fmt = format_for_dtype(dtype)
        a, b = adversarial_operands(dtype, n_random=96)
        return fmt, a, b

    def test_add_kernel(self, dtype):
        fmt, a, b = self._operands(dtype)
        ref = get_backend("reference")
        nan_bits = int(np.asarray(np.nan, fmt.dtype).view(fmt.uint))
        with np.errstate(all="ignore"):
            got = _run_kernel(_add_kernel, a, b, fmt, (8, nan_bits))
            _assert_identical(got, ref.imprecise_add(a, b, 8, dtype=dtype))

    def test_mul_kernel(self, dtype):
        fmt, a, b = self._operands(dtype)
        ref = get_backend("reference")
        nan_bits = int(np.asarray(np.nan, fmt.dtype).view(fmt.uint))
        with np.errstate(all="ignore"):
            got = _run_kernel(_mul_kernel, a, b, fmt, (fmt.bias, nan_bits))
            _assert_identical(got, ref.imprecise_multiply(a, b, dtype=dtype))

    def test_mitchell_kernel(self, dtype):
        fmt, a, b = self._operands(dtype)
        ref = get_backend("reference")
        nan_bits = int(np.asarray(np.nan, fmt.dtype).view(fmt.uint))
        for name in ("fp_tr0", "lp_tr0", "fp_tr8", "lp_tr16"):
            config = MultiplierConfig.from_name(name)
            if config.truncation > fmt.mantissa_bits:
                continue
            with np.errstate(all="ignore"):
                got = _run_kernel(
                    _mitchell_kernel, a, b, fmt,
                    (fmt.bias, nan_bits, 1 if config.path == "log" else 0,
                     int(config.truncation)))
                _assert_identical(
                    got, ref.configurable_multiply(a, b, config, dtype=dtype))

    def test_bt_kernel(self, dtype):
        fmt, a, b = self._operands(dtype)
        ref = get_backend("reference")
        nan_bits = int(np.asarray(np.nan, fmt.dtype).view(fmt.uint))
        for truncation, rounding in ((0, True), (8, True), (8, False)):
            with np.errstate(all="ignore"):
                got = _run_kernel(
                    _bt_kernel, a, b, fmt,
                    (fmt.bias, nan_bits, truncation, 1 if rounding else 0))
                _assert_identical(
                    got, ref.truncated_multiply(a, b, truncation, dtype=dtype,
                                                rounding=rounding))


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestNumbaWarmup:
    def test_warm_up_records_compile_seconds(self):
        backend = get_backend("numba")
        assert set(backend.compile_seconds) >= {
            "add", "mul", "mul_mitchell", "mul_truncated"}
        assert all(v >= 0.0 for v in backend.compile_seconds.values())

    def test_warm_up_runs_once_per_class(self):
        first = get_backend("numba").compile_seconds
        second = get_backend("numba").compile_seconds
        assert first is second  # the classmethod guard, not a re-time

    def test_parallel_backend_has_own_compile_table(self):
        serial = get_backend("numba")
        parallel = get_backend("numba-parallel")
        assert parallel.compile_seconds is not serial.compile_seconds
        assert "add_batch" in parallel.compile_seconds


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
def test_numba_backends_raise_without_numba():
    for name in ("numba", "numba-parallel"):
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend(name)
    assert not NumbaBackend._warmed


# ----------------------------------------------------------------------
# Runtime: pool pinning and telemetry
# ----------------------------------------------------------------------
def _pool_probe(_):
    from repro.core.backends import threads as t

    return t.worker_pinned(), t.resolve_thread_count()


class TestRunnerIntegration:
    def test_worker_init_pins_threads(self):
        from repro.runtime.runner import _worker_init

        with ProcessPoolExecutor(max_workers=1,
                                 initializer=_worker_init) as pool:
            pinned, threads = list(pool.map(_pool_probe, [None]))[0]
        assert pinned is True
        assert threads == 1
        # The parent process stays unpinned.
        assert not threads_mod.worker_pinned()

    def test_pooled_threaded_sweep_matches_sequential(self, tmp_path):
        """Workers x threads never oversubscribes, results stay identical."""
        configs = {
            f"th{t}": IHWConfig.all_imprecise(adder_threshold=t).with_backend(
                "threaded")
            for t in (4, 8, 12, 16)
        }
        pooled = ExperimentRunner(
            max_workers=2, chunk_size=1,
            cache=ResultCache(tmp_path / "pool"),
        ).sweep(SPEC, configs)
        sequential = ExperimentRunner(max_workers=1, cache=None).sweep(
            SPEC, configs)
        for name in configs:
            assert pooled[name].quality == sequential[name].quality
            assert np.array_equal(pooled[name].output,
                                  sequential[name].output)

    def test_runner_publishes_thread_gauge(self):
        with telemetry.override("metrics"):
            telemetry.get_registry().clear()
            ExperimentRunner(max_workers=1, cache=None)
            text = telemetry.get_registry().prometheus_text()
        assert "repro_backend_threads" in text

    def test_op_counters_carry_new_backend_names(self):
        with telemetry.override("metrics"):
            telemetry.get_registry().clear()
            ctx = ArithmeticContext(
                IHWConfig.all_imprecise().with_backend("threaded"))
            ctx.op_timer = telemetry.make_op_timer()
            ctx.mul(np.float32(1.5), np.float32(2.5))
            telemetry.record_kernel("parallel-test", ctx)
            text = telemetry.get_registry().prometheus_text()
        assert 'backend="threaded"' in text
        assert "repro_backend_op_calls_total" in text


# ----------------------------------------------------------------------
# Bench: the parallel section
# ----------------------------------------------------------------------
class TestParallelBench:
    def test_parallel_section_structure(self):
        section = run_parallel_benchmarks(size=4096, repeats=1,
                                          parity_samples=256, threads=1)
        assert section["baseline"] == "fused"
        assert section["threads"] == 1
        threaded = section["backends"]["threaded"]
        assert threaded["parity_ok"] is True
        for op in ("add", "mul", "fma", "mul_mitchell_batch"):
            assert section["fused_seconds"][op] > 0
            assert threaded["ops"][op]["seconds"] > 0
            assert "speedup_vs_fused" in threaded["ops"][op]
        numba_entry = section["backends"]["numba-parallel"]
        assert numba_entry["available"] == NUMBA_AVAILABLE
        if NUMBA_AVAILABLE:
            assert numba_entry["parity_ok"] is True
            assert "compile_seconds" in numba_entry

    def test_cli_refuses_oversubscription(self):
        from repro.cli import main

        over = threads_mod.cpu_count() + 1
        err = io.StringIO()
        code = main(["bench", "--quick", "--no-write",
                     "--threads", str(over)], out=err)
        assert code == 2

    def test_cli_refuses_nonpositive_threads(self):
        from repro.cli import main

        code = main(["bench", "--quick", "--no-write", "--threads", "0"],
                    out=io.StringIO())
        assert code == 2
