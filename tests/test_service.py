"""Tests for the sweep service: protocol, cache backends, queue, HTTP.

The contract under test mirrors docs/SERVICE.md: every answer is the
sanitized content-addressed cache entry serialized canonically, so the
warm, cold, coalesced, remote-cache, and fault-disturbed paths all
produce bit-identical bytes; identical in-flight work coalesces to one
computation; and the queue's backpressure bounds are enforced with
retryable statuses.
"""

import concurrent.futures
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import faults, telemetry
from repro.core import IHWConfig
from repro.runtime import (
    CacheBackend,
    CacheBackendError,
    DirectoryBackend,
    ExperimentSpec,
    HTTPCacheBackend,
    ResultCache,
)
from repro.service import (
    ProtocolError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SweepRequest,
    canonical_json,
    meets_target,
    sanitize_document,
    serve_in_thread,
)

TINY = ExperimentSpec.create("hotspot", metric="mae",
                             rows=8, cols=8, iterations=2)
TINY_PARAMS = {"rows": 8, "cols": 8, "iterations": 2}

CONFIGS = {
    "precise": IHWConfig.precise(),
    "add": IHWConfig.units("add"),
    "all": IHWConfig.all_imprecise(),
}


def start_service(tmp_path, **overrides):
    config = ServiceConfig(cache_dir=str(tmp_path / "svc_cache"), **overrides)
    return serve_in_thread(config)


def tiny_sweep(client, configs=None, **kwargs):
    configs = CONFIGS if configs is None else configs
    return client.sweep("hotspot", configs=configs, params=TINY_PARAMS,
                        metric="mae", **kwargs)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_canonical_configs_round_trip(self):
        request = SweepRequest.from_document({
            "app": "hotspot", "params": TINY_PARAMS,
            "configs": {name: cfg.canonical()
                        for name, cfg in CONFIGS.items()},
        })
        assert request.spec == TINY
        assert request.configs == CONFIGS

    def test_config_specs_match_cli_vocabulary(self):
        request = SweepRequest.from_document({
            "app": "hotspot", "params": TINY_PARAMS,
            "config_specs": {"a": "all", "p": "precise", "u": "add,mul"},
        })
        assert request.configs["a"] == IHWConfig.all_imprecise()
        assert request.configs["p"] == IHWConfig.precise()
        assert request.configs["u"] == IHWConfig.units("add", "mul")

    def test_family_expands(self):
        request = SweepRequest.from_document({
            "app": "hotspot", "params": TINY_PARAMS, "family": "threshold",
        })
        assert set(request.configs) == {f"th{n}" for n in (2, 4, 6, 8, 10, 12)}

    def test_default_metric_per_app(self):
        doc = {"app": "raytracing", "params": {"width": 8, "height": 8},
               "config_specs": {"a": "all"}}
        assert SweepRequest.from_document(doc).spec.metric == "ssim"

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            SweepRequest.from_document({"app": "hotspot", "bogus": 1})

    def test_missing_configs_rejected(self):
        with pytest.raises(ProtocolError, match="names no configurations"):
            SweepRequest.from_document({"app": "hotspot",
                                        "params": TINY_PARAMS})

    def test_unknown_app_rejected(self):
        with pytest.raises(ProtocolError, match="unknown app"):
            SweepRequest.from_document({"app": "doom",
                                        "config_specs": {"a": "all"}})

    def test_config_count_limit_is_413(self):
        doc = {"app": "hotspot", "params": TINY_PARAMS, "family": "units"}
        with pytest.raises(ProtocolError) as excinfo:
            SweepRequest.from_document(doc, max_configs=3)
        assert excinfo.value.status == 413

    def test_meets_target_orientation(self):
        assert meets_target("mae", 0.1, 0.5)  # error metric: lower is better
        assert not meets_target("mae", 0.9, 0.5)
        assert meets_target("ssim", 0.9, 0.5)  # higher is better
        assert not meets_target("ssim", 0.1, 0.5)

    def test_sanitize_drops_only_volatile_timing(self):
        doc = {"quality": 1.0, "compute_seconds": 0.5, "key": "ab"}
        assert sanitize_document(doc) == {"quality": 1.0, "key": "ab"}

    def test_from_canonical_round_trips_cache_key(self):
        for cfg in (
            IHWConfig.precise(),
            IHWConfig.all_imprecise(adder_threshold=4),
            IHWConfig.units("mul").with_multiplier("mitchell",
                                                   config="lp_tr8"),
            IHWConfig.units("mul").with_multiplier("truncated",
                                                   truncation=16),
            IHWConfig.units("rcp", "sqrt").with_sfu_mode("quadratic"),
        ):
            rebuilt = IHWConfig.from_canonical(cfg.canonical())
            assert rebuilt == cfg
            assert rebuilt.cache_key() == cfg.cache_key()


# ----------------------------------------------------------------------
# Cache backend extraction
# ----------------------------------------------------------------------
class _FailingBackend(CacheBackend):
    """A backend whose transport is down."""

    name = "failing"

    def read_json(self, key):
        raise CacheBackendError("transport down")

    def read_npz(self, key):
        raise CacheBackendError("transport down")

    def write_entry(self, key, json_text, npz_bytes):
        raise CacheBackendError("transport down")

    def contains(self, key):
        return False

    def acquire_lock(self, key):
        return True

    def release_lock(self, key):
        pass


class TestCacheBackends:
    def test_directory_backend_is_byte_compatible_default(self, tmp_path):
        """Explicit DirectoryBackend and plain root produce identical trees."""
        config = IHWConfig.units("add")
        evaluation = TINY.framework().evaluate(config)
        a = ResultCache(tmp_path / "a")
        b = ResultCache(backend=DirectoryBackend(tmp_path / "b"))
        assert a.put(TINY, config, evaluation)
        assert b.put(TINY, config, evaluation)
        json_a, _ = a.entry_paths(TINY, config)
        json_b, _ = b.entry_paths(TINY, config)
        assert json_a.relative_to(tmp_path / "a") == \
            json_b.relative_to(tmp_path / "b")
        assert json_a.read_bytes() == json_b.read_bytes()

    def test_transport_errors_are_misses_not_quarantines(self):
        cache = ResultCache(backend=_FailingBackend())
        config = IHWConfig.precise()
        assert cache.get(TINY, config) is None
        assert cache.document(TINY, config) is None
        assert cache.stats.backend_errors == 2
        assert cache.stats.misses == 2
        assert cache.stats.quarantined == 0
        evaluation = TINY.framework().evaluate(config)
        assert cache.put(TINY, config, evaluation) is False
        assert cache.stats.backend_errors == 3

    def test_document_matches_entry_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = IHWConfig.units("add")
        evaluation = TINY.framework().evaluate(config)
        cache.put(TINY, config, evaluation, compute_seconds=1.5)
        doc = cache.document(TINY, config)
        json_path, _ = cache.entry_paths(TINY, config)
        assert doc == json.loads(json_path.read_text())
        assert doc["compute_seconds"] == 1.5
        built = cache.build_document(TINY, config, evaluation,
                                     compute_seconds=1.5)
        assert built == doc

    def test_http_backend_round_trip_via_peer(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            remote = ResultCache(backend=HTTPCacheBackend(handle.base_url))
            config = IHWConfig.units("add")
            evaluation = TINY.framework().evaluate(config)
            assert remote.get(TINY, config) is None
            assert remote.put(TINY, config, evaluation) is True
            served = remote.get(TINY, config)
            assert served is not None
            assert served.quality == evaluation.quality
            assert served.savings == evaluation.savings
            # The bytes landed in the peer's local tree, byte-compatible.
            local = handle.service.cache
            assert local.entry_count() == 1
            assert remote.backend.contains(remote.key(TINY, config))
            assert remote.entry_count() == 1
            # And locks round-trip through the peer.
            key = remote.key(TINY, config)
            assert remote.backend.acquire_lock(key) is True
            assert remote.backend.acquire_lock(key) is False
            remote.backend.release_lock(key)
            assert remote.backend.acquire_lock(key) is True
            remote.backend.release_lock(key)
        finally:
            handle.stop()

    def test_http_backend_unreachable_is_transport_error(self):
        backend = HTTPCacheBackend("http://127.0.0.1:9")  # discard port
        with pytest.raises(CacheBackendError):
            backend.read_json("ab" * 32)
        cache = ResultCache(backend=backend)
        assert cache.get(TINY, IHWConfig.precise()) is None
        assert cache.stats.backend_errors == 1

    def test_remote_backed_cache_reports_no_local_root(self):
        cache = ResultCache(backend=HTTPCacheBackend("http://127.0.0.1:9"))
        assert cache.local_root is None
        with pytest.raises(ValueError, match="no local paths"):
            cache.entry_paths(TINY, IHWConfig.precise())


class _ScriptedPeer:
    """Raw TCP server whose per-connection behavior is a callable — the
    transport-fault shapes (truncation, stalls) a real HTTP stack won't
    produce on demand."""

    def __init__(self, behavior):
        self._behavior = behavior
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self._sock.settimeout(0.1)
        self.base_url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            try:
                conn.settimeout(2.0)
                try:
                    conn.recv(65536)  # the request line; content irrelevant
                except OSError:
                    pass
                self._behavior(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._sock.close()


class TestHTTPBackendTransportFaults:
    """Every transport-level failure shape is a counted miss
    (``CacheStats.backend_errors``), never a quarantine — the peer's
    bytes are not damaged just because the network is."""

    def test_connection_refused_is_counted_backend_error(self):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        cache = ResultCache(
            backend=HTTPCacheBackend(f"http://127.0.0.1:{port}")
        )
        assert cache.get(TINY, IHWConfig.precise()) is None
        assert cache.stats.backend_errors == 1
        assert cache.stats.misses == 1
        assert cache.stats.quarantined == 0

    def test_mid_body_truncation_is_miss_not_quarantine(self):
        def truncate(conn):
            # Promise 4096 body bytes, deliver 5, sever: the client's
            # read raises IncompleteRead (an HTTPException, not OSError).
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: 4096\r\n"
                         b"Connection: close\r\n\r\n"
                         b'{"tr')

        peer = _ScriptedPeer(truncate)
        try:
            cache = ResultCache(backend=HTTPCacheBackend(peer.base_url))
            assert cache.get(TINY, IHWConfig.precise()) is None
            assert cache.stats.backend_errors == 1
            assert cache.stats.misses == 1
            assert cache.stats.quarantined == 0
        finally:
            peer.close()

    def test_slow_peer_times_out_as_backend_error(self):
        def stall(conn):
            time.sleep(1.0)  # never answer within the client's budget

        peer = _ScriptedPeer(stall)
        try:
            cache = ResultCache(
                backend=HTTPCacheBackend(peer.base_url, timeout=0.2)
            )
            start = time.monotonic()
            assert cache.document(TINY, IHWConfig.precise()) is None
            assert time.monotonic() - start < 5.0
            assert cache.stats.backend_errors == 1
            assert cache.stats.quarantined == 0
        finally:
            peer.close()


# ----------------------------------------------------------------------
# Service endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz_queuez_metricsz(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            health = client.healthz()
            assert health["status"] == "ok"
            queue = client.queuez()
            assert queue["max_pending"] == 64
            assert queue["pending"] == 0
            with telemetry.override("metrics"):
                telemetry.counter_inc("repro_service_test_probe_total")
                assert "repro_service_test_probe_total" in client.metricsz()
        finally:
            handle.stop()

    def test_unknown_route_is_404(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            status, _headers, _body = client.request("GET", "/nope")
            assert status == 404
        finally:
            handle.stop()

    def test_bad_json_body_is_400(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            status, _headers, body = client.request(
                "POST", "/v1/sweep", b"not json"
            )
            assert status == 400
            assert "not JSON" in json.loads(body)["error"]
        finally:
            handle.stop()

    def test_config_limit_is_413(self, tmp_path):
        handle = start_service(tmp_path, max_configs=2)
        try:
            client = ServiceClient(handle.base_url, retries=0)
            with pytest.raises(ServiceError) as excinfo:
                tiny_sweep(client)  # 3 configs > limit 2
            assert excinfo.value.status == 413
        finally:
            handle.stop()

    def test_malformed_cache_key_is_400(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            status, _headers, _body = client.request(
                "GET", "/cache/v1/not-a-key"
            )
            assert status == 400
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Warm/cold serving and bit-identity
# ----------------------------------------------------------------------
class TestWarmCold:
    def test_cold_then_warm_is_bit_identical(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            cold = tiny_sweep(client)
            assert cold["served"] == {"hits": 0, "misses": 3, "errors": 0}
            warm = tiny_sweep(client)
            assert warm["served"] == {"hits": 3, "misses": 0, "errors": 0}
            assert canonical_json(cold["results"]) == \
                canonical_json(warm["results"])
            # No volatile fields in the payload.
            for doc in cold["results"].values():
                assert "compute_seconds" not in doc
                assert doc["quality"] is not None
            snapshot = handle.service.queue.snapshot()
            # Batching is opportunistic: the worker may take the first
            # item before its siblings enqueue, but never recomputes.
            assert 1 <= snapshot["executions"] <= 3
            assert snapshot["completed"] == 3
        finally:
            handle.stop()

    def test_quality_target_reporting(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            response = tiny_sweep(client, quality_target=1e-9)
            met = response["target_met"]
            assert met["precise"] is True  # zero error
            assert met["all"] is False
        finally:
            handle.stop()

    def test_streaming_matches_unary(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            unary = tiny_sweep(client)
            lines = list(client.sweep_stream(
                "hotspot", configs=CONFIGS, params=TINY_PARAMS, metric="mae",
            ))
            done = lines[-1]
            assert done["done"] is True
            assert done["served"]["hits"] == 3
            by_name = {line["name"]: line["result"]
                       for line in lines[:-1]}
            assert canonical_json(by_name) == canonical_json(unary["results"])
        finally:
            handle.stop()

    def test_sweep_groups_accounting_matches_queuez(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            tiny_sweep(client)
            tiny_sweep(client)
            groups = client.queuez()["groups"]
            # precise and add share a ledger shape with sweep --stats:
            # one miss (first call) + one hit (second call) per group.
            assert groups["precise|table1|linear"] == {"hits": 1, "misses": 1}
            assert groups["add|table1|linear"] == {"hits": 1, "misses": 1}
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_16_identical_cold_requests_compute_once(self, tmp_path):
        handle = start_service(tmp_path)
        queue = handle.service.queue
        coalesce_counter = telemetry.get_registry().counter(
            "repro_service_coalesced_total"
        )
        before = coalesce_counter.value
        try:
            client = ServiceClient(handle.base_url, timeout=120)
            queue.pause()
            with telemetry.override("metrics"):
                with concurrent.futures.ThreadPoolExecutor(16) as pool:
                    futures = [
                        pool.submit(tiny_sweep, client,
                                    {"all": IHWConfig.all_imprecise()})
                        for _ in range(16)
                    ]
                    deadline = time.time() + 30
                    while time.time() < deadline:
                        snapshot = queue.snapshot()
                        if snapshot["coalesced"] == 15 and \
                                snapshot["inflight"] == 1:
                            break
                        time.sleep(0.01)
                    else:
                        pytest.fail("requests never coalesced: "
                                    f"{queue.snapshot()}")
                    queue.resume()
                    responses = [f.result(timeout=120) for f in futures]
            snapshot = queue.snapshot()
            assert snapshot["executions"] == 1
            assert snapshot["coalesced"] == 15
            assert handle.service.cache.stats.writes == 1
            assert coalesce_counter.value - before == 15
            payloads = {canonical_json(r["results"]) for r in responses}
            assert len(payloads) == 1  # all 16 answers bit-identical
        finally:
            queue.resume()
            handle.stop()


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        handle = start_service(tmp_path, max_pending=1, retry_after=7.0)
        queue = handle.service.queue
        try:
            client = ServiceClient(handle.base_url, timeout=120)
            queue.pause()
            with concurrent.futures.ThreadPoolExecutor(1) as pool:
                blocked = pool.submit(
                    tiny_sweep, client, {"all": IHWConfig.all_imprecise()}
                )
                deadline = time.time() + 30
                while time.time() < deadline:
                    if queue.snapshot()["inflight"] == 1:
                        break
                    time.sleep(0.01)
                # The queue is at its bound: distinct new work is refused.
                request = urllib.request.Request(
                    handle.base_url + "/v1/sweep",
                    data=canonical_json({
                        "app": "hotspot", "params": TINY_PARAMS,
                        "config_specs": {"add": "add"},
                    }).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=30)
                assert excinfo.value.code == 429
                assert excinfo.value.headers["Retry-After"] == "7"
                body = json.loads(excinfo.value.read())
                assert body["retry_after"] == 7.0
                # Coalescing onto the existing item is still admitted.
                queue.resume()
                assert blocked.result(timeout=120)["served"]["misses"] == 1
        finally:
            queue.resume()
            handle.stop()

    def test_client_retries_through_429(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            with faults.injection("queue-full:match=/healthz,times=1"):
                # Attempt 0 is refused with 429; the retry (attempt 1)
                # passes the deterministic guard and succeeds.
                client = ServiceClient(handle.base_url, retries=1,
                                       backoff=0.01)
                assert client.healthz()["status"] == "ok"
                strict = ServiceClient(handle.base_url, retries=0)
                with pytest.raises(ServiceError) as excinfo:
                    strict.healthz()
                assert excinfo.value.status == 429
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Deterministic service faults and chaos
# ----------------------------------------------------------------------
class TestServiceFaults:
    def test_slow_response_delays_but_preserves_bytes(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url)
            fast = client.healthz()
            with faults.injection(
                "slow-response:match=/healthz,times=1,seconds=0.3"
            ):
                start = time.perf_counter()
                slow = client.healthz()
                assert time.perf_counter() - start >= 0.3
            assert slow["status"] == fast["status"]
        finally:
            handle.stop()

    def test_dropped_connection_recovers_on_retry(self, tmp_path):
        handle = start_service(tmp_path)
        try:
            with faults.injection("dropped-connection:match=/healthz,times=1"):
                strict = ServiceClient(handle.base_url, retries=0)
                with pytest.raises(ServiceError):
                    strict.healthz()
                retrying = ServiceClient(handle.base_url, retries=1,
                                         backoff=0.01)
                assert retrying.healthz()["status"] == "ok"
        finally:
            handle.stop()

    def test_chaos_hammer_is_bit_identical_to_clean_run(self, tmp_path):
        # The reference: a clean, sequential, in-process evaluation.
        framework = TINY.framework()
        clean = {name: framework.evaluate(cfg)
                 for name, cfg in CONFIGS.items()}

        handle = start_service(tmp_path)
        try:
            spec = ("slow-response:match=/v1/sweep,times=1,seconds=0.05;"
                    "dropped-connection:match=/v1/sweep,times=1")
            with faults.injection(spec):
                clients = [
                    ServiceClient(handle.base_url, timeout=120,
                                  retries=3, backoff=0.01)
                    for _ in range(6)
                ]
                with concurrent.futures.ThreadPoolExecutor(6) as pool:
                    futures = [pool.submit(tiny_sweep, c) for c in clients]
                    responses = [f.result(timeout=120) for f in futures]
            payloads = {canonical_json(r["results"]) for r in responses}
            assert len(payloads) == 1
            for name, evaluation in clean.items():
                doc = responses[0]["results"][name]
                assert doc["quality"] == evaluation.quality  # bitwise
                assert doc["savings"]["system_savings"] == \
                    evaluation.savings.system_savings
                assert doc["savings"]["arithmetic_savings"] == \
                    evaluation.savings.arithmetic_savings
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Two-instance topology (acceptance E2E)
# ----------------------------------------------------------------------
class TestSharedCacheTopology:
    def test_b_serves_warm_from_a_with_zero_recompute(self, tmp_path):
        a = start_service(tmp_path)
        b = None
        try:
            b = serve_in_thread(ServiceConfig(remote_cache=a.base_url))
            client_a = ServiceClient(a.base_url, timeout=120)
            client_b = ServiceClient(b.base_url, timeout=120)

            computed = tiny_sweep(client_a)
            assert computed["served"]["misses"] == 3

            served = tiny_sweep(client_b)
            assert served["served"] == {"hits": 3, "misses": 0, "errors": 0}
            assert b.service.queue.snapshot()["executions"] == 0
            assert canonical_json(computed["results"]) == \
                canonical_json(served["results"])

            # B can also compute cold work, writing through to A's store.
            extra = {"mul": IHWConfig.units("mul")}
            cold_b = tiny_sweep(client_b, extra)
            assert cold_b["served"]["misses"] == 1
            warm_a = tiny_sweep(client_a, extra)
            assert warm_a["served"]["hits"] == 1
            assert canonical_json(cold_b["results"]) == \
                canonical_json(warm_a["results"])
        finally:
            if b is not None:
                b.stop()
            a.stop()


# ----------------------------------------------------------------------
# Framework and telemetry integration
# ----------------------------------------------------------------------
class TestIntegration:
    def test_evaluate_many_via_client_matches_local(self, tmp_path):
        from tests.test_runtime import assert_evaluations_identical

        handle = start_service(tmp_path)
        try:
            client = ServiceClient(handle.base_url, timeout=120)
            framework = TINY.framework()
            local = {name: framework.evaluate(cfg)
                     for name, cfg in CONFIGS.items()}
            remote = framework.evaluate_many(CONFIGS, client=client)
            assert list(remote) == list(CONFIGS)
            for name in CONFIGS:
                assert_evaluations_identical(local[name], remote[name])
        finally:
            handle.stop()

    def test_runner_and_client_are_exclusive(self):
        framework = TINY.framework()
        with pytest.raises(ValueError, match="not both"):
            framework.evaluate_many(CONFIGS, runner=object(),
                                    client=object())

    def test_sweep_stats_reports_signature_groups(self, tmp_path, monkeypatch):
        from tests.test_cli import run_cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = ("sweep", "hotspot", "--family", "threshold", "--rows", "8",
                "--iterations", "2", "--workers", "1", "--stats",
                "--json", str(tmp_path / "out.json"))
        code, out = run_cli(*argv)
        assert code == 0
        assert "signature group" in out
        # The whole threshold family shares one batch signature; the
        # ledger key matches the /queuez rendering exactly.
        key = "add+div+fma+log2+mul+rcp+rsqrt+sqrt|table1|linear"
        cold = json.loads((tmp_path / "out.json").read_text())
        assert cold["stats"]["signature_groups"] == {
            key: {"hits": 0, "misses": 6}
        }
        code, _out = run_cli(*argv)
        assert code == 0
        warm = json.loads((tmp_path / "out.json").read_text())
        assert warm["stats"]["signature_groups"] == {
            key: {"hits": 6, "misses": 0}
        }

    def test_execute_span_reparented_under_request(self, tmp_path):
        with telemetry.override("trace"):
            telemetry.reset()
            handle = start_service(tmp_path)
            try:
                client = ServiceClient(handle.base_url, timeout=120)
                tiny_sweep(client, {"all": IHWConfig.all_imprecise()})
                deadline = time.time() + 10
                spans = []
                while time.time() < deadline:
                    spans = telemetry.get_tracer().drain()
                    if any(s["name"] == "service.execute" for s in spans):
                        break
                    time.sleep(0.05)
            finally:
                handle.stop()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert "service.request" in by_name
        assert "service.execute" in by_name
        request_ids = {s["id"] for s in by_name["service.request"]}
        # The queue boundary is crossed: the worker-side execution span
        # is a child of the request that enqueued the work.
        assert by_name["service.execute"][0]["parent"] in request_ids
