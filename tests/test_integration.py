"""Integration tests: cross-module pipelines and end-to-end invariants."""

import numpy as np
import pytest

from repro.apps import cp, hotspot, raytrace, srad
from repro.core import ArithmeticContext, IHWConfig, MultiplierConfig
from repro.erroranalysis import analyze_sensitivity, characterize_multiplier_config
from repro.framework import PowerQualityFramework
from repro.gpu import (
    DVFSPoint,
    GPUPowerModel,
    combined_savings,
    estimate_system_savings,
    simulate_kernel,
)
from repro.hardware import HardwareLibrary
from repro.quality import MultiplierAutoTuner, QualityTuner, mae, ssim


class TestDeterminism:
    """The whole stack is deterministic — identical runs, identical bits."""

    def test_app_runs_reproducible(self):
        cfg = IHWConfig.all_imprecise()
        a = hotspot.run(cfg, 32, 32, 10)
        b = hotspot.run(cfg, 32, 32, 10)
        np.testing.assert_array_equal(a.output, b.output)
        assert a.counters.arith == b.counters.arith

    def test_characterization_reproducible(self):
        p1 = characterize_multiplier_config("lp_tr10", 8192)
        p2 = characterize_multiplier_config("lp_tr10", 8192)
        assert p1.stats == p2.stats

    def test_framework_evaluation_reproducible(self):
        fw1 = PowerQualityFramework(
            run_app=lambda cfg: srad.run(cfg, 32, 32, 10), quality_metric=mae
        )
        fw2 = PowerQualityFramework(
            run_app=lambda cfg: srad.run(cfg, 32, 32, 10), quality_metric=mae
        )
        e1 = fw1.evaluate(IHWConfig.all_imprecise())
        e2 = fw2.evaluate(IHWConfig.all_imprecise())
        assert e1.quality == e2.quality
        assert e1.savings.system_savings == e2.savings.system_savings


class TestCountersFlowThroughStack:
    """Counters recorded in the context drive timing, power, and savings."""

    def test_counts_conserved_context_to_savings(self):
        cfg = IHWConfig.units("mul")
        result = cp.run(cfg, grid=24)
        counters = result.counters
        # Totals equal the context's raw ledger.
        assert sum(counters.op_counts().values()) == sum(counters.arith.values())
        # The savings algorithm consumes every op.
        report = estimate_system_savings(counters, cfg, 0.3, 0.05)
        assert 0 <= report.system_savings <= 0.35

    def test_timing_power_savings_pipeline(self):
        result = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 10)
        timing = simulate_kernel(result.counters)
        breakdown = GPUPowerModel().breakdown(result.counters, timing)
        report = estimate_system_savings(
            result.counters,
            IHWConfig.all_imprecise(),
            breakdown.fpu_share,
            breakdown.sfu_share,
        )
        assert timing.cycles > 0
        assert report.system_savings <= breakdown.arithmetic_share

    def test_savings_never_exceed_arith_share(self):
        # The structural upper bound of the whole approach (Chapter 1).
        for app, cfg in (
            (lambda c: hotspot.run(c, 32, 32, 10), IHWConfig.all_imprecise()),
            (lambda c: srad.run(c, 32, 32, 10), IHWConfig.all_imprecise()),
        ):
            result = app(cfg)
            bd = GPUPowerModel().breakdown(result.counters)
            report = estimate_system_savings(
                result.counters, cfg, bd.fpu_share, bd.sfu_share
            )
            assert report.system_savings <= bd.arithmetic_share + 1e-9


class TestLibraryConsistency:
    """Paper and analytic hardware libraries agree on every ordering."""

    def test_reduction_orderings_match(self):
        paper = HardwareLibrary.paper_45nm()
        analytic = HardwareLibrary.analytic()
        for op in ("mul", "add", "rcp", "rsqrt", "log2", "fma"):
            assert paper.power_reduction(op) > 1
            assert analytic.power_reduction(op) > 1
        # The multiplier is the biggest win in both frames.
        for lib in (paper, analytic):
            assert lib.power_reduction("mul") == max(
                lib.power_reduction(op) for op in ("mul", "add", "div", "sqrt")
            )

    def test_savings_agree_in_direction(self):
        cfg = IHWConfig.all_imprecise()
        result = hotspot.run(cfg, 32, 32, 10)
        r_paper = estimate_system_savings(
            result.counters, cfg, 0.3, 0.02, library=HardwareLibrary.paper_45nm()
        )
        r_analytic = estimate_system_savings(
            result.counters, cfg, 0.3, 0.02, library=HardwareLibrary.analytic()
        )
        assert r_paper.system_savings > 0.2
        assert r_analytic.system_savings > 0.2
        assert abs(r_paper.system_savings - r_analytic.system_savings) < 0.1

    def test_multiplier_config_power_monotone_both_paths(self):
        lib = HardwareLibrary.paper_45nm()
        for path in ("log", "full"):
            powers = [
                lib.multiplier_metrics(MultiplierConfig(path, tr)).power_mw
                for tr in (0, 5, 10, 15, 19)
            ]
            assert powers == sorted(powers, reverse=True)


class TestTuningPipelines:
    """Sensitivity analysis -> tuner -> framework, end to end."""

    @pytest.fixture(scope="class")
    def ray_framework(self):
        return PowerQualityFramework(
            run_app=lambda cfg: raytrace.run(cfg, 40, 40, depth=1),
            quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
        )

    def test_measured_sensitivity_identifies_multiplier(self, ray_framework):
        report = analyze_sensitivity(
            ray_framework.quality_evaluator(),
            units=("mul", "add", "sqrt", "rcp", "rsqrt"),
        )
        assert report.most_sensitive() in ("mul", "rsqrt")
        assert report.degradation_of("mul") > report.degradation_of("add")

    def test_sensitivity_driven_tuner_converges(self, ray_framework):
        evaluate = ray_framework.quality_evaluator()
        report = analyze_sensitivity(
            evaluate, units=("mul", "add", "sqrt", "rcp", "rsqrt")
        )
        order = report.ranking() + ("fma", "div", "log2")
        tuner = QualityTuner(evaluate, lambda q: q >= 0.9, order)
        result = tuner.tune()
        assert result.satisfied
        assert result.iterations <= 4

    def test_autotuner_beats_table1_config(self, ray_framework):
        # The tuned Mitchell configuration keeps quality the Table-1
        # multiplier cannot, at deep power reduction.
        tuner = MultiplierAutoTuner(
            ray_framework.quality_evaluator(), lambda q: q >= 0.8, max_truncation=22
        )
        result = tuner.tune()
        assert result.satisfied
        table1 = ray_framework.evaluate(IHWConfig.units("mul"))
        assert result.quality > table1.quality

    def test_framework_plus_dvfs(self, ray_framework):
        ev = ray_framework.evaluate(
            IHWConfig.units("rcp", "add", "sqrt").with_multiplier(
                "mitchell", config="fp_tr0"
            )
        )
        combo = combined_savings(ev.savings.system_savings, DVFSPoint(0.85))
        assert combo.power_savings > ev.savings.system_savings


class TestQuadraticModeEndToEnd:
    def test_quadratic_sfu_recovers_ray_quality(self):
        ref = raytrace.reference_run(40, 40)
        lin = raytrace.run(IHWConfig.units("rsqrt"), 40, 40)
        quad = raytrace.run(
            IHWConfig.units("rsqrt").with_sfu_mode("quadratic"), 40, 40
        )
        s_lin = ssim(lin.output, ref.output, data_range=1.0)
        s_quad = ssim(quad.output, ref.output, data_range=1.0)
        assert s_quad > s_lin

    def test_quadratic_mode_counts_same_ops(self):
        lin_ctx = ArithmeticContext(IHWConfig.units("rcp"))
        quad_ctx = ArithmeticContext(IHWConfig.units("rcp").with_sfu_mode("quadratic"))
        x = np.linspace(0.5, 4.0, 16).astype(np.float32)
        lin_ctx.rcp(x)
        quad_ctx.rcp(x)
        assert lin_ctx.op_counts() == quad_ctx.op_counts()

    def test_invalid_sfu_mode_rejected(self):
        with pytest.raises(ValueError):
            IHWConfig(sfu_mode="cubic")
