"""Documentation integrity: every referenced path and module must exist."""

import importlib
import re
from pathlib import Path

import pytest

from repro.framework import EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent
DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "ARCHITECTURE.md",
    ROOT / "docs" / "UNITS.md",
    ROOT / "docs" / "PAPER_MAP.md",
]

_BENCH_RE = re.compile(r"benchmarks/(?:test_[a-z0-9_]+\.py)")
_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
_TEST_FILE_RE = re.compile(r"tests/(?:test_[a-z0-9_]+\.py)")


class TestDocFilesExist:
    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_doc_present_and_substantial(self, doc):
        assert doc.exists(), doc
        assert len(doc.read_text()) > 500

    def test_required_root_files(self):
        for name in ("LICENSE", "CITATION.cff", "CHANGELOG.md", "pyproject.toml",
                     "setup.py", "README.md"):
            assert (ROOT / name).exists(), name


class TestReferencedPathsExist:
    def _referenced(self, pattern):
        refs = set()
        for doc in DOCS:
            refs.update(pattern.findall(doc.read_text()))
        return refs

    def test_bench_paths_exist(self):
        for ref in self._referenced(_BENCH_RE):
            assert (ROOT / ref).exists(), f"doc references missing {ref}"

    def test_test_paths_exist(self):
        for ref in self._referenced(_TEST_FILE_RE):
            assert (ROOT / ref).exists(), f"doc references missing {ref}"

    def test_modules_importable(self):
        for ref in self._referenced(_MODULE_RE):
            module = ref
            # Strip trailing attribute references (repro.core.config.IHWConfig).
            while module:
                try:
                    importlib.import_module(module)
                    break
                except ModuleNotFoundError:
                    if "." not in module:
                        pytest.fail(f"doc references unimportable {ref}")
                    module = module.rsplit(".", 1)[0]


class TestExperimentRegistryConsistent:
    def test_every_registered_bench_exists(self):
        for exp in EXPERIMENTS.values():
            assert (ROOT / exp.bench).exists(), exp.id

    def test_every_registered_module_importable(self):
        for exp in EXPERIMENTS.values():
            for module in exp.modules:
                importlib.import_module(module)

    def test_every_table_figure_bench_is_registered(self):
        registered = {exp.bench.rsplit("/", 1)[1] for exp in EXPERIMENTS.values()}
        on_disk = {
            p.name
            for p in (ROOT / "benchmarks").glob("test_*.py")
            if p.name.startswith(("test_fig", "test_table"))
        }
        assert on_disk <= registered, on_disk - registered


class TestExperimentsDocCoversAll:
    def test_experiments_md_mentions_every_table_and_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for heading in (
            "Figure 1", "Figure 2", "Table 1", "Figures 8-9", "Table 2",
            "Table 3", "Table 4", "Figure 14", "Figure 15", "Figure 16",
            "Figures 17-18", "Table 5", "Table 6", "Figure 19", "Figure 20",
            "Figure 21(a)", "Figure 21(b)", "Table 7",
        ):
            assert heading in text, heading
