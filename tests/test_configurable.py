"""Tests for the accuracy-configurable Mitchell FP multiplier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FULL_PATH_MAX_ERROR,
    LOG_PATH_MAX_ERROR,
    MultiplierConfig,
    configurable_multiply,
)


def rel_error(approx, a, b):
    true = np.asarray(a, np.float64) * np.asarray(b, np.float64)
    return np.abs((np.asarray(approx, np.float64) - true) / true)


class TestConfig:
    def test_defaults(self):
        cfg = MultiplierConfig()
        assert cfg.path == "full"
        assert cfg.truncation == 0

    def test_name_roundtrip(self):
        for name in ("lp_tr19", "fp_tr0", "lp_tr0", "fp_tr48"):
            assert MultiplierConfig.from_name(name).name == name

    def test_from_name_aliases(self):
        assert MultiplierConfig.from_name("log_tr5").path == "log"
        assert MultiplierConfig.from_name("full_tr5").path == "full"

    def test_rejects_bad_path(self):
        with pytest.raises(ValueError):
            MultiplierConfig(path="middle")

    def test_rejects_negative_truncation(self):
        with pytest.raises(ValueError):
            MultiplierConfig(truncation=-1)

    def test_rejects_unparseable_name(self):
        with pytest.raises(ValueError):
            MultiplierConfig.from_name("nonsense")
        with pytest.raises(ValueError):
            MultiplierConfig.from_name("xp_tr3")

    def test_rejects_truncation_beyond_mantissa(self):
        with pytest.raises(ValueError):
            configurable_multiply(
                np.float32(1), np.float32(1), MultiplierConfig("log", 24)
            )


class TestErrorBounds:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_full_path_2_percent(self, dtype):
        rng = np.random.default_rng(20)
        a = rng.uniform(-1e3, 1e3, 50000).astype(dtype)
        b = rng.uniform(-1e3, 1e3, 50000).astype(dtype)
        out = configurable_multiply(a, b, MultiplierConfig("full", 0), dtype=dtype)
        assert rel_error(out, a, b).max() <= FULL_PATH_MAX_ERROR + 1e-6

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_log_path_11_percent(self, dtype):
        rng = np.random.default_rng(21)
        a = rng.uniform(-1e3, 1e3, 50000).astype(dtype)
        b = rng.uniform(-1e3, 1e3, 50000).astype(dtype)
        out = configurable_multiply(a, b, MultiplierConfig("log", 0), dtype=dtype)
        assert rel_error(out, a, b).max() <= LOG_PATH_MAX_ERROR + 1e-6

    def test_full_path_more_accurate_than_log_path(self):
        rng = np.random.default_rng(22)
        a = rng.uniform(0.1, 100, 20000).astype(np.float32)
        b = rng.uniform(0.1, 100, 20000).astype(np.float32)
        e_full = rel_error(configurable_multiply(a, b, MultiplierConfig("full")), a, b)
        e_log = rel_error(configurable_multiply(a, b, MultiplierConfig("log")), a, b)
        assert e_full.mean() < e_log.mean()
        assert e_full.max() < e_log.max()

    def test_error_grows_with_truncation(self):
        rng = np.random.default_rng(23)
        a = rng.uniform(0.1, 100, 20000).astype(np.float32)
        b = rng.uniform(0.1, 100, 20000).astype(np.float32)
        means = []
        for tr in (0, 8, 15, 19, 22):
            out = configurable_multiply(a, b, MultiplierConfig("log", tr))
            means.append(rel_error(out, a, b).mean())
        assert means == sorted(means)

    def test_lp_tr19_matches_paper_band(self):
        # The paper reports ~18% max error for 19-bit truncated log path.
        rng = np.random.default_rng(24)
        a = rng.uniform(0.1, 100, 200000).astype(np.float32)
        b = rng.uniform(0.1, 100, 200000).astype(np.float32)
        out = configurable_multiply(a, b, MultiplierConfig("log", 19))
        emax = rel_error(out, a, b).max()
        assert 0.12 <= emax <= 0.20

    def test_lp_tr48_double_matches_paper_band(self):
        # The paper reports ~18.07% max error for 48-bit truncated fp64.
        rng = np.random.default_rng(25)
        a = rng.uniform(0.1, 100, 200000)
        b = rng.uniform(0.1, 100, 200000)
        out = configurable_multiply(a, b, MultiplierConfig("log", 48), dtype=np.float64)
        emax = rel_error(out, a, b).max()
        assert 0.12 <= emax <= 0.20


class TestSpecialCases:
    @pytest.mark.parametrize("path", ["log", "full"])
    def test_identity_with_one(self, path):
        x = np.array([1.25, -3.5, 1000.0], dtype=np.float32)
        out = configurable_multiply(x, np.float32(1.0), MultiplierConfig(path))
        np.testing.assert_array_equal(out, x)

    @pytest.mark.parametrize("path", ["log", "full"])
    def test_powers_of_two_exact(self, path):
        out = configurable_multiply(
            np.float32(0.5), np.float32(256.0), MultiplierConfig(path)
        )
        assert out == 128.0

    def test_zero(self):
        assert configurable_multiply(np.float32(0.0), np.float32(9.0)) == 0.0

    def test_inf_and_nan(self):
        assert np.isposinf(configurable_multiply(np.float32(np.inf), np.float32(2.0)))
        assert np.isnan(configurable_multiply(np.float32(np.inf), np.float32(0.0)))
        assert np.isnan(configurable_multiply(np.float32(np.nan), np.float32(1.0)))

    def test_subnormals_flush(self):
        out = configurable_multiply(np.float32(1e-45), np.float32(2.0))
        assert out == 0.0

    def test_overflow(self):
        big = np.float32(1e38)
        assert np.isposinf(configurable_multiply(big, big))

    def test_sign(self):
        out = configurable_multiply(np.float32(-1.5), np.float32(2.5))
        assert out < 0


finite32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=-2.0**49,
    max_value=2.0**49,
)


class TestProperties:
    @given(finite32, finite32, st.sampled_from(["log", "full"]), st.integers(0, 22))
    @settings(max_examples=300, deadline=None)
    def test_error_never_exceeds_path_bound_plus_truncation(self, a, b, path, tr):
        a32, b32 = np.float32(a), np.float32(b)
        out = configurable_multiply(a32, b32, MultiplierConfig(path, tr))
        true = float(a32) * float(b32)
        if true == 0 or not np.isfinite(true) or np.isinf(out):
            return
        if abs(true) < 4 * float(np.finfo(np.float32).tiny):
            return
        rel = abs((float(out) - true) / true)
        path_bound = LOG_PATH_MAX_ERROR if path == "log" else FULL_PATH_MAX_ERROR
        # Truncating tr bits of each operand costs at most 2*2^(tr-23) extra.
        bound = path_bound + 2.0 ** (tr - 22) + 2.0 ** -21
        assert rel <= bound

    @given(finite32, finite32, st.sampled_from(["log", "full"]))
    @settings(max_examples=200, deadline=None)
    def test_commutative(self, a, b, path):
        a32, b32 = np.float32(a), np.float32(b)
        cfg = MultiplierConfig(path)
        x = configurable_multiply(a32, b32, cfg)
        y = configurable_multiply(b32, a32, cfg)
        np.testing.assert_array_equal(np.asarray(x), np.asarray(y))
