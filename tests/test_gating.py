"""Tests for the power-gating model and its composition with IHW."""

import numpy as np
import pytest

from repro.core import ArithmeticContext, IHWConfig
from repro.gpu import (
    GPUPowerModel,
    GatingPolicy,
    KernelCounters,
    execution_unit_duty,
    gated_breakdown,
    simulate_kernel,
)


def make_counters(fpu=50000, sfu=2000, alu=8000, mem=6000, threads=3200):
    ctx = ArithmeticContext()
    if fpu:
        ctx.add(np.ones(fpu, dtype=np.float32), 1.0)
    if sfu:
        ctx.rsqrt(np.ones(sfu, dtype=np.float32))
    return KernelCounters.from_context(
        ctx, "test", int_ops=alu, mem_ops=mem, threads=threads
    )


class TestDuty:
    def test_duties_in_unit_interval(self):
        c = make_counters()
        t = simulate_kernel(c)
        duty = execution_unit_duty(c, t)
        for unit, d in duty.items():
            assert 0.0 <= d <= 1.0

    def test_sfu_light_kernel_low_sfu_duty(self):
        c = make_counters(fpu=100000, sfu=100)
        t = simulate_kernel(c)
        duty = execution_unit_duty(c, t)
        assert duty["SFU"] < 0.05
        assert duty["FPU"] > duty["SFU"]

    def test_zero_cycles_rejected(self):
        from repro.gpu import KernelTiming

        c = make_counters()
        bad = KernelTiming(cycles=0, time_s=0.0, ipc_per_sm=0.0,
                           warp_instructions=0, occupancy=0.0)
        with pytest.raises(ValueError):
            execution_unit_duty(c, bad)


class TestGatingPolicy:
    def test_defaults(self):
        policy = GatingPolicy()
        assert policy.wake_overhead == pytest.approx(0.10)
        assert set(policy.gated_units) == {"FPU", "SFU", "ALU"}

    def test_validation(self):
        with pytest.raises(ValueError):
            GatingPolicy(wake_overhead=1.5)
        with pytest.raises(ValueError):
            GatingPolicy(gated_units=("DRAM",))


class TestGatedBreakdown:
    def test_gating_saves_static_power(self):
        c = make_counters(fpu=30000, sfu=500)
        model = GPUPowerModel()
        t = simulate_kernel(c)
        base = model.breakdown(c, t)
        gated = gated_breakdown(c, model=model, timing=t)
        assert gated.total_w < base.total_w
        assert gated.watts["Static"] < base.watts["Static"]

    def test_dynamic_power_untouched(self):
        c = make_counters()
        model = GPUPowerModel()
        t = simulate_kernel(c)
        base = model.breakdown(c, t)
        gated = gated_breakdown(c, model=model, timing=t)
        for comp in ("FPU", "SFU", "ALU", "DRAM"):
            assert gated.watts[comp] == base.watts[comp]

    def test_idle_sfu_gates_deeper(self):
        # Gating ONLY the SFU: a kernel with no SFU work saves the full
        # SFU static share, a serialization-bound SFU kernel almost none.
        policy = GatingPolicy(gated_units=("SFU",))
        no_sfu = make_counters(fpu=50000, sfu=0)
        heavy_sfu = make_counters(fpu=50000, sfu=50000)
        model = GPUPowerModel()
        t1 = simulate_kernel(no_sfu)
        t2 = simulate_kernel(heavy_sfu)
        s1 = model.breakdown(no_sfu, t1).watts["Static"] - gated_breakdown(
            no_sfu, policy, model=model, timing=t1
        ).watts["Static"]
        s2 = model.breakdown(heavy_sfu, t2).watts["Static"] - gated_breakdown(
            heavy_sfu, policy, model=model, timing=t2
        ).watts["Static"]
        assert s1 > 5 * s2

    def test_wake_overhead_limits_savings(self):
        c = make_counters()
        t = simulate_kernel(c)
        cheap = gated_breakdown(c, GatingPolicy(wake_overhead=0.0), timing=t)
        lossy = gated_breakdown(c, GatingPolicy(wake_overhead=0.5), timing=t)
        assert cheap.total_w < lossy.total_w

    def test_restricted_units(self):
        c = make_counters(sfu=0)
        t = simulate_kernel(c)
        all_units = gated_breakdown(c, GatingPolicy(), timing=t)
        sfu_only = gated_breakdown(c, GatingPolicy(gated_units=("SFU",)), timing=t)
        assert all_units.watts["Static"] <= sfu_only.watts["Static"]


class TestIHWComposition:
    def test_ihw_plus_gating_beats_either(self):
        """The abstract's claim: the knobs compose."""
        from repro.apps import hotspot
        from repro.gpu import estimate_system_savings

        ref = hotspot.reference_run(32, 32, 20)
        imp = hotspot.run(IHWConfig.all_imprecise(), 32, 32, 20)
        model = GPUPowerModel()
        t = simulate_kernel(ref.counters)
        base = model.breakdown(ref.counters, t)
        gated = gated_breakdown(ref.counters, model=model, timing=t)
        gating_only = 1 - gated.total_w / base.total_w

        ihw_only = estimate_system_savings(
            imp.counters, IHWConfig.all_imprecise(), base.fpu_share, base.sfu_share
        ).system_savings

        # Compose: IHW removes its share of the (gated) total.
        combined = 1 - (1 - gating_only) * (1 - ihw_only)
        assert combined > ihw_only
        assert combined > gating_only
