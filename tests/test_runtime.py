"""Tests for the parallel experiment runtime and its result cache.

The contract under test: every execution mode — sequential in-process,
process-pool parallel, cache-restored — returns bit-identical evaluations,
and anything the cache cannot faithfully serve (corrupted, stale, or
truncated entries) is recomputed, never served.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import IHWConfig
from repro.framework import PowerQualityFramework
from repro.quality import MultiplierAutoTuner, sweep_design_points
from repro.runtime import (
    SPEEDUP_CAP,
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    RetryPolicy,
    RunnerStats,
    TaskTiming,
    cache_disabled,
    cache_from_env,
    default_worker_count,
)

HOTSPOT = ExperimentSpec.create(
    "hotspot", metric="mae", rows=24, cols=24, iterations=6
)
SRAD = ExperimentSpec.create("srad", metric="mae", rows=24, cols=24, iterations=4)

SWEEP = {
    "precise": IHWConfig.precise(),
    "add": IHWConfig.units("add"),
    "mul": IHWConfig.units("mul"),
    "all": IHWConfig.all_imprecise(),
}


def assert_evaluations_identical(a, b):
    assert a.config == b.config
    assert a.quality == b.quality  # bitwise: no tolerance
    assert a.savings == b.savings
    assert a.breakdown.watts == b.breakdown.watts
    assert a.breakdown.timing == b.breakdown.timing
    assert isinstance(b.output, np.ndarray) == isinstance(a.output, np.ndarray)
    if isinstance(a.output, np.ndarray):
        assert a.output.dtype == b.output.dtype
        assert np.array_equal(a.output, b.output)
    else:
        assert a.output == b.output


class TestExperimentSpec:
    def test_create_sorts_params(self):
        a = ExperimentSpec.create("hotspot", metric="mae", rows=8, cols=8)
        b = ExperimentSpec.create("hotspot", metric="mae", cols=8, rows=8)
        assert a == b and hash(a) == hash(b)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown app"):
            ExperimentSpec.create("bogus", metric="mae")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            ExperimentSpec.create("hotspot", metric="bogus")

    def test_non_scalar_param_rejected(self):
        with pytest.raises(TypeError, match="plain scalar"):
            ExperimentSpec.create("hotspot", metric="mae", power_map=np.ones(4))

    def test_framework_round_trip(self):
        fw = HOTSPOT.framework()
        assert isinstance(fw, PowerQualityFramework)
        assert fw.spec is HOTSPOT


class TestParallelSequentialIdentity:
    @pytest.mark.parametrize("spec", [HOTSPOT, SRAD], ids=["hotspot", "srad"])
    def test_bit_identical(self, spec):
        sequential = ExperimentRunner(max_workers=1, cache=None)
        parallel = ExperimentRunner(max_workers=2, cache=None)
        seq = sequential.sweep(spec, SWEEP)
        par = parallel.sweep(spec, SWEEP)
        assert list(seq) == list(par) == list(SWEEP)
        for name in SWEEP:
            assert_evaluations_identical(seq[name], par[name])

    def test_stats_capture(self):
        runner = ExperimentRunner(max_workers=1, cache=None)
        runner.sweep(HOTSPOT, SWEEP)
        stats = runner.stats
        assert stats.n_tasks == len(SWEEP)
        assert stats.cache_misses == len(SWEEP)
        assert stats.wall_seconds > 0
        assert all(t.seconds > 0 for t in stats.tasks)
        assert "hit rate" in stats.summary()
        assert stats.to_dict()["n_tasks"] == len(SWEEP)


class TestResultCache:
    def test_round_trip_identical(self, tmp_path):
        cold = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        first = cold.sweep(HOTSPOT, SWEEP)
        warm = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        second = warm.sweep(HOTSPOT, SWEEP)
        assert warm.stats.cache_hits == len(SWEEP)
        assert warm.cache.stats.hits == len(SWEEP)
        for name in SWEEP:
            assert_evaluations_identical(first[name], second[name])

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = ExperimentSpec.create(
            "hotspot", metric="mae", rows=24, cols=24, iterations=7
        )
        config = IHWConfig.units("add")
        assert cache.key(HOTSPOT, config) != cache.key(other, config)
        assert cache.key(HOTSPOT, config) != cache.key(
            HOTSPOT, IHWConfig.units("add", adder_threshold=4)
        )

    def test_corrupted_json_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(max_workers=1, cache=cache)
        config = {"add": IHWConfig.units("add")}
        before = runner.sweep(HOTSPOT, config)
        entry = next(tmp_path.glob("??/*.json"))
        entry.write_text("{ not json")
        fresh = ResultCache(tmp_path)
        again = ExperimentRunner(max_workers=1, cache=fresh).sweep(HOTSPOT, config)
        assert fresh.stats.invalid == 1 and fresh.stats.hits == 0
        assert_evaluations_identical(before["add"], again["add"])

    def test_corrupted_npz_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(max_workers=1, cache=cache)
        config = {"add": IHWConfig.units("add")}
        before = runner.sweep(HOTSPOT, config)
        npz = next(tmp_path.glob("??/*.npz"))
        npz.write_bytes(b"garbage")
        fresh = ResultCache(tmp_path)
        again = ExperimentRunner(max_workers=1, cache=fresh).sweep(HOTSPOT, config)
        assert fresh.stats.invalid == 1
        assert_evaluations_identical(before["add"], again["add"])

    def test_stale_schema_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentRunner(max_workers=1, cache=cache).sweep(
            HOTSPOT, {"add": IHWConfig.units("add")}
        )
        entry = next(tmp_path.glob("??/*.json"))
        doc = json.loads(entry.read_text())
        doc["schema"] = 999
        entry.write_text(json.dumps(doc))
        fresh = ResultCache(tmp_path)
        assert fresh.get(HOTSPOT, IHWConfig.units("add")) is None
        assert fresh.stats.invalid == 1

    def test_eviction_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        ExperimentRunner(max_workers=1, cache=cache).sweep(HOTSPOT, SWEEP)
        assert cache.entry_count() == 2
        assert cache.stats.evictions == len(SWEEP) - 2

    def test_env_off_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert cache_disabled()
        assert cache_from_env() is None
        runner = ExperimentRunner(max_workers=1, cache="auto")
        assert runner.cache is None

    def test_env_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        cache = cache_from_env()
        assert cache is not None
        assert cache.root == tmp_path / "alt"


class TestRunnerStats:
    def test_speedup_normal_run(self):
        stats = RunnerStats(
            wall_seconds=2.0,
            tasks=[TaskTiming("a", 3.0), TaskTiming("b", 3.0)],
        )
        assert stats.speedup_vs_sequential == pytest.approx(3.0)

    def test_speedup_degenerate_runs_report_one(self):
        assert RunnerStats().speedup_vs_sequential == 1.0
        assert RunnerStats(wall_seconds=0.0, tasks=[
            TaskTiming("a", 1.0)
        ]).speedup_vs_sequential == 1.0
        # Warm all-hits run: zero compute over a tiny wall time must not
        # explode into a meaningless thousands-x figure.
        warm = RunnerStats(
            wall_seconds=1e-4,
            tasks=[TaskTiming("a", 0.0, cached=True),
                   TaskTiming("b", 0.0, cached=True)],
        )
        assert warm.speedup_vs_sequential == 1.0

    def test_speedup_clamped_at_cap(self):
        stats = RunnerStats(
            wall_seconds=1e-6, tasks=[TaskTiming("a", 10.0)]
        )
        assert stats.speedup_vs_sequential == SPEEDUP_CAP

    def test_to_dict_has_the_cli_and_telemetry_fields(self):
        stats = RunnerStats(
            wall_seconds=1.0,
            max_workers=2,
            chunk_size=3,
            tasks=[TaskTiming("a", 0.5), TaskTiming("b", 0.0, cached=True)],
        )
        doc = stats.to_dict()
        assert doc["n_tasks"] == 2
        assert doc["cache_hits"] == 1 and doc["cache_misses"] == 1
        assert doc["speedup_vs_sequential"] == stats.speedup_vs_sequential
        assert doc["tasks"][1] == {"name": "b", "seconds": 0.0, "cached": True,
                                   "attempts": 1, "fallback": False}
        assert doc["retries"] == 0 and doc["degraded"] is False
        json.dumps(doc)  # JSON-serializable for the CLI --json payload


class TestFrameworkIntegration:
    def test_evaluate_many_matches_evaluate(self, tmp_path):
        fw = HOTSPOT.framework()
        direct = {name: fw.evaluate(cfg) for name, cfg in SWEEP.items()}
        runner = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        many = fw.evaluate_many(SWEEP, runner=runner)
        for name in SWEEP:
            assert_evaluations_identical(direct[name], many[name])

    def test_sweep_alias_still_sequential(self):
        fw = HOTSPOT.framework()
        results = fw.sweep({"add": IHWConfig.units("add")})
        assert set(results) == {"add"}

    def test_runner_without_spec_rejected(self):
        from repro.apps import hotspot
        from repro.quality import mae

        fw = PowerQualityFramework(
            run_app=lambda cfg: hotspot.run(cfg, 16, 16, 4), quality_metric=mae
        )
        with pytest.raises(ValueError, match="from_spec"):
            fw.evaluate_many(SWEEP, runner=ExperimentRunner(max_workers=1))


class TestAutotunerIntegration:
    def test_runner_probes_match_direct(self, tmp_path):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        constraint = lambda q: q < 0.5  # noqa: E731
        tuned = MultiplierAutoTuner(
            None, constraint, runner=runner, spec=HOTSPOT, max_truncation=6
        ).tune()
        direct = MultiplierAutoTuner(
            HOTSPOT.framework().quality_evaluator(), constraint, max_truncation=6
        ).tune()
        assert tuned.multiplier == direct.multiplier
        assert tuned.quality == direct.quality
        # A rerun over the same cache is pure hits.
        rerun_runner = ExperimentRunner(
            max_workers=1, cache=ResultCache(tmp_path)
        )
        MultiplierAutoTuner(
            None, constraint, runner=rerun_runner, spec=HOTSPOT, max_truncation=6
        ).tune()
        assert rerun_runner.cache.stats.misses == 0

    def test_runner_requires_spec(self):
        with pytest.raises(ValueError, match="spec"):
            MultiplierAutoTuner(
                None, lambda q: True, runner=ExperimentRunner(max_workers=1)
            )


class TestParetoIntegration:
    def test_sweep_design_points(self, tmp_path):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache(tmp_path))
        points = sweep_design_points(HOTSPOT, SWEEP, runner=runner)
        assert [p.name for p in points] == list(SWEEP)
        precise = next(p for p in points if p.name == "precise")
        everything = next(p for p in points if p.name == "all")
        assert everything.cost < precise.cost  # savings reduce residual power
        assert all(p.cost >= 0 and p.loss >= 0 for p in points)


class TestCharacterizeIntegration:
    def test_parallel_matches_sequential(self):
        from repro.erroranalysis import characterize_units

        names = ["ifpmul", "ircp"]
        seq = characterize_units(names, n_samples=2048)
        par = characterize_units(
            names, n_samples=2048, runner=ExperimentRunner(max_workers=2)
        )
        assert set(seq) == set(par) == set(names)
        for name in names:
            assert np.array_equal(seq[name].bins, par[name].bins)
            assert np.array_equal(seq[name].probabilities, par[name].probabilities)

    def test_multiplier_configs(self):
        from repro.erroranalysis import characterize_multiplier_configs

        pmfs = characterize_multiplier_configs(["fp_tr0", "bt_8"], n_samples=2048)
        assert set(pmfs) == {"fp_tr0", "bt_8"}


# ----------------------------------------------------------------------
# Cache hardening: atomic writes, quarantine, stale-artifact cleanup
# ----------------------------------------------------------------------
class TestCacheHardening:
    def test_truncated_json_quarantined_and_recomputed(self, tmp_path):
        """Regression: a torn write must be moved aside, never raise."""
        cache = ResultCache(tmp_path)
        config = {"add": IHWConfig.units("add")}
        before = ExperimentRunner(max_workers=1, cache=cache).sweep(
            HOTSPOT, config
        )
        entry = next(tmp_path.glob("??/*.json"))
        data = entry.read_bytes()
        entry.write_bytes(data[: len(data) // 2])

        fresh = ResultCache(tmp_path)
        again = ExperimentRunner(max_workers=1, cache=fresh).sweep(
            HOTSPOT, config
        )
        assert fresh.stats.invalid == 1
        assert fresh.stats.quarantined == 1
        assert fresh.quarantine_count() == 1
        # The damaged bytes stay inspectable under quarantine/.
        quarantined = next((tmp_path / "quarantine").glob("*.json"))
        assert quarantined.read_bytes() == data[: len(data) // 2]
        assert_evaluations_identical(before["add"], again["add"])

    def test_no_temp_files_survive_a_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentRunner(max_workers=1, cache=cache).sweep(HOTSPOT, SWEEP)
        leftovers = [
            p for pattern in ("??/*.tmp", "??/*.tmp.npz", "??/*.lock")
            for p in tmp_path.glob(pattern)
        ]
        assert leftovers == []

    def test_held_lock_skips_the_write(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = IHWConfig.units("add")
        evaluation = HOTSPOT.framework().evaluate(config)
        key = cache.key(HOTSPOT, config)
        lock = tmp_path / key[:2] / f"{key}.lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("held\n")
        assert cache.put(HOTSPOT, config, evaluation) is False
        assert cache.stats.lock_skips == 1
        assert cache.get(HOTSPOT, config) is None  # nothing was written
        lock.unlink()
        assert cache.put(HOTSPOT, config, evaluation) is True

    def test_stale_lock_reclaimed_on_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = IHWConfig.units("add")
        evaluation = HOTSPOT.framework().evaluate(config)
        key = cache.key(HOTSPOT, config)
        lock = tmp_path / key[:2] / f"{key}.lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("crashed writer\n")
        old = time.time() - 1000.0
        os.utime(lock, (old, old))
        assert cache.put(HOTSPOT, config, evaluation) is True
        assert cache.stats.stale_cleaned == 1
        assert cache.get(HOTSPOT, config) is not None

    def test_cleanup_stale_removes_old_artifacts_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        shard = tmp_path / "ab"
        shard.mkdir(parents=True)
        old_lock = shard / "deadbeef.lock"
        old_tmp = shard / "deadbeef.json.tmp"
        fresh_lock = shard / "cafe.lock"
        for path in (old_lock, old_tmp, fresh_lock):
            path.write_text("x")
        stale = time.time() - 1000.0
        os.utime(old_lock, (stale, stale))
        os.utime(old_tmp, (stale, stale))
        assert cache.cleanup_stale() == 2
        assert not old_lock.exists() and not old_tmp.exists()
        assert fresh_lock.exists()


# ----------------------------------------------------------------------
# Worker-count detection and runner internals
# ----------------------------------------------------------------------
class TestDefaultWorkerCount:
    def test_uses_scheduler_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_worker_count() == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        # Platforms without sched_getaffinity (macOS, Windows) raise
        # AttributeError; the runner must fall back to os.cpu_count().
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_worker_count() == 5

    def test_never_returns_zero(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(), raising=False)
        assert default_worker_count() == 1

    def test_framework_memo_is_bounded(self):
        from repro.runtime.runner import _FRAMEWORK_MEMO_CAP, _memo_framework

        memo = {}
        specs = [
            ExperimentSpec.create("hotspot", metric="mae", rows=12, cols=12,
                                  iterations=i + 1)
            for i in range(_FRAMEWORK_MEMO_CAP + 4)
        ]
        for spec in specs:
            _memo_framework(memo, spec)
        assert len(memo) == _FRAMEWORK_MEMO_CAP
        # Most-recently-used specs survive; the oldest were evicted.
        assert specs[-1] in memo and specs[0] not in memo
        # A hit refreshes recency and must not rebuild the framework.
        survivor = specs[-_FRAMEWORK_MEMO_CAP]
        kept = memo[survivor]
        assert _memo_framework(memo, survivor) is kept


# ----------------------------------------------------------------------
# map(): label alignment across failures and retries
# ----------------------------------------------------------------------
def _flaky_square(x):
    """Module-level (picklable) map target; fails via injected faults."""
    return x * x


class TestMapRetryAlignment:
    def test_results_stay_aligned_when_some_tasks_retry(self):
        from repro import faults

        labels = [f"item{i}" for i in range(6)]
        arguments = [(i,) for i in range(6)]
        # Fail item1 and item4 once each: both succeed on retry, and the
        # result list must still line up with the inputs.
        with faults.injection("transient:match=item1,times=1;"
                              "transient:match=item4,times=1"):
            runner = ExperimentRunner(
                max_workers=2, cache=None,
                policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            )
            results = runner.map(_flaky_square, arguments, labels=labels)
        assert results == [i * i for i in range(6)]
        assert runner.stats.retries == 2
        by_name = {t.name: t for t in runner.stats.tasks}
        assert by_name["item1"].attempts == 2
        assert by_name["item4"].attempts == 2
        assert by_name["item0"].attempts == 1

    def test_sequential_map_alignment_with_retries(self):
        from repro import faults

        labels = [f"s{i}" for i in range(4)]
        with faults.injection("transient:match=s2,times=1"):
            runner = ExperimentRunner(
                max_workers=1, cache=None,
                policy=RetryPolicy(max_retries=1, backoff_base=0.0),
            )
            results = runner.map(_flaky_square, [(i,) for i in range(4)],
                                 labels=labels)
        assert results == [0, 1, 4, 9]
        assert runner.stats.retries == 1

    def test_label_length_mismatch_rejected(self):
        runner = ExperimentRunner(max_workers=1, cache=None)
        with pytest.raises(ValueError):
            runner.map(_flaky_square, [(1,), (2,)], labels=["only-one"])
