"""End-to-end power-quality evaluation framework and experiment registry."""

from .experiments import EXPERIMENTS, Experiment, RAY_CONFIGS, table5_configurations
from .tradeoff import Evaluation, PowerQualityFramework

__all__ = [
    "EXPERIMENTS",
    "Evaluation",
    "Experiment",
    "PowerQualityFramework",
    "RAY_CONFIGS",
    "table5_configurations",
]
