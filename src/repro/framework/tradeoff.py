"""The end-to-end power-quality tradeoff framework (Figure 10).

:class:`PowerQualityFramework` wires the pieces together for one
application: run the precise reference, run the imprecise configuration,
score the output with the application-specific quality metric, derive the
FPU/SFU power shares from the GPUWattch-style model, and estimate the
system-level power savings with the Figure-12 algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro import telemetry
from repro.core import IHWConfig
from repro.gpu import (
    FERMI_GTX480,
    GPUConfig,
    GPUPowerModel,
    PowerBreakdown,
    SavingsReport,
    estimate_system_savings,
)
from repro.hardware import HardwareLibrary

__all__ = ["Evaluation", "PowerQualityFramework"]


@dataclass(frozen=True)
class Evaluation:
    """One configuration's quality and power outcome."""

    config: IHWConfig
    quality: float
    savings: SavingsReport
    breakdown: PowerBreakdown
    output: object

    def summary(self) -> str:
        return (
            f"{self.savings.name}: quality={self.quality:.4g}  "
            f"system savings={self.savings.system_savings:.2%}  "
            f"arith savings={self.savings.arithmetic_savings:.2%}  "
            f"(config: {self.config.describe()})"
        )


class PowerQualityFramework:
    """Evaluate IHW configurations for one application.

    Parameters
    ----------
    run_app:
        ``run_app(config_or_None) -> AppResult``; ``None`` must produce the
        precise reference execution.
    quality_metric:
        ``quality_metric(imprecise_output, reference_output) -> float``.
    gpu_config, power_model, library:
        Machine, power, and hardware-metric models (defaults: Fermi
        GTX480-like, calibrated energies, paper 45 nm library).
    spec:
        Optional :class:`~repro.runtime.ExperimentSpec` this framework was
        built from.  Required for parallel/cached ``evaluate_many``: the
        spec is what crosses process boundaries and addresses the cache.
        Prefer :meth:`from_spec` over passing it by hand.
    """

    def __init__(
        self,
        run_app: Callable,
        quality_metric: Callable,
        gpu_config: GPUConfig = FERMI_GTX480,
        power_model: GPUPowerModel | None = None,
        library: HardwareLibrary | None = None,
        spec=None,
    ):
        self._run_app = run_app
        self._quality = quality_metric
        self._gpu_config = gpu_config
        self._power_model = power_model or GPUPowerModel(config=gpu_config)
        self._library = library or HardwareLibrary.paper_45nm()
        self._reference = None
        self._reference_breakdown = None
        self.spec = spec

    @classmethod
    def from_spec(cls, spec, **kwargs) -> "PowerQualityFramework":
        """Build from an :class:`~repro.runtime.ExperimentSpec`.

        Frameworks built this way can hand ``evaluate_many`` an
        :class:`~repro.runtime.ExperimentRunner` for parallel, cached
        sweeps.
        """
        return spec.framework(**kwargs)

    @property
    def reference(self):
        """The precise reference execution (computed once, cached)."""
        if self._reference is None:
            with telemetry.span("kernel", role="reference"):
                self._reference = self._run_app(None)
            self._reference_breakdown = self._power_model.breakdown(
                self._reference.counters
            )
        return self._reference

    @property
    def reference_breakdown(self) -> PowerBreakdown:
        """Component power of the precise execution (Figure-2 data)."""
        _ = self.reference
        return self._reference_breakdown

    def evaluate(self, config: IHWConfig) -> Evaluation:
        """Run one imprecise configuration and report quality + savings."""
        app = self.spec.app if self.spec is not None else None
        with telemetry.span("experiment", app=app, config=config.describe()):
            start = time.perf_counter()
            reference = self.reference
            with telemetry.span("kernel", role="candidate"):
                result = self._run_app(config)
            quality = float(self._quality(result.output, reference.output))
            breakdown = self.reference_breakdown
            savings = estimate_system_savings(
                result.counters,
                config,
                fpu_share=breakdown.fpu_share,
                sfu_share=breakdown.sfu_share,
                library=self._library,
                clock_ghz=self._gpu_config.clock_ghz,
            )
            telemetry.counter_inc(
                "repro_experiments_total", **({"app": app} if app else {})
            )
            telemetry.histogram_observe(
                "repro_experiment_seconds", time.perf_counter() - start,
                **({"app": app} if app else {}),
            )
        return Evaluation(
            config=config,
            quality=quality,
            savings=savings,
            breakdown=breakdown,
            output=result.output,
        )

    def evaluate_many(self, configs: dict, runner=None, client=None,
                      batch: bool = True) -> dict:
        """Evaluate a named set of configurations (insertion-ordered).

        With ``runner=None`` every configuration is evaluated here,
        sequentially.  Passing an :class:`~repro.runtime.ExperimentRunner`
        routes the sweep through the shared parallel + cached execution
        path; passing a :class:`~repro.service.ServiceClient` as
        ``client`` delegates to a sweep-service instance instead (its
        warm cache and coalescing queue), fetching the full validated
        evaluations back through the instance's cache peer surface.
        Both remote paths require the framework to have been built from
        a spec (:meth:`from_spec`), since closures cannot cross
        processes.

        ``batch`` (default on) lets the runner group batch-compatible
        configurations (same enabled units, multiplier mode, SFU mode)
        into homogeneous chunks — a pure scheduling choice: results,
        cache entries, and resume behavior are identical either way.
        """
        if runner is not None and client is not None:
            raise ValueError("pass either runner= or client=, not both")
        if runner is None and client is None:
            return {name: self.evaluate(cfg) for name, cfg in configs.items()}
        if self.spec is None:
            raise ValueError(
                "parallel evaluation needs a spec-built framework; "
                "construct it with PowerQualityFramework.from_spec(...)"
            )
        if client is not None:
            names = list(configs)
            evaluations = client.evaluate_many(self.spec,
                                               list(configs.values()))
            return dict(zip(names, evaluations))
        return runner.sweep(self.spec, configs, batch=batch)

    def sweep(self, configs: dict, runner=None, batch: bool = True) -> dict:
        """Alias of :meth:`evaluate_many` (the historical name)."""
        return self.evaluate_many(configs, runner=runner, batch=batch)

    def quality_evaluator(self) -> Callable:
        """An ``evaluate(config) -> quality`` closure for the tuning loop."""
        return lambda config: self.evaluate(config).quality
