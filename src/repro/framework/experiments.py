"""Experiment registry: every table and figure in the evaluation.

Maps each experiment to its paper reference, the modules that implement it,
and the benchmark target that regenerates it.  High-level runners for the
Table-5 / Figure-17 configuration sets live here so the test suite, the
benchmarks, and the examples share a single definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import IHWConfig

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "table5_configurations",
    "RAY_CONFIGS",
]


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the paper's evaluation."""

    id: str
    title: str
    paper_result: str
    modules: tuple
    bench: str


EXPERIMENTS = {
    e.id: e
    for e in [
        Experiment(
            "fig1", "Peak GFLOPS, CPU vs GPU",
            "GPU peak DP throughput ~1 TFLOPS vs ~0.19 TFLOPS CPU",
            ("repro.gpu.isa",), "benchmarks/test_fig01_peak_flops.py",
        ),
        Experiment(
            "fig2", "Arithmetic power share per benchmark",
            "FPU+SFU ~= 27-38% of GPU power for compute-intensive kernels",
            ("repro.gpu.power", "repro.apps"), "benchmarks/test_fig02_power_breakdown.py",
        ),
        Experiment(
            "table1", "Imprecise function maximum errors",
            "rcp 5.88%, rsqrt/sqrt 11.11%, mul 25%, add/log2 unbounded",
            ("repro.core", "repro.erroranalysis"),
            "benchmarks/test_table1_imprecise_functions.py",
        ),
        Experiment(
            "fig8", "Error PMFs of the 32-bit IHW set",
            "adder/log2 FSM-dominated; others bounded by Table-1 maxima",
            ("repro.erroranalysis.characterize",),
            "benchmarks/test_fig08_error_characterization.py",
        ),
        Experiment(
            "fig9", "Error PMFs of the configurable multiplier",
            "mass clusters right of the PMF as truncation grows, below the bound",
            ("repro.core.configurable", "repro.erroranalysis"),
            "benchmarks/test_fig09_multiplier_characterization.py",
        ),
        Experiment(
            "fig10-11", "Functional verification flow",
            "functional models verified against HDL-level models by simulation",
            ("repro.hdl",), "benchmarks/test_fig10_11_verification.py",
        ),
        Experiment(
            "table2", "Normalized non-functional metrics (32-bit IHW vs DWIP)",
            "ifpmul 0.040 power / 0.218 latency; ifpadd 0.31 / 0.74; isqrt 1.16 power",
            ("repro.hardware.units", "repro.hardware.library"),
            "benchmarks/test_table2_nonfunctional_metrics.py",
        ),
        Experiment(
            "table3", "25-bit adder vs 24x24 multiplier",
            "0.24 vs 8.50 mW (~35x), 0.31 vs 0.93 ns (~3x)",
            ("repro.hardware.blocks",), "benchmarks/test_table3_adder_vs_multiplier.py",
        ),
        Experiment(
            "table4", "Configurable FP multiplier PPA",
            "36.63 -> 17.93 mW (fp32), 119.9 -> 38.17 mW (fp64) at same latency",
            ("repro.hardware.units",), "benchmarks/test_table4_fp_multiplier_metrics.py",
        ),
        Experiment(
            "fig14", "Power-quality tradeoff of the multiplier",
            ">25x at ~18% error (lp_tr19, fp32); 49x (fp64); bt only ~2.3-6x",
            ("repro.hardware.library", "repro.core.configurable"),
            "benchmarks/test_fig14_power_quality_tradeoff.py",
        ),
        Experiment(
            "fig15", "HotSpot functional + power result",
            "MAE 0.05 K, 32.06% system savings, 91.54% arithmetic savings",
            ("repro.apps.hotspot", "repro.framework"),
            "benchmarks/test_fig15_hotspot.py",
        ),
        Experiment(
            "fig16", "SRAD functional + power result",
            "Pratt FOM 0.20 -> 0.23, 24.23% system savings",
            ("repro.apps.srad", "repro.framework"),
            "benchmarks/test_fig16_srad.py",
        ),
        Experiment(
            "fig17", "RayTracing quality ladder",
            "SSIM 0.95 @ 10.24%; 0.83 @ 11.50%; mul destroys the image",
            ("repro.apps.raytrace", "repro.framework"),
            "benchmarks/test_fig17_18_raytrace.py",
        ),
        Experiment(
            "fig18", "RayTracing with the improved multiplier",
            "full path: SSIM 0.85 @ 13.56%; tr15: 0.79 @ 15.37%",
            ("repro.apps.raytrace", "repro.core.configurable"),
            "benchmarks/test_fig17_18_raytrace.py",
        ),
        Experiment(
            "table5", "System-level power savings",
            "hotspot 32.06/91.54; srad 24.23/90.68; ray 10.24-13.56/36-48",
            ("repro.gpu.savings", "repro.framework"),
            "benchmarks/test_table5_system_savings.py",
        ),
        Experiment(
            "table6", "Benchmark summary",
            "FP-mul counts and configurable-multiplier coverage per benchmark",
            ("repro.apps",), "benchmarks/test_table6_benchmark_summary.py",
        ),
        Experiment(
            "fig19", "HotSpot vs multiplier configuration",
            "lp_tr19 MAE ~1.2 K at 26x; bt_22 ~8x worse MAE at only 6x",
            ("repro.apps.hotspot",), "benchmarks/test_fig19_hotspot_multiplier.py",
        ),
        Experiment(
            "fig20", "CP vs multiplier configuration",
            "proposed multiplier: consistently lower MAE at larger reduction",
            ("repro.apps.cp",), "benchmarks/test_fig20_cp.py",
        ),
        Experiment(
            "fig21a", "179.art vigilance vs configuration",
            "bt drops abruptly; configurable keeps confidence > 0.8 at 26x",
            ("repro.apps.art",), "benchmarks/test_fig21_art_gromacs.py",
        ),
        Experiment(
            "fig21b", "435.gromacs error% vs configuration",
            "most configurable points below the 1.25% acceptance line",
            ("repro.apps.gromacs",), "benchmarks/test_fig21_art_gromacs.py",
        ),
        Experiment(
            "table7", "482.sphinx3 words recognized",
            "fp path >= 24/25 everywhere; lp path down to 21; bt holds to 48 bits",
            ("repro.apps.sphinx",), "benchmarks/test_table7_sphinx.py",
        ),
    ]
}

#: The Figure-17/18 and Table-5 RayTracing configuration ladder.
RAY_CONFIGS = {
    "ray_rcp_add_sqrt": IHWConfig.units("rcp", "add", "sqrt"),
    "ray_rcp_add_sqrt_rsqrt": IHWConfig.units("rcp", "add", "sqrt", "rsqrt"),
    "ray_rcp_add_sqrt_fpmul_fp": IHWConfig.units("rcp", "add", "sqrt").with_multiplier(
        "mitchell", config="fp_tr0"
    ),
}


def table5_configurations() -> dict:
    """Application -> configuration for every Table-5 row."""
    return {
        "hotspot": IHWConfig.all_imprecise(),
        "srad": IHWConfig.all_imprecise(),
        **RAY_CONFIGS,
    }
