"""Metric primitives and the registry that exports them.

A :class:`MetricsRegistry` holds three metric kinds, all label-aware:

- :class:`Counter` — monotone float accumulator (merge: sum);
- :class:`Gauge` — last/max/min-valued sample (merge per its ``agg``);
- :class:`Histogram` — Prometheus-style cumulative buckets over fixed
  upper bounds (merge: element-wise sum).

Registries serialize to a plain-JSON *snapshot* (a list of metric
documents), which is the unit of transport everywhere: worker processes
drain their registry and ship the snapshot to the parent, successive CLI
runs merge their snapshot into ``.repro_telemetry/metrics.json``, and the
``repro metrics`` command re-hydrates a registry from that file to render
it.  Two text exporters are provided: JSON-lines (one metric per line) and
the Prometheus text exposition format.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bounds (seconds-scale timings).
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)


class Counter:
    """Monotonically increasing sum; merged across processes by addition."""

    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def _doc(self) -> dict:
        return {"value": self.value}

    def _merge(self, doc: dict) -> None:
        self.value += float(doc["value"])


class Gauge:
    """Point-in-time value; ``agg`` picks the cross-snapshot merge rule."""

    kind = "gauge"

    def __init__(self, agg: str = "last"):
        if agg not in ("last", "max", "min"):
            raise ValueError(f"unknown gauge aggregation {agg!r}")
        self.agg = agg
        self.value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        value = float(value)
        if not self._set or self.agg == "last":
            self.value = value
        elif self.agg == "max":
            self.value = max(self.value, value)
        else:
            self.value = min(self.value, value)
        self._set = True

    def _doc(self) -> dict:
        return {"value": self.value, "agg": self.agg}

    def _merge(self, doc: dict) -> None:
        self.set(float(doc["value"]))


class Histogram:
    """Cumulative-bucket histogram over fixed upper bounds."""

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> list:
        """Prometheus-style cumulative counts, one per bound plus +Inf."""
        out, running = [], 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out

    def _doc(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    def _merge(self, doc: dict) -> None:
        if tuple(float(b) for b in doc["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(doc["bucket_counts"]):
            self.bucket_counts[i] += int(n)
        self.sum += float(doc["sum"])
        self.count += int(doc["count"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Label-aware metric store with snapshot/merge transport.

    Thread-safe for registration; metric updates themselves are plain
    float arithmetic (the runtime only updates from one thread per
    process, with cross-process aggregation via :meth:`drain` +
    :meth:`merge`).
    """

    def __init__(self):
        self._metrics: dict = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(key, factory())
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, agg: str = "last", **labels) -> Gauge:
        return self._get("gauge", name, labels, lambda: Gauge(agg))

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        return self._get("histogram", name, labels, lambda: Histogram(buckets))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshot transport
    # ------------------------------------------------------------------
    def snapshot(self) -> list:
        """JSON-able list of metric documents (stable order)."""
        docs = []
        for (kind, name, labels), metric in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            docs.append(
                {"kind": kind, "name": name, "labels": dict(labels), **metric._doc()}
            )
        return docs

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def drain(self) -> list:
        """Snapshot then clear — the worker-to-parent handoff."""
        docs = self.snapshot()
        self.clear()
        return docs

    def merge(self, snapshot: list) -> None:
        """Fold a snapshot into this registry (sum/max/min per metric kind)."""
        for doc in snapshot:
            kind = doc["kind"]
            if kind == "gauge":
                metric = self.gauge(doc["name"], agg=doc.get("agg", "last"),
                                    **doc["labels"])
            elif kind == "histogram":
                metric = self.histogram(doc["name"], buckets=doc["bounds"],
                                        **doc["labels"])
            elif kind == "counter":
                metric = self.counter(doc["name"], **doc["labels"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            metric._merge(doc)

    @classmethod
    def from_snapshot(cls, snapshot: list) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    @classmethod
    def from_snapshot_file(cls, path) -> "MetricsRegistry":
        return cls.from_snapshot(json.loads(Path(path).read_text()))

    def write_snapshot(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=1, sort_keys=True) + "\n")
        return path

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON document per metric, newline-separated."""
        return "\n".join(
            json.dumps(doc, sort_keys=True, separators=(",", ":"))
            for doc in self.snapshot()
        )

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format rendering."""
        by_name: dict = {}
        for doc in self.snapshot():
            by_name.setdefault((doc["name"], doc["kind"]), []).append(doc)
        lines = []
        for (name, kind), docs in sorted(by_name.items()):
            lines.append(f"# TYPE {name} {kind}")
            for doc in docs:
                labels = doc["labels"]
                if kind == "histogram":
                    cumulative = 0
                    for bound, n in zip(doc["bounds"], doc["bucket_counts"]):
                        cumulative += n
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**labels, 'le': _fmt(bound)})}"
                            f" {cumulative}"
                        )
                    cumulative += doc["bucket_counts"][-1]
                    lines.append(
                        f"{name}_bucket{_render_labels({**labels, 'le': '+Inf'})}"
                        f" {cumulative}"
                    )
                    lines.append(f"{name}_sum{_render_labels(labels)} {_fmt(doc['sum'])}")
                    lines.append(f"{name}_count{_render_labels(labels)} {doc['count']}")
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {_fmt(doc['value'])}"
                    )
        return "\n".join(lines)


def _fmt(value: float) -> str:
    value = float(value)
    return str(int(value)) if value == int(value) else repr(value)


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
