"""Per-operation wall-clock accumulation for compute backends.

An :class:`OpTimer` is attached to an
:class:`~repro.core.context.ArithmeticContext` by the apps layer (like the
drift probe — the core layer never imports telemetry) and accumulates wall
time, call counts, and element counts per imprecise operation.  At kernel
finish, :func:`repro.telemetry.record_kernel` folds the totals into the
metrics registry labeled with the executing backend, which is what makes
``reference`` vs ``fused`` throughput visible in ``repro metrics``.
"""

from __future__ import annotations

__all__ = ["OpTimer"]


class OpTimer:
    """Accumulates ``[seconds, calls, elements]`` per operation name."""

    __slots__ = ("ops",)

    def __init__(self):
        self.ops: dict = {}

    def record(self, op: str, seconds: float, elements: int) -> None:
        entry = self.ops.get(op)
        if entry is None:
            self.ops[op] = [seconds, 1, elements]
        else:
            entry[0] += seconds
            entry[1] += 1
            entry[2] += elements

    def __bool__(self) -> bool:
        return bool(self.ops)

    def flush_into(self, registry, kernel: str, backend: str) -> None:
        """Fold the accumulated timings into ``registry`` and clear."""
        for op, (seconds, calls, elements) in self.ops.items():
            labels = {"kernel": kernel, "op": op, "backend": backend}
            registry.counter("repro_backend_op_seconds_total", **labels).inc(
                seconds
            )
            registry.counter("repro_backend_op_calls_total", **labels).inc(
                calls
            )
            registry.counter("repro_backend_op_elements_total", **labels).inc(
                elements
            )
        self.ops.clear()
