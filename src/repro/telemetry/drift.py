"""Numeric-drift probes: per-op error statistics from live kernels.

The error characterization (:mod:`repro.erroranalysis.characterize`)
measures each unit over a synthetic low-discrepancy input sweep; a
:class:`DriftProbe` measures the same statistic — relative error of the
imprecise result against the float64-exact one, binned at
``ceil(log2 |ERR%|)`` like Figures 8–9 — over the *actual operands the
kernel produced*, while the kernel runs.  That exposes how
imprecision-induced error accumulates mid-kernel (drift), which the
end-to-end quality metric only shows after the fact.

An :class:`~repro.core.ArithmeticContext` with a probe attached calls
:meth:`DriftProbe.observe` from each imprecise dispatch with the
approximate result and a *thunk* producing the exact result; the probe is
strictly read-only with respect to the context — it never touches
``ArithmeticContext.counts``, so the access counts feeding the power
model are bit-identical with and without probing (tested).

Cost control (the probe must stay under the telemetry overhead budget):

- only every ``sample_every``-th call per op is observed (the first call
  always is, so every op appears in the stats);
- observed arrays larger than ``max_elements`` are strided down to at
  most that many elements;
- the exact-result thunk is only evaluated for sampled calls.

Defaults come from ``REPRO_DRIFT_SAMPLE_EVERY`` / ``REPRO_DRIFT_MAX_ELEMENTS``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DriftProbe", "OpDrift", "drift_probe_defaults"]


def drift_probe_defaults() -> tuple:
    """(sample_every, max_elements) honoring the environment knobs.

    The defaults keep metrics-mode overhead under the benchmark gate
    (< 5% on the 12-configuration sweep); lower ``REPRO_DRIFT_SAMPLE_EVERY``
    for denser statistics when overhead does not matter.
    """
    every = int(os.environ.get("REPRO_DRIFT_SAMPLE_EVERY", "16") or 16)
    max_elements = int(os.environ.get("REPRO_DRIFT_MAX_ELEMENTS", "256") or 256)
    return max(1, every), max(1, max_elements)


@dataclass
class OpDrift:
    """Accumulated drift statistics of one op within one kernel run."""

    calls: int = 0  # imprecise dispatches seen (sampled or not)
    sampled_calls: int = 0
    observed: int = 0  # scalar results compared against the exact value
    nonzero: int = 0  # compared results with a non-zero relative error
    err_pct_sum: float = 0.0  # summed |ERR%| over observed results
    err_pct_max: float = 0.0
    bins: dict = field(default_factory=dict)  # ceil(log2 |ERR%|) -> count

    @property
    def mean_err_pct(self) -> float:
        return self.err_pct_sum / self.observed if self.observed else 0.0

    @property
    def error_rate(self) -> float:
        return self.nonzero / self.observed if self.observed else 0.0


class DriftProbe:
    """Sampled per-op relative-error accumulator for one kernel run."""

    def __init__(self, sample_every: int | None = None,
                 max_elements: int | None = None):
        default_every, default_max = drift_probe_defaults()
        self.sample_every = sample_every if sample_every is not None else default_every
        self.max_elements = (
            max_elements if max_elements is not None else default_max
        )
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.max_elements < 1:
            raise ValueError(f"max_elements must be >= 1, got {self.max_elements}")
        self.ops: dict = {}

    def __bool__(self) -> bool:
        return bool(self.ops)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, op: str, approx, exact) -> None:
        """Record one imprecise dispatch.

        ``exact`` is a zero-argument callable producing the float64 exact
        result — evaluated only when this call is sampled.
        """
        stats = self.ops.get(op)
        if stats is None:
            stats = self.ops[op] = OpDrift()
        stats.calls += 1
        if (stats.calls - 1) % self.sample_every:
            return
        stats.sampled_calls += 1
        with np.errstate(all="ignore"):
            approx64 = np.asarray(approx, dtype=np.float64).ravel()
            exact64 = np.asarray(exact(), dtype=np.float64).ravel()
            if approx64.size > self.max_elements:
                stride = -(-approx64.size // self.max_elements)  # ceil div
                approx64 = approx64[::stride]
                exact64 = exact64[::stride]
            valid = np.isfinite(exact64) & np.isfinite(approx64) & (exact64 != 0)
            err_pct = (
                np.abs(approx64[valid] - exact64[valid])
                / np.abs(exact64[valid])
                * 100.0
            )
        stats.observed += int(valid.sum())
        if err_pct.size == 0:
            return
        nonzero = err_pct[err_pct > 0]
        stats.nonzero += int(nonzero.size)
        stats.err_pct_sum += float(err_pct.sum())
        if nonzero.size:
            stats.err_pct_max = max(stats.err_pct_max, float(nonzero.max()))
            labels, counts = np.unique(
                np.ceil(np.log2(nonzero)).astype(np.int64), return_counts=True
            )
            for label, count in zip(labels, counts):
                key = int(label)
                stats.bins[key] = stats.bins.get(key, 0) + int(count)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def flush_into(self, registry, kernel: str) -> None:
        """Write the accumulated statistics into a metrics registry.

        Everything is expressed as counters (plus a max-aggregated gauge),
        so snapshots from worker processes and successive runs merge
        exactly; consumers derive the mean as ``sum / observed``.
        """
        for op, stats in sorted(self.ops.items()):
            labels = {"kernel": kernel, "op": op}
            registry.counter("repro_drift_calls_total", **labels).inc(stats.calls)
            registry.counter("repro_drift_sampled_calls_total", **labels).inc(
                stats.sampled_calls
            )
            registry.counter("repro_drift_observed_total", **labels).inc(
                stats.observed
            )
            registry.counter("repro_drift_nonzero_total", **labels).inc(
                stats.nonzero
            )
            registry.counter("repro_drift_err_pct_sum", **labels).inc(
                stats.err_pct_sum
            )
            registry.gauge("repro_drift_err_pct_max", agg="max", **labels).set(
                stats.err_pct_max
            )
            for bin_label, count in sorted(stats.bins.items()):
                registry.counter(
                    "repro_drift_err_pct_log2_bin_total",
                    **labels,
                    bin=str(bin_label),
                ).inc(count)
        self.ops = {}
