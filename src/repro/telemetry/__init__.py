"""Observability for the imprecise-compute stack: metrics, traces, drift.

The paper's contribution is a *measured* tradeoff — access counts feed the
power model while quality metrics track error — and this subsystem makes
the reproduction measure itself the same way:

- :class:`MetricsRegistry` (``metrics.py``) — counters, gauges, and
  histograms with JSON-lines and Prometheus-text exporters;
- :class:`Tracer` (``tracer.py``) — nested timing spans around sweeps,
  experiments, kernels, cache operations, and unit characterization, with
  per-worker buffers merged by the runner;
- :class:`DriftProbe` (``drift.py``) — sampled per-op relative-error
  statistics (count, mean/max \\|ERR%\\|, ``ceil(log2 |ERR%|)`` histogram
  matching the Figure 8–9 binning) collected from live kernels without
  perturbing the access counts the power model consumes.

Everything is **off by default** and controlled by one knob::

    REPRO_TELEMETRY=off       # default: zero-instrumentation fast path
    REPRO_TELEMETRY=metrics   # metric counters + drift probes
    REPRO_TELEMETRY=trace     # metrics plus nested spans

With ``off``, instrumentation sites reduce to one mode check — the
sequential path stays bit-identical and the sweep wall time unchanged
(asserted by ``tests/test_telemetry.py`` and the overhead gate in
``benchmarks/test_runtime_sweep.py``).  Snapshots persist under
``REPRO_TELEMETRY_DIR`` (default ``.repro_telemetry/``):
``metrics.json`` merges across runs, ``trace.jsonl`` appends spans.  The
``repro metrics`` and ``repro trace`` CLI subcommands render them.

Library use: :func:`override` forces a mode in-process (tests, benchmarks,
the report generator) without touching the environment of worker
processes, which read ``REPRO_TELEMETRY`` themselves.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

from .drift import DriftProbe, OpDrift, drift_probe_defaults
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .optimer import OpTimer
from .tracer import NULL_TRACER, NullTracer, Tracer, render_span_tree

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DriftProbe",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "OpDrift",
    "OpTimer",
    "Tracer",
    "MODES",
    "METRICS_FILENAME",
    "TRACE_FILENAME",
    "telemetry_mode",
    "metrics_enabled",
    "trace_enabled",
    "override",
    "get_registry",
    "get_tracer",
    "span",
    "counter_inc",
    "gauge_set",
    "histogram_observe",
    "make_drift_probe",
    "make_op_timer",
    "record_kernel",
    "record_runner_stats",
    "drain_worker",
    "absorb_worker",
    "telemetry_dir",
    "flush",
    "reset",
    "render_span_tree",
    "drift_probe_defaults",
]

MODES = ("off", "metrics", "trace")
METRICS_FILENAME = "metrics.json"
TRACE_FILENAME = "trace.jsonl"
DEFAULT_TELEMETRY_DIR = ".repro_telemetry"

_OVERRIDE: str | None = None
_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


# ----------------------------------------------------------------------
# Mode
# ----------------------------------------------------------------------
def telemetry_mode() -> str:
    """The active mode: an :func:`override` if set, else ``REPRO_TELEMETRY``."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    mode = os.environ.get("REPRO_TELEMETRY", "off").strip().lower()
    return mode if mode in MODES else "off"


def metrics_enabled() -> bool:
    return telemetry_mode() != "off"


def trace_enabled() -> bool:
    return telemetry_mode() == "trace"


@contextmanager
def override(mode: str):
    """Force a telemetry mode for this process (ignores the environment).

    Does not propagate to worker processes — they read ``REPRO_TELEMETRY``
    — so pair it with ``max_workers=1`` runners or set the environment
    variable when fanning out.
    """
    global _OVERRIDE
    if mode not in MODES:
        raise ValueError(f"unknown telemetry mode {mode!r}; expected one of {MODES}")
    previous, _OVERRIDE = _OVERRIDE, mode
    try:
        yield
    finally:
        _OVERRIDE = previous


# ----------------------------------------------------------------------
# Global instances
# ----------------------------------------------------------------------
def get_registry() -> MetricsRegistry:
    """The process-wide registry (always real; guarded by the helpers)."""
    return _REGISTRY


def get_tracer():
    """The process tracer, or the shared no-op tracer when not tracing."""
    return _TRACER if trace_enabled() else NULL_TRACER


def reset() -> None:
    """Clear all buffered telemetry and the open-span stack.

    Used for test isolation and — critically — as the worker-process
    initializer: forked workers inherit the parent's buffered spans and
    counters, which would travel back with :func:`drain_worker` and be
    double-counted unless cleared at worker startup.
    """
    _REGISTRY.clear()
    _TRACER.drain()
    _TRACER.clear_stack()


# ----------------------------------------------------------------------
# Instrumentation helpers (each a no-op when the mode disables it)
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """``with telemetry.span("sweep", app=...):`` — no-op unless tracing."""
    return get_tracer().span(name, **attrs)


def counter_inc(name: str, amount: float = 1.0, **labels) -> None:
    if metrics_enabled():
        _REGISTRY.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, agg: str = "last", **labels) -> None:
    if metrics_enabled():
        _REGISTRY.gauge(name, agg=agg, **labels).set(value)


def histogram_observe(name: str, value: float, buckets=DEFAULT_BUCKETS,
                      **labels) -> None:
    if metrics_enabled():
        _REGISTRY.histogram(name, buckets=buckets, **labels).observe(value)


def make_drift_probe() -> DriftProbe | None:
    """A probe for one kernel run, or None when metrics are off."""
    return DriftProbe() if metrics_enabled() else None


def make_op_timer() -> OpTimer | None:
    """A backend op timer for one kernel run, or None when metrics are off."""
    return OpTimer() if metrics_enabled() else None


def record_kernel(name: str, context) -> None:
    """Fold one finished kernel execution into the registry.

    Reads the context's counters and drift probe; never mutates
    ``context.counts`` (the power model's inputs stay untouched).
    """
    if not metrics_enabled():
        return
    _REGISTRY.counter("repro_kernel_runs_total", kernel=name).inc()
    for (op, path), count in context.counts.items():
        _REGISTRY.counter(
            "repro_kernel_ops_total", kernel=name, op=op, path=path
        ).inc(count)
    probe = getattr(context, "drift_probe", None)
    if probe:
        probe.flush_into(_REGISTRY, kernel=name)
    timer = getattr(context, "op_timer", None)
    if timer:
        backend = getattr(getattr(context, "backend", None), "name", "unknown")
        timer.flush_into(_REGISTRY, kernel=name, backend=backend)


def record_runner_stats(stats, app: str | None = None) -> None:
    """Fold one :class:`~repro.runtime.RunnerStats` into the registry."""
    if not metrics_enabled():
        return
    labels = {"app": app} if app else {}
    doc = stats.to_dict()
    _REGISTRY.counter("repro_runner_sweeps_total", **labels).inc()
    _REGISTRY.counter("repro_runner_tasks_total", source="cache", **labels).inc(
        doc["cache_hits"]
    )
    _REGISTRY.counter("repro_runner_tasks_total", source="computed", **labels).inc(
        doc["cache_misses"]
    )
    _REGISTRY.counter("repro_runner_wall_seconds_total", **labels).inc(
        doc["wall_seconds"]
    )
    _REGISTRY.counter("repro_runner_compute_seconds_total", **labels).inc(
        doc["compute_seconds"]
    )
    _REGISTRY.gauge("repro_runner_last_speedup_vs_sequential", **labels).set(
        doc["speedup_vs_sequential"]
    )
    for task in doc["tasks"]:
        if not task["cached"]:
            _REGISTRY.histogram("repro_task_seconds", **labels).observe(
                task["seconds"]
            )


# ----------------------------------------------------------------------
# Worker handoff
# ----------------------------------------------------------------------
def drain_worker():
    """Everything this process buffered, as one picklable payload (or None)."""
    if not metrics_enabled():
        return None
    return {"spans": _TRACER.drain(), "metrics": _REGISTRY.drain()}


def absorb_worker(payload, parent_id=None) -> None:
    """Merge a worker's drained payload; root spans adopt ``parent_id``."""
    if not payload:
        return
    _REGISTRY.merge(payload["metrics"])
    _TRACER.absorb(payload["spans"], parent_id=parent_id)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def telemetry_dir() -> Path:
    return Path(os.environ.get("REPRO_TELEMETRY_DIR") or DEFAULT_TELEMETRY_DIR)


def flush(directory=None) -> dict:
    """Persist buffered telemetry and clear the buffers.

    Metrics merge into ``<dir>/metrics.json`` (accumulating across runs);
    spans append to ``<dir>/trace.jsonl``.  Returns ``{kind: path}`` for
    what was written; empty when telemetry is off or nothing is buffered.
    """
    written: dict = {}
    if not metrics_enabled():
        return written
    directory = Path(directory) if directory else telemetry_dir()
    if len(_REGISTRY):
        path = directory / METRICS_FILENAME
        merged = (
            MetricsRegistry.from_snapshot_file(path)
            if path.exists()
            else MetricsRegistry()
        )
        merged.merge(_REGISTRY.drain())
        written["metrics"] = merged.write_snapshot(path)
    if _TRACER.spans():
        written["trace"] = _TRACER.append_jsonl(directory / TRACE_FILENAME)
    return written
