"""Lightweight nested tracing spans.

A :class:`Tracer` records spans — named, timed, attributed intervals —
into an in-memory buffer.  Nesting is implicit through a per-thread stack:
a span opened inside another span's ``with`` block records that span as
its parent, so a swept experiment produces the tree

    sweep
      cache.get            (per configuration)
      experiment           (per miss)
        kernel             (reference, then candidate)
        cache.put

Worker processes each have their own tracer; :meth:`Tracer.drain` empties
the worker buffer into a plain-JSON list that travels back with the chunk
results, and :meth:`Tracer.absorb` re-parents those spans under the
parent process's open span.  Span ids embed the pid, so merged traces
stay unambiguous.

When tracing is disabled the runtime hands out :data:`NULL_TRACER`, whose
``span`` is a shared no-op context manager — instrumentation sites pay one
attribute check and nothing else.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "render_span_tree"]


class Tracer:
    """Buffering span recorder with implicit parent tracking."""

    def __init__(self):
        self._buffer: list = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def clear_stack(self) -> None:
        """Forget the calling thread's open-span stack (worker startup)."""
        self._local.stack = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Record one span around the managed block; yields the span doc."""
        span_id = f"{os.getpid()}-{next(self._ids)}"
        doc = {
            "name": name,
            "id": span_id,
            "parent": self.current_span_id(),
            "pid": os.getpid(),
            "start": time.time(),
            "end": None,
            "attrs": {k: v for k, v in attrs.items() if v is not None},
        }
        stack = self._stack()
        stack.append(span_id)
        try:
            yield doc
        finally:
            stack.pop()
            doc["end"] = time.time()
            doc["dur_ms"] = (doc["end"] - doc["start"]) * 1000.0
            with self._lock:
                self._buffer.append(doc)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def spans(self) -> list:
        with self._lock:
            return list(self._buffer)

    def drain(self) -> list:
        """Return the buffered spans and clear the buffer."""
        with self._lock:
            spans, self._buffer = self._buffer, []
        return spans

    def absorb(self, spans, parent_id=None) -> None:
        """Merge spans drained elsewhere; orphan roots adopt ``parent_id``."""
        spans = list(spans)
        local_ids = {s["id"] for s in spans}
        for span in spans:
            if span["parent"] is None or span["parent"] not in local_ids:
                span = {**span, "parent": span["parent"] or parent_id}
            with self._lock:
                self._buffer.append(span)

    def export_jsonl(self) -> str:
        """One compact JSON document per buffered span."""
        return "\n".join(
            json.dumps(span, sort_keys=True, separators=(",", ":"))
            for span in self.spans()
        )

    def append_jsonl(self, path) -> Path:
        """Drain the buffer into a JSON-lines file (append)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        spans = self.drain()
        if spans:
            with path.open("a") as handle:
                for span in spans:
                    handle.write(
                        json.dumps(span, sort_keys=True, separators=(",", ":")) + "\n"
                    )
        return path


class NullTracer:
    """No-op tracer handed out when tracing is disabled."""

    @contextmanager
    def _null(self):
        yield None

    def span(self, name: str, **attrs):
        return self._null()

    def current_span_id(self):
        return None

    def spans(self) -> list:
        return []

    def drain(self) -> list:
        return []

    def absorb(self, spans, parent_id=None) -> None:
        pass


NULL_TRACER = NullTracer()


def render_span_tree(spans, roots_only_last: bool = False) -> str:
    """Indented text rendering of a span list (as read from the JSONL).

    Children print under their parent ordered by start time; roots are
    spans whose parent never appears in the list.  With
    ``roots_only_last`` only the most recently started root renders.
    """
    spans = sorted(spans, key=lambda s: s["start"])
    by_id = {s["id"]: s for s in spans}
    children: dict = {}
    roots = []
    for span in spans:
        parent = span.get("parent")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    if roots_only_last and roots:
        roots = roots[-1:]

    lines: list = []

    def _render(span, depth):
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span["attrs"].items()))
        dur = span.get("dur_ms")
        dur_text = f"{dur:.1f}ms" if dur is not None else "?"
        lines.append(
            "  " * depth
            + f"{span['name']} {dur_text}"
            + (f"  [{attrs}]" if attrs else "")
        )
        for child in children.get(span["id"], []):
            _render(child, depth + 1)

    for root in roots:
        _render(root, 0)
    return "\n".join(lines)
