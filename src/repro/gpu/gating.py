"""Power gating model: the abstract's third orthogonal knob.

The paper: IHW "is orthogonal to DVFS, *power gating*, and other hardware
or software power optimization techniques, and can be combined with these
techniques to further reduce the power consumption".  This module models
unit-level power gating of the execution units: a gated unit's share of
static (leakage) power scales with its duty cycle plus a wake-up overhead,
so kernels that use a unit rarely stop paying its leakage.

Composed with IHW, gating attacks the *other* half of the unit cost: IHW
shrinks the dynamic energy per operation; gating shrinks the leakage of
the now mostly-idle precise units a partially-imprecise configuration
leaves behind.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelCounters
from .isa import FERMI_GTX480, GPUConfig, OpClass
from .power import GPUPowerModel, PowerBreakdown
from .simulator import KernelTiming, simulate_kernel

__all__ = ["GatingPolicy", "gated_breakdown", "execution_unit_duty"]

#: Execution-unit share of total static power (McPAT-style apportionment).
_STATIC_SHARE = {"FPU": 0.22, "SFU": 0.08, "ALU": 0.05}


@dataclass(frozen=True)
class GatingPolicy:
    """Unit-level power-gating parameters.

    ``wake_overhead`` is the residual leakage fraction a gated unit still
    burns (retention cells, wake-up energy amortized); ``gated_units`` are
    the execution units under gating control.
    """

    wake_overhead: float = 0.10
    gated_units: tuple = ("FPU", "SFU", "ALU")

    def __post_init__(self):
        if not 0 <= self.wake_overhead <= 1:
            raise ValueError(
                f"wake_overhead must be in [0, 1], got {self.wake_overhead}"
            )
        unknown = set(self.gated_units) - set(_STATIC_SHARE)
        if unknown:
            raise ValueError(f"cannot gate non-execution units: {sorted(unknown)}")


def execution_unit_duty(
    counters: KernelCounters,
    timing: KernelTiming,
    config: GPUConfig = FERMI_GTX480,
) -> dict:
    """Fraction of cycles each execution unit class is busy."""
    cycles_total = timing.cycles * config.num_sms
    if cycles_total <= 0:
        raise ValueError("timing must cover at least one cycle")
    cls = counters.class_counts()
    lane_cycles = {
        "FPU": cls[OpClass.FPU] / config.warp_size,  # one warp per cycle
        "SFU": cls[OpClass.SFU] / config.sfu_lanes,  # serialized over 4 lanes
        "ALU": cls[OpClass.ALU] / config.warp_size,
    }
    return {unit: min(1.0, busy / cycles_total) for unit, busy in lane_cycles.items()}


def gated_breakdown(
    counters: KernelCounters,
    policy: GatingPolicy = GatingPolicy(),
    model: GPUPowerModel | None = None,
    timing: KernelTiming | None = None,
) -> PowerBreakdown:
    """Power breakdown with execution-unit power gating applied.

    The gated fraction of each unit's static share is
    ``(1 - duty) * (1 - wake_overhead)``; dynamic power is untouched (the
    unit is awake whenever it computes).
    """
    model = model or GPUPowerModel()
    if timing is None:
        timing = simulate_kernel(counters, model.config)
    base = model.breakdown(counters, timing)
    duty = execution_unit_duty(counters, timing, model.config)

    static = base.watts["Static"]
    saved = 0.0
    for unit in policy.gated_units:
        unit_static = static * _STATIC_SHARE[unit]
        saved += unit_static * (1.0 - duty[unit]) * (1.0 - policy.wake_overhead)

    watts = dict(base.watts)
    watts["Static"] = static - saved
    return PowerBreakdown(
        watts=watts, timing=timing, name=f"{counters.name}+gated"
    )
