"""DVFS model: combining imprecise hardware with voltage-frequency scaling.

The abstract argues that IHW "is orthogonal to DVFS, power gating, and
other ... power optimization techniques, and can be combined with these
techniques to further reduce the power consumption".  This module
quantifies the combination:

- classic DVFS: dynamic power scales as ``V^2 f`` with voltage tracking
  frequency (``V ~ V0 * (f/f0)^alpha`` near the nominal point), leakage
  scales roughly with ``V``, and runtime stretches as ``f0/f`` — a
  power-*performance* tradeoff;
- IHW: a power-*quality* tradeoff at unchanged performance.

``combined_savings`` composes the two: IHW removes a fraction of the
arithmetic power at nominal speed, DVFS then rescales what remains.  The
product is the paper's "orthogonal knobs" claim made computable, including
the energy view (DVFS saves power but costs time, so energy savings are
smaller than power savings; IHW's savings carry to energy one-for-one).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DVFSPoint", "dvfs_power_scale", "combined_savings", "CombinedReport"]

#: Voltage-frequency exponent near the nominal operating point (45 nm).
DEFAULT_ALPHA = 0.8


def dvfs_power_scale(
    frequency_scale: float, alpha: float = DEFAULT_ALPHA, leakage_fraction: float = 0.3
) -> float:
    """Total-power scale factor at ``f/f0 = frequency_scale``.

    Dynamic power scales as ``V^2 f = s^(2 alpha + 1)``; leakage scales
    approximately with ``V = s^alpha``.
    """
    if frequency_scale <= 0:
        raise ValueError(f"frequency_scale must be positive, got {frequency_scale}")
    if not 0 <= leakage_fraction < 1:
        raise ValueError(f"leakage_fraction must be in [0, 1), got {leakage_fraction}")
    s = frequency_scale
    dynamic = (1 - leakage_fraction) * s ** (2 * alpha + 1)
    leakage = leakage_fraction * s**alpha
    return dynamic + leakage


@dataclass(frozen=True)
class DVFSPoint:
    """One voltage-frequency operating point."""

    frequency_scale: float  # f / f_nominal
    alpha: float = DEFAULT_ALPHA
    leakage_fraction: float = 0.3

    @property
    def power_scale(self) -> float:
        return dvfs_power_scale(self.frequency_scale, self.alpha, self.leakage_fraction)

    @property
    def runtime_scale(self) -> float:
        """Execution-time stretch of a compute-bound kernel."""
        return 1.0 / self.frequency_scale

    @property
    def energy_scale(self) -> float:
        return self.power_scale * self.runtime_scale


@dataclass(frozen=True)
class CombinedReport:
    """IHW + DVFS composition relative to the precise, nominal baseline."""

    ihw_power_savings: float
    dvfs_point: DVFSPoint
    power_savings: float  # combined fractional power reduction
    energy_savings: float
    runtime_scale: float

    def format_row(self) -> str:
        return (
            f"IHW {self.ihw_power_savings:6.1%} x DVFS f={self.dvfs_point.frequency_scale:.2f} "
            f"-> power {self.power_savings:6.1%}, energy {self.energy_savings:6.1%}, "
            f"runtime x{self.runtime_scale:.2f}"
        )


def combined_savings(ihw_system_savings: float, dvfs: DVFSPoint) -> CombinedReport:
    """Compose an IHW system-savings figure with a DVFS operating point.

    IHW first removes its share at nominal frequency (no performance
    change); DVFS then scales the remaining power and stretches runtime.
    """
    if not 0 <= ihw_system_savings < 1:
        raise ValueError(
            f"ihw_system_savings must be a fraction in [0, 1), got {ihw_system_savings}"
        )
    remaining = (1.0 - ihw_system_savings) * dvfs.power_scale
    energy_remaining = remaining * dvfs.runtime_scale
    return CombinedReport(
        ihw_power_savings=ihw_system_savings,
        dvfs_point=dvfs,
        power_savings=1.0 - remaining,
        energy_savings=1.0 - energy_remaining,
        runtime_scale=dvfs.runtime_scale,
    )
