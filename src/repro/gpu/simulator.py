"""Cycle-level SM/warp timing simulator — the GPGPU-Sim substitute.

The paper uses GPGPU-Sim's cycle-accurate Fermi model to obtain performance
counters and kernel runtimes for GPUWattch.  This module reproduces that
role with a sampling methodology standard in architecture studies:

1. build a representative per-warp instruction stream from the kernel's
   measured instruction mix (largest-remainder interleaving, so the stream
   proportions match the counters exactly);
2. simulate one SM cycle by cycle — a greedy round-robin scheduler issues up
   to ``issue_width`` ready warps per cycle into unit pipelines with
   realistic occupancies (FPU one warp/cycle, SFU ``warp_size/sfu_lanes``
   cycles, memory with fixed latency and bounded outstanding requests);
3. extrapolate the measured IPC to the kernel's full warp-instruction count
   across all SMs.

The simulated scheduler exhibits the first-order Fermi behaviors that matter
for the power model: SFU serialization, latency hiding proportional to
resident warps, and memory-bound stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelCounters
from .isa import FERMI_GTX480, GPUConfig, OP_CLASS_LATENCY, OpClass

__all__ = [
    "KernelTiming",
    "StallProfile",
    "build_warp_stream",
    "profile_kernel_stalls",
    "simulate_kernel",
    "simulate_sm_window",
]


@dataclass(frozen=True)
class KernelTiming:
    """Timing summary of one kernel on the simulated GPU."""

    cycles: int
    time_s: float
    ipc_per_sm: float
    warp_instructions: int
    occupancy: float

    @property
    def time_ns(self) -> float:
        return self.time_s * 1e9


def build_warp_stream(mix: dict, length: int) -> list:
    """A ``length``-instruction stream matching the class proportions of ``mix``.

    Largest-remainder apportionment followed by even interleaving, so short
    windows still carry every class that appears in the kernel.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("instruction mix is empty")

    quotas = {cls: mix[cls] * length / total for cls in mix if mix[cls] > 0}
    counts = {cls: int(q) for cls, q in quotas.items()}
    if length >= len(quotas):
        # Rare classes must not vanish from short windows: a dropped MEM or
        # SFU class would hide its latency/occupancy entirely.
        for cls in counts:
            counts[cls] = max(counts[cls], 1)
    while sum(counts.values()) > length:
        biggest = max(counts, key=lambda c: counts[c])
        counts[biggest] -= 1
    leftover = length - sum(counts.values())
    for cls in sorted(quotas, key=lambda c: quotas[c] - counts[c], reverse=True):
        if leftover <= 0:
            break
        counts[cls] += 1
        leftover -= 1

    # Interleave classes by spreading each class evenly over the window.
    slots = [None] * length
    order = sorted(counts, key=lambda c: counts[c], reverse=True)
    position = 0.0
    for cls in order:
        n = counts[cls]
        if n == 0:
            continue
        stride = length / n
        offset = position % 1.0
        for i in range(n):
            idx = int(offset + i * stride) % length
            while slots[idx] is not None:
                idx = (idx + 1) % length
            slots[idx] = cls
        position += 0.618  # golden-ratio offset de-synchronizes the classes
    return slots


@dataclass
class StallProfile:
    """Per-cycle issue accounting of one SM window simulation.

    Every (cycle, issue slot) either issues an instruction or is charged to
    the first reason the scheduler could not fill it:

    - ``dependency`` — every remaining warp waits on its own latency,
    - ``fpu_port`` / ``sfu_port`` / ``lsu_port`` — ready warps existed but
      the unit pipeline was occupied,
    - ``mem_bandwidth`` — the outstanding-request window was full,
    - ``drained`` — no instructions left to issue.
    """

    issued: int = 0
    dependency: int = 0
    fpu_port: int = 0
    sfu_port: int = 0
    lsu_port: int = 0
    mem_bandwidth: int = 0
    drained: int = 0

    @property
    def total_slots(self) -> int:
        return (
            self.issued + self.dependency + self.fpu_port + self.sfu_port
            + self.lsu_port + self.mem_bandwidth + self.drained
        )

    def fractions(self) -> dict:
        """Slot shares per category (sums to 1)."""
        total = max(self.total_slots, 1)
        return {
            name: getattr(self, name) / total
            for name in (
                "issued", "dependency", "fpu_port", "sfu_port", "lsu_port",
                "mem_bandwidth", "drained",
            )
        }

    def format_rows(self) -> str:
        lines = []
        for name, frac in self.fractions().items():
            lines.append(f"  {name:14s} {frac:6.1%} {'#' * int(round(frac * 40))}")
        return "\n".join(lines)


def simulate_sm_window(
    mix: dict,
    config: GPUConfig = FERMI_GTX480,
    resident_warps: int = 32,
    window: int = 64,
    profile: StallProfile | None = None,
) -> tuple:
    """Simulate one SM draining ``resident_warps`` warps of ``window`` instructions.

    Returns ``(cycles, instructions_issued)``; pass a :class:`StallProfile`
    to additionally collect per-slot issue/stall accounting.
    """
    if resident_warps < 1:
        raise ValueError("need at least one resident warp")
    stream = build_warp_stream(mix, window)
    pc = [0] * resident_warps
    ready = [0] * resident_warps
    fpu_free = 0
    sfu_free = 0
    lsu_free = 0
    outstanding_mem = []

    issued = 0
    cycle = 0
    rr = 0  # round-robin pointer
    total_instr = resident_warps * window
    max_cycles = total_instr * (config.mem_latency + 16)

    while issued < total_instr and cycle < max_cycles:
        outstanding_mem = [c for c in outstanding_mem if c > cycle]
        slots = config.issue_width
        blocked_reasons = set()
        for k in range(resident_warps):
            if slots == 0:
                break
            w = (rr + k) % resident_warps
            if pc[w] >= window:
                continue
            if ready[w] > cycle:
                blocked_reasons.add("dependency")
                continue
            op = stream[pc[w]]
            if op is OpClass.FPU or op is OpClass.ALU or op is OpClass.CTRL:
                if fpu_free > cycle:
                    blocked_reasons.add("fpu_port")
                    continue
                fpu_free = cycle + 1
            elif op is OpClass.SFU:
                if sfu_free > cycle:
                    blocked_reasons.add("sfu_port")
                    continue
                sfu_free = cycle + config.sfu_occupancy_cycles
            else:  # MEM
                if len(outstanding_mem) >= config.mem_pipeline_depth:
                    blocked_reasons.add("mem_bandwidth")
                    continue
                if lsu_free > cycle:
                    blocked_reasons.add("lsu_port")
                    continue
                lsu_free = cycle + config.lsu_occupancy_cycles
                outstanding_mem.append(cycle + config.mem_latency)
                # Loads are non-blocking: the warp stalls for the full round
                # trip only at its next true dependence (modeled as every
                # mem_dependence_distance-th access); otherwise it proceeds
                # after the LSU pipeline.
                if pc[w] % config.mem_dependence_distance == 0:
                    ready[w] = cycle + config.mem_latency
                else:
                    ready[w] = cycle + config.lsu_occupancy_cycles + 4
                pc[w] += 1
                issued += 1
                slots -= 1
                if profile is not None:
                    profile.issued += 1
                continue
            ready[w] = cycle + OP_CLASS_LATENCY[op]
            pc[w] += 1
            issued += 1
            slots -= 1
            if profile is not None:
                profile.issued += 1
        if profile is not None and slots > 0:
            # Charge the unfilled slots to the dominant blocking reason.
            if not any(pc[w] < window for w in range(resident_warps)):
                reason = "drained"
            elif "fpu_port" in blocked_reasons:
                reason = "fpu_port"
            elif "sfu_port" in blocked_reasons:
                reason = "sfu_port"
            elif "mem_bandwidth" in blocked_reasons:
                reason = "mem_bandwidth"
            elif "lsu_port" in blocked_reasons:
                reason = "lsu_port"
            else:
                reason = "dependency"
            setattr(profile, reason, getattr(profile, reason) + slots)
        rr = (rr + 1) % resident_warps
        cycle += 1
    return cycle, issued


def profile_kernel_stalls(
    counters: KernelCounters,
    config: GPUConfig = FERMI_GTX480,
    resident_warps: int = 32,
    window: int = 64,
) -> StallProfile:
    """Issue/stall breakdown of a kernel's representative window."""
    warp_counts = counters.warp_instruction_counts(config.warp_size)
    if sum(warp_counts.values()) == 0:
        raise ValueError(f"kernel {counters.name!r} issued no instructions")
    warps = max(1, counters.threads // config.warp_size)
    resident = max(1, min(resident_warps, warps, config.max_resident_warps))
    profile = StallProfile()
    simulate_sm_window(warp_counts, config, resident, window, profile=profile)
    return profile


def simulate_kernel(
    counters: KernelCounters,
    config: GPUConfig = FERMI_GTX480,
    resident_warps: int = 32,
    window: int = 64,
) -> KernelTiming:
    """Extrapolate a window simulation to the kernel's full instruction count."""
    warp_counts = counters.warp_instruction_counts(config.warp_size)
    total_warp_instr = sum(warp_counts.values())
    if total_warp_instr == 0:
        raise ValueError(f"kernel {counters.name!r} issued no instructions")

    warps = max(1, counters.threads // config.warp_size)
    resident = max(1, min(resident_warps, warps, config.max_resident_warps))
    cycles_window, issued = simulate_sm_window(warp_counts, config, resident, window)
    ipc = issued / cycles_window

    per_sm_instr = total_warp_instr / config.num_sms
    cycles = int(per_sm_instr / ipc) + 1
    time_s = cycles / (config.clock_ghz * 1e9)
    return KernelTiming(
        cycles=cycles,
        time_s=time_s,
        ipc_per_sm=ipc,
        warp_instructions=total_warp_instr,
        occupancy=resident / config.max_resident_warps,
    )
