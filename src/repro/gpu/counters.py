"""Performance counters: the interface between kernels and the power model.

The paper's flow reads GPGPU-Sim performance counters into GPUWattch
(`init_perf_acc()` in Figure 12).  Here a :class:`KernelCounters` object
aggregates the scalar-operation counts an :class:`~repro.core.ArithmeticContext`
collected, plus the memory / integer / control operation counts the kernel
reports, into the per-class access counts both the timing simulator and the
power model consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import OP_UNIT_CLASS, ArithmeticContext

from .isa import OpClass

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Access counts of one kernel execution.

    ``arith`` holds scalar-op counts keyed ``(op, "precise" | "imprecise")``
    exactly as the arithmetic context produces them; the remaining fields are
    scalar counts of the non-arithmetic instruction classes.
    """

    name: str = "kernel"
    arith: dict = field(default_factory=dict)
    int_ops: int = 0
    mem_ops: int = 0
    ctrl_ops: int = 0
    threads: int = 0

    @classmethod
    def from_context(
        cls,
        context: ArithmeticContext,
        name: str = "kernel",
        int_ops: int = 0,
        mem_ops: int = 0,
        ctrl_ops: int = 0,
        threads: int = 0,
    ) -> "KernelCounters":
        """Snapshot a context's counters together with kernel-level counts."""
        return cls(
            name=name,
            arith=dict(context.counts),
            int_ops=int_ops,
            mem_ops=mem_ops,
            ctrl_ops=ctrl_ops,
            threads=threads,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def op_counts(self) -> dict:
        """Scalar arithmetic operations per op name (precise + imprecise)."""
        totals: dict = {}
        for (op, _), n in self.arith.items():
            totals[op] = totals.get(op, 0) + n
        return totals

    def op_count(self, op: str) -> int:
        return self.op_counts().get(op, 0)

    def precise_count(self, op: str) -> int:
        """Scalar ops of ``op`` pinned to the precise datapath."""
        return self.arith.get((op, "precise"), 0)

    def imprecise_count(self, op: str) -> int:
        return self.arith.get((op, "imprecise"), 0)

    def class_counts(self) -> dict:
        """Scalar operation counts per :class:`OpClass`."""
        counts = {cls: 0 for cls in OpClass}
        for op, n in self.op_counts().items():
            counts[OpClass[OP_UNIT_CLASS[op]]] += n
        counts[OpClass.ALU] += self.int_ops
        counts[OpClass.MEM] += self.mem_ops
        counts[OpClass.CTRL] += self.ctrl_ops
        return counts

    def total_scalar_ops(self) -> int:
        return sum(self.class_counts().values())

    def warp_instruction_counts(self, warp_size: int = 32) -> dict:
        """Warp-level instruction counts (scalar counts / warp width)."""
        return {
            cls: max(1, n // warp_size) if n else 0
            for cls, n in self.class_counts().items()
        }

    def arithmetic_fraction(self) -> float:
        """Share of scalar ops executing on the FPU or SFU."""
        counts = self.class_counts()
        total = sum(counts.values())
        if total == 0:
            return 0.0
        return (counts[OpClass.FPU] + counts[OpClass.SFU]) / total

    def merged_with(self, other: "KernelCounters") -> "KernelCounters":
        """Combine two kernel executions (e.g. multi-kernel applications)."""
        arith = dict(self.arith)
        for key, n in other.arith.items():
            arith[key] = arith.get(key, 0) + n
        return KernelCounters(
            name=f"{self.name}+{other.name}",
            arith=arith,
            int_ops=self.int_ops + other.int_ops,
            mem_ops=self.mem_ops + other.mem_ops,
            ctrl_ops=self.ctrl_ops + other.ctrl_ops,
            threads=max(self.threads, other.threads),
        )
