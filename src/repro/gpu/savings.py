"""System-level power savings estimation — the Figure-12 algorithm.

For every arithmetic op the kernel executed, the per-access energy of the
IHW and the DWIP implementation is accumulated over the pipelined execution
time (a continuously operating pipeline with no stalls, per Chapter 5.1),
yielding average FPU and SFU power in both modes.  The percentage power
improvements are then weighted by the FPU/SFU shares of total GPU power
from the GPUWattch-style model:

    sys_pwr_impr = fpu_share * avg_fpu_pwr_impr + sfu_share * avg_sfu_pwr_impr

Operations the application pinned to the precise datapath (``precise=True``
in the arithmetic context — e.g. CP's coordinate computations) execute on
the DWIP unit in both modes and therefore dilute the improvement, exactly
as in the paper's RayTracing rows of Table 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import IHWConfig, OP_UNIT_CLASS
from repro.hardware import HardwareLibrary

from .counters import KernelCounters

__all__ = ["SavingsReport", "estimate_system_savings", "pipeline_latency_ns"]


@dataclass(frozen=True)
class SavingsReport:
    """Output of the Figure-12 estimation."""

    name: str
    fpu_improvement: float  # fractional average-power improvement of the FPU
    sfu_improvement: float
    arithmetic_savings: float  # Table-5 "Arith. Power Savings"
    system_savings: float  # Table-5 "Holistic Power Savings"
    fpu_share: float
    sfu_share: float

    def format_row(self) -> str:
        return (
            f"{self.name:32s} holistic {self.system_savings:7.2%}   "
            f"arith {self.arithmetic_savings:7.2%}   "
            f"(FPU {self.fpu_improvement:.1%} x {self.fpu_share:.1%}, "
            f"SFU {self.sfu_improvement:.1%} x {self.sfu_share:.1%})"
        )


def pipeline_latency_ns(accesses: int, unit_latency_ns: float, clock_ghz: float) -> float:
    """Pipelined execution time of ``accesses`` back-to-back operations.

    Figure 12: ``[acc - 1 + ceil(lat * f)] / f`` — the pipeline fills once
    and then retires one operation per cycle.
    """
    if accesses <= 0:
        return 0.0
    cycles = accesses - 1 + math.ceil(unit_latency_ns * clock_ghz)
    return cycles / clock_ghz


def _accumulate(counters: KernelCounters, config: IHWConfig,
                library: HardwareLibrary, clock_ghz: float) -> dict:
    """Per-class (FPU/SFU) energy and latency totals for both modes."""
    acc = {
        cls: {"ihw_eng": 0.0, "dw_eng": 0.0, "ihw_lat": 0.0, "dw_lat": 0.0}
        for cls in ("FPU", "SFU")
    }
    for op, total in counters.op_counts().items():
        if total == 0:
            continue
        cls = OP_UNIT_CLASS[op]
        dw = library.dwip(op)
        precise = counters.precise_count(op)
        imprecise = total - precise
        ihw = library.metrics_for(op, config)

        # DWIP mode runs everything on the precise unit.
        dw_lat = pipeline_latency_ns(total, dw.latency_ns, clock_ghz)
        acc[cls]["dw_eng"] += dw.power_mw * dw_lat
        acc[cls]["dw_lat"] += dw_lat

        # IHW mode: pinned-precise ops stay on the DWIP unit.
        i_lat = pipeline_latency_ns(imprecise, ihw.latency_ns, clock_ghz)
        p_lat = pipeline_latency_ns(precise, dw.latency_ns, clock_ghz)
        acc[cls]["ihw_eng"] += ihw.power_mw * i_lat + dw.power_mw * p_lat
        acc[cls]["ihw_lat"] += i_lat + p_lat
    return acc


def estimate_system_savings(
    counters: KernelCounters,
    config: IHWConfig,
    fpu_share: float,
    sfu_share: float,
    library: HardwareLibrary | None = None,
    clock_ghz: float = 0.7,
    name: str | None = None,
) -> SavingsReport:
    """Run the Figure-12 algorithm for one kernel and configuration.

    Parameters
    ----------
    counters:
        Kernel access counts (from the instrumented arithmetic context).
    config:
        The IHW configuration whose savings are being estimated.
    fpu_share, sfu_share:
        Fractions of total GPU power drawn by the FPU/SFU, from
        :class:`~repro.gpu.power.GPUPowerModel` (or the paper's Figure 2).
    library:
        Hardware metrics source; defaults to the paper-calibrated library.
    clock_ghz:
        Execution pipeline clock (700 MHz, as in GPUWattch).
    """
    if not 0 <= fpu_share <= 1 or not 0 <= sfu_share <= 1 or fpu_share + sfu_share > 1:
        raise ValueError(
            f"shares must be fractions summing to <= 1, got {fpu_share}, {sfu_share}"
        )
    if library is None:
        library = HardwareLibrary.paper_45nm()

    acc = _accumulate(counters, config, library, clock_ghz)

    improvements = {}
    for cls in ("FPU", "SFU"):
        a = acc[cls]
        if a["dw_lat"] == 0:
            improvements[cls] = 0.0
            continue
        dw_pwr = a["dw_eng"] / a["dw_lat"]
        ihw_pwr = a["ihw_eng"] / a["ihw_lat"] if a["ihw_lat"] else dw_pwr
        improvements[cls] = abs(dw_pwr - ihw_pwr) / dw_pwr if dw_pwr else 0.0

    total_dw_eng = acc["FPU"]["dw_eng"] + acc["SFU"]["dw_eng"]
    total_ihw_eng = acc["FPU"]["ihw_eng"] + acc["SFU"]["ihw_eng"]
    total_dw_lat = acc["FPU"]["dw_lat"] + acc["SFU"]["dw_lat"]
    total_ihw_lat = acc["FPU"]["ihw_lat"] + acc["SFU"]["ihw_lat"]
    if total_dw_lat > 0 and total_ihw_lat > 0:
        arith = 1.0 - (total_ihw_eng / total_ihw_lat) / (total_dw_eng / total_dw_lat)
    else:
        arith = 0.0

    system = fpu_share * improvements["FPU"] + sfu_share * improvements["SFU"]
    return SavingsReport(
        name=name or counters.name,
        fpu_improvement=improvements["FPU"],
        sfu_improvement=improvements["SFU"],
        arithmetic_savings=arith,
        system_savings=system,
        fpu_share=fpu_share,
        sfu_share=sfu_share,
    )
