"""Component-level GPU power model — the GPUWattch substitute.

GPUWattch computes per-component power from GPGPU-Sim performance counters
using per-access energies plus static power.  This model does the same with
nine components; the per-access energies are calibrated once so that
compute-intensive kernels land in the paper's Figure-2 bands (FPU + SFU
around 27-38% of total GPU power, integer ALU under ~10%) and are then held
fixed across every experiment.

The FPU/SFU *shares* this model produces are the coefficients the Figure-12
system-savings algorithm multiplies by the per-unit power improvements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .counters import KernelCounters
from .isa import FERMI_GTX480, GPUConfig, OpClass
from .simulator import KernelTiming, simulate_kernel

__all__ = ["EnergyParams", "PowerBreakdown", "GPUPowerModel", "COMPONENTS"]

COMPONENTS = (
    "FPU",
    "SFU",
    "ALU",
    "RF+Fetch",
    "L1+Shared",
    "L2",
    "NoC",
    "DRAM",
    "Static",
)


@dataclass(frozen=True)
class EnergyParams:
    """Per-scalar-access energies (pJ) and static power (W).

    Defaults are 45 nm estimates calibrated to the Figure-2 breakdown; see
    the module docstring.  Memory energy is split across the hierarchy for
    the breakdown's cache/NoC/DRAM rows.
    """

    fpu_pj: float = 55.0
    sfu_pj: float = 180.0
    alu_pj: float = 7.0
    rf_fetch_pj: float = 10.0  # per scalar instruction of any class
    l1_pj: float = 30.0  # per scalar memory access
    l2_pj: float = 20.0  # per scalar access reaching L2
    noc_pj: float = 15.0
    dram_pj: float = 70.0  # per scalar access reaching DRAM
    dram_fraction: float = 0.15  # share of accesses missing the on-chip caches
    static_w: float = 18.0


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component watts for one kernel execution."""

    watts: dict
    timing: KernelTiming
    name: str = "kernel"

    @property
    def total_w(self) -> float:
        return sum(self.watts.values())

    def share(self, component: str) -> float:
        """Fraction of total power drawn by ``component``."""
        if component not in self.watts:
            raise ValueError(f"unknown component {component!r}")
        return self.watts[component] / self.total_w

    @property
    def fpu_share(self) -> float:
        return self.share("FPU")

    @property
    def sfu_share(self) -> float:
        return self.share("SFU")

    @property
    def arithmetic_share(self) -> float:
        """The Figure-2 quantity: FPU + SFU share of total GPU power."""
        return self.fpu_share + self.sfu_share

    def format_rows(self) -> str:
        lines = [f"{self.name}: total {self.total_w:.1f} W"]
        for comp in COMPONENTS:
            w = self.watts[comp]
            lines.append(
                f"  {comp:10s} {w:7.2f} W  {w / self.total_w:6.1%} "
                f"{'#' * int(round(w / self.total_w * 50))}"
            )
        return "\n".join(lines)


@dataclass
class GPUPowerModel:
    """GPUWattch-style counter-driven power estimation."""

    config: GPUConfig = FERMI_GTX480
    params: EnergyParams = field(default_factory=EnergyParams)

    def breakdown(
        self, counters: KernelCounters, timing: KernelTiming | None = None
    ) -> PowerBreakdown:
        """Per-component power for a kernel given its counters (and timing).

        When ``timing`` is omitted the kernel is first run through the
        timing simulator.
        """
        if timing is None:
            timing = simulate_kernel(counters, self.config)
        t = timing.time_s
        if t <= 0:
            raise ValueError("kernel timing must be positive")

        cls = counters.class_counts()
        total_ops = sum(cls.values())
        p = self.params
        pj = 1e-12
        watts = {
            "FPU": cls[OpClass.FPU] * p.fpu_pj * pj / t,
            "SFU": cls[OpClass.SFU] * p.sfu_pj * pj / t,
            "ALU": cls[OpClass.ALU] * p.alu_pj * pj / t,
            "RF+Fetch": total_ops * p.rf_fetch_pj * pj / t,
            "L1+Shared": cls[OpClass.MEM] * p.l1_pj * pj / t,
            "L2": cls[OpClass.MEM] * p.dram_fraction * 2 * p.l2_pj * pj / t,
            "NoC": cls[OpClass.MEM] * p.dram_fraction * 2 * p.noc_pj * pj / t,
            "DRAM": cls[OpClass.MEM] * p.dram_fraction * p.dram_pj * pj / t,
            "Static": p.static_w,
        }
        return PowerBreakdown(watts=watts, timing=timing, name=counters.name)
