"""Instruction taxonomy and machine configuration of the simulated GPU.

The timing and power substrate models a Fermi-class GPU (the GTX480 that
GPGPU-Sim + GPUWattch model in the paper): 15 streaming multiprocessors, 32
warp lanes, 4 SFU lanes per SM, and a 700 MHz execution-pipeline clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["OpClass", "GPUConfig", "FERMI_GTX480", "OP_CLASS_LATENCY"]


class OpClass(Enum):
    """Executing unit class of a warp instruction."""

    FPU = "FPU"  # single precision add/sub/mul/fma
    SFU = "SFU"  # rcp/rsqrt/sqrt/log2/div (and transcendentals)
    ALU = "ALU"  # integer / logic / address arithmetic
    MEM = "MEM"  # global/shared loads and stores
    CTRL = "CTRL"  # branches, sync


#: Execution latency in cycles per warp instruction (Fermi-like).
OP_CLASS_LATENCY = {
    OpClass.FPU: 4,
    OpClass.SFU: 8,
    OpClass.ALU: 4,
    OpClass.MEM: 400,  # average global-memory round trip
    OpClass.CTRL: 2,
}


@dataclass(frozen=True)
class GPUConfig:
    """Static machine description for the timing and power models."""

    name: str = "fermi"
    num_sms: int = 15
    warp_size: int = 32
    max_resident_warps: int = 48
    fpu_lanes: int = 32  # FPU instructions issue one warp per cycle
    sfu_lanes: int = 4  # SFU instructions occupy warp_size/sfu_lanes cycles
    lsu_lanes: int = 16
    issue_width: int = 2
    clock_ghz: float = 0.7
    mem_latency: int = 400
    mem_pipeline_depth: int = 192  # outstanding memory requests per SM
    mem_dependence_distance: int = 4  # every Nth load stalls for the round trip

    @property
    def sfu_occupancy_cycles(self) -> int:
        """Cycles an SFU warp instruction occupies the SFU pipeline."""
        return max(1, self.warp_size // self.sfu_lanes)

    @property
    def lsu_occupancy_cycles(self) -> int:
        return max(1, self.warp_size // self.lsu_lanes)

    def peak_gflops(self, flops_per_op: int = 2) -> float:
        """Peak single precision GFLOP/s (FMA counts two flops)."""
        return self.num_sms * self.fpu_lanes * self.clock_ghz * flops_per_op


#: The GTX480-like default the paper's Figure-2 numbers come from.
FERMI_GTX480 = GPUConfig()
