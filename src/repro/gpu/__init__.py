"""GPU timing and power substrate (GPGPU-Sim / GPUWattch substitutes)."""

from .counters import KernelCounters
from .dvfs import CombinedReport, DVFSPoint, combined_savings, dvfs_power_scale
from .gating import GatingPolicy, execution_unit_duty, gated_breakdown
from .isa import FERMI_GTX480, GPUConfig, OP_CLASS_LATENCY, OpClass
from .power import COMPONENTS, EnergyParams, GPUPowerModel, PowerBreakdown
from .savings import SavingsReport, estimate_system_savings, pipeline_latency_ns
from .simulator import (
    KernelTiming,
    StallProfile,
    build_warp_stream,
    profile_kernel_stalls,
    simulate_kernel,
    simulate_sm_window,
)

__all__ = [
    "COMPONENTS",
    "EnergyParams",
    "FERMI_GTX480",
    "GPUConfig",
    "GPUPowerModel",
    "CombinedReport",
    "DVFSPoint",
    "KernelCounters",
    "combined_savings",
    "dvfs_power_scale",
    "GatingPolicy",
    "execution_unit_duty",
    "gated_breakdown",
    "KernelTiming",
    "OP_CLASS_LATENCY",
    "OpClass",
    "PowerBreakdown",
    "SavingsReport",
    "build_warp_stream",
    "estimate_system_savings",
    "pipeline_latency_ns",
    "StallProfile",
    "profile_kernel_stalls",
    "simulate_kernel",
    "simulate_sm_window",
]
