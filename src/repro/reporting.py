"""Markdown report generation: the full evaluation in one document.

``generate_report()`` runs the headline experiments at a configurable scale
and renders a paper-vs-measured markdown document (the automated companion
to the hand-annotated ``EXPERIMENTS.md``).  Exposed on the CLI as
``python -m repro report [--fast]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_runner_stats", "generate_report", "report_sections"]


def _section_units(scale: int) -> list:
    from repro.erroranalysis import characterize_multiplier_config, characterize_unit
    from repro.hardware import TABLE1_MAX_ERRORS

    paper = {
        "ircp": "5.88%", "irsqrt": "11.11%", "isqrt": "11.11%",
        "ifpdiv": "5.88%", "ifpmul": "25%",
    }
    lines = [
        "## Imprecise units (Table 1)",
        "",
        "| unit | paper eps_max | measured |",
        "|---|---|---|",
    ]
    for name, ref in paper.items():
        pmf = characterize_unit(name, scale)
        lines.append(f"| {name} | {ref} | {pmf.stats.eps_max:.2%} |")
    for cfg, ref in (("fp_tr0", "2.04%"), ("lp_tr0", "11.11%"), ("lp_tr19", "~18%")):
        pmf = characterize_multiplier_config(cfg, scale)
        lines.append(f"| {cfg} | {ref} | {pmf.stats.eps_max:.2%} |")
    assert TABLE1_MAX_ERRORS  # keep the reference data imported/linked
    return lines


def _section_hardware() -> list:
    from repro.core import MultiplierConfig
    from repro.hardware import (
        HardwareLibrary,
        bt_fp_multiplier,
        dw_fp_multiplier,
        mitchell_fp_multiplier,
    )

    dw32 = dw_fp_multiplier(32).metrics().power_mw
    lp19 = mitchell_fp_multiplier(32, MultiplierConfig("log", 19)).metrics().power_mw
    bt21 = bt_fp_multiplier(32, 21).metrics().power_mw
    dw64 = dw_fp_multiplier(64).metrics().power_mw
    lp48 = mitchell_fp_multiplier(64, MultiplierConfig("log", 48)).metrics().power_mw
    paper_mul = HardwareLibrary.paper_45nm().power_reduction("mul")
    return [
        "## Hardware power (Figure 14 / Tables 2-3)",
        "",
        "| quantity | paper | measured |",
        "|---|---|---|",
        f"| Table-1 multiplier reduction | 25x | {paper_mul:.1f}x (library), "
        f"{dw32 / mitchell_fp_multiplier(32).metrics().power_mw:.1f}x (model fp_tr0) |",
        f"| lp_tr19 (fp32) reduction | >25x | {dw32 / lp19:.1f}x |",
        f"| bt_21 (fp32) reduction | ~2.3x | {dw32 / bt21:.1f}x |",
        f"| lp_tr48 (fp64) reduction | 49x | {dw64 / lp48:.1f}x |",
    ]


def _section_applications(scale: int) -> list:
    from repro.apps import hotspot, raytrace, srad
    from repro.core import IHWConfig
    from repro.framework import PowerQualityFramework, RAY_CONFIGS
    from repro.quality import mae, ssim

    rows = ["## Applications (Table 5 / Figures 15-18)", "",
            "| experiment | paper | measured |", "|---|---|---|"]

    fw = PowerQualityFramework(
        run_app=lambda cfg: hotspot.run(cfg, scale, scale, 30), quality_metric=mae
    )
    ev = fw.evaluate(IHWConfig.all_imprecise())
    rows.append(
        f"| HotSpot savings (holistic/arith) | 32.06% / 91.54% | "
        f"{ev.savings.system_savings:.2%} / {ev.savings.arithmetic_savings:.2%} |"
    )
    rows.append(f"| HotSpot MAE | 0.05 K | {ev.quality:.3f} K |")

    fw = PowerQualityFramework(
        run_app=lambda cfg: srad.run(cfg, scale, scale, 30), quality_metric=mae
    )
    ev = fw.evaluate(IHWConfig.all_imprecise())
    rows.append(
        f"| SRAD savings | 24.23% / 90.68% | "
        f"{ev.savings.system_savings:.2%} / {ev.savings.arithmetic_savings:.2%} |"
    )

    fw = PowerQualityFramework(
        run_app=lambda cfg: raytrace.run(cfg, scale, scale),
        quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
    )
    paper_ssim = {"ray_rcp_add_sqrt": 0.95, "ray_rcp_add_sqrt_rsqrt": 0.83,
                  "ray_rcp_add_sqrt_fpmul_fp": 0.85}
    for name, cfg in RAY_CONFIGS.items():
        ev = fw.evaluate(cfg)
        rows.append(
            f"| RayTracing {name.removeprefix('ray_')} SSIM | "
            f"{paper_ssim[name]} | {ev.quality:.3f} |"
        )
    return rows


def _section_verification(scale: int) -> list:
    from repro.core import MultiplierConfig
    from repro.hdl import cosimulate

    rows = ["## Functional verification (Figures 10-11)", "",
            "| datapath | vectors | max ULP |", "|---|---|---|"]
    for unit, kwargs in (
        ("table1_mul", {}),
        ("threshold_add", {"threshold": 8}),
        ("mitchell_mul", {"config": MultiplierConfig("full", 0)}),
    ):
        result = cosimulate(unit, 32, n_random=scale, **kwargs)
        rows.append(f"| {result.unit} | {result.vectors} | {result.max_ulps} |")
    return rows


def format_runner_stats(stats) -> list:
    """Markdown bullet rendering of a :class:`~repro.runtime.RunnerStats`."""
    lines = [
        f"- tasks: {stats.n_tasks} in {stats.wall_seconds:.3f}s wall "
        f"({stats.max_workers} worker{'s' if stats.max_workers != 1 else ''}, "
        f"chunk {stats.chunk_size})",
        f"- cache: {stats.hit_rate:.0%} hit rate "
        f"({stats.cache_hits} hit / {stats.cache_misses} miss)",
        f"- compute: {stats.compute_seconds:.3f}s summed, "
        f"speedup vs sequential {stats.speedup_vs_sequential:.2f}x",
    ]
    reliability = stats.reliability_summary()
    if reliability:
        lines.append(f"- reliability: {reliability}")
    for note in getattr(stats, "notes", []):
        lines.append(f"  - {note}")
    return lines


def _section_runtime(scale: int) -> list:
    import tempfile

    from repro.core import IHWConfig
    from repro.runtime import ExperimentRunner, ExperimentSpec, ResultCache

    spec = ExperimentSpec.create(
        "hotspot", metric="mae", rows=scale, cols=scale, iterations=10
    )
    configs = {
        "precise": IHWConfig.precise(),
        "add": IHWConfig.units("add"),
        "mul": IHWConfig.units("mul"),
        "rcp": IHWConfig.units("rcp"),
        "th4": IHWConfig.all_imprecise(adder_threshold=4),
        "all": IHWConfig.all_imprecise(),
    }
    lines = ["## Experiment runtime (parallel sweep + result cache)", ""]
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as tmp:
        runner = ExperimentRunner(max_workers=1, cache=ResultCache(tmp))
        runner.sweep(spec, configs)
        cold = runner.stats
        runner.sweep(spec, configs)
        warm = runner.stats
        lines.append(f"Cold sweep of {cold.n_tasks} HotSpot configurations:")
        lines.extend(format_runner_stats(cold))
        lines.append("")
        lines.append("Warm rerun (content-addressed cache):")
        lines.extend(format_runner_stats(warm))
        if cold.wall_seconds > 0 and warm.wall_seconds > 0:
            lines.append(
                f"- warm/cold wall ratio: "
                f"{cold.wall_seconds / warm.wall_seconds:.1f}x faster"
            )
    return lines


def _section_telemetry(scale: int) -> list:
    """Trace one small sweep and summarize what the telemetry observed."""
    from repro import telemetry
    from repro.core import IHWConfig
    from repro.runtime import ExperimentRunner, ExperimentSpec

    spec = ExperimentSpec.create(
        "hotspot", metric="mae", rows=scale, cols=scale, iterations=10
    )
    configs = {
        "precise": IHWConfig.precise(),
        "add": IHWConfig.units("add"),
        "all": IHWConfig.all_imprecise(),
    }
    with telemetry.override("trace"):
        telemetry.reset()
        runner = ExperimentRunner(max_workers=1, cache=None)
        runner.sweep(spec, configs)
        spans = telemetry.get_tracer().drain()
        snapshot = telemetry.get_registry().drain()

    drift = [
        doc for doc in snapshot
        if doc["name"] == "repro_drift_observed_total"
    ]
    lines = [
        "## Telemetry (spans, metrics, numeric drift)",
        "",
        f"Traced sweep of {len(configs)} HotSpot configurations "
        f"({len(spans)} spans, {len(snapshot)} metric series):",
        "",
        "```",
        telemetry.render_span_tree(spans),
        "```",
        "",
        "Sampled per-op drift observations (imprecise kernels only):",
    ]
    for doc in sorted(drift, key=lambda d: d["labels"].get("op", "")):
        mean = _drift_mean(snapshot, doc["labels"])
        lines.append(
            f"- `{doc['labels'].get('op', '?')}`: {int(doc['value'])} elements, "
            f"mean |ERR%| {mean:.3g}"
        )
    if not drift:
        lines.append("- (no imprecise elements sampled at this scale)")
    return lines


def _drift_mean(snapshot, labels) -> float:
    """Mean |ERR%| of the drift series matching ``labels``."""
    def value(name):
        for doc in snapshot:
            if doc["name"] == name and doc["labels"] == labels:
                return doc["value"]
        return 0.0

    observed = value("repro_drift_observed_total")
    return value("repro_drift_err_pct_sum") / observed if observed else 0.0


def report_sections(fast: bool = False) -> list:
    """The report as a list of markdown-line lists (one per section)."""
    char_scale = 1 << 13 if fast else 1 << 16
    app_scale = 48 if fast else 96
    cosim_scale = 300 if fast else 2000
    return [
        _section_units(char_scale),
        _section_hardware(),
        _section_applications(app_scale),
        _section_verification(cosim_scale),
        _section_runtime(app_scale),
        _section_telemetry(32 if fast else app_scale),
    ]


def generate_report(fast: bool = False) -> str:
    """Render the full markdown report."""
    np.seterr(all="ignore")
    header = [
        "# Reproduction report — Low Power GPGPU Computation with Imprecise Hardware",
        "",
        f"Scale: {'fast (smoke)' if fast else 'default'}.  Generated by "
        "`python -m repro report`; see EXPERIMENTS.md for the full annotated "
        "comparison and benchmarks/ for the asserted versions.",
        "",
    ]
    body = []
    for section in report_sections(fast=fast):
        body.extend(section)
        body.append("")
    return "\n".join(header + body)
