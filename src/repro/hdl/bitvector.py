"""Bit-true scalar primitives for the HDL-level datapath models.

The paper verifies its C++ functional models against VHDL hardware models
through simulation (Figure 10: "The correctness of the functional models
was verified against hardware models written in VHDL").  The
:mod:`repro.hdl` package reproduces that flow: every imprecise unit has a
second, independent implementation written the way the RTL computes — pure
integer operations on explicit bit fields, one operand at a time — and a
co-simulation harness checks the two against each other.

This module provides the width-checked integer helpers those models use.
"""

from __future__ import annotations

__all__ = [
    "check_width",
    "bits_of",
    "leading_one_position",
    "shift_right_truncate",
    "mask",
    "FieldsF32",
    "FieldsF64",
    "unpack_float",
    "pack_float",
]

import struct
from dataclasses import dataclass


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def check_width(value: int, width: int, name: str = "value") -> int:
    """Assert ``value`` fits in ``width`` unsigned bits and return it."""
    if not 0 <= value <= mask(width):
        raise ValueError(f"{name}={value} does not fit in {width} bits")
    return value


def bits_of(value: int) -> int:
    """Number of significant bits (0 for 0)."""
    return value.bit_length()


def leading_one_position(value: int, width: int) -> int:
    """Index of the MSB set bit (the LOD output); -1 for zero input."""
    check_width(value, width)
    return value.bit_length() - 1


def shift_right_truncate(value: int, amount: int) -> int:
    """Logical right shift (bits fall off the end — magnitude truncation)."""
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    return value >> amount


@dataclass(frozen=True)
class _FloatFields:
    """IEEE-754 field layout used by the scalar pack/unpack helpers."""

    exponent_bits: int
    mantissa_bits: int
    struct_code: str

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def exponent_mask(self) -> int:
        return mask(self.exponent_bits)

    @property
    def mantissa_mask(self) -> int:
        return mask(self.mantissa_bits)

    @property
    def total_bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits


FieldsF32 = _FloatFields(8, 23, "f")
FieldsF64 = _FloatFields(11, 52, "d")


def unpack_float(value: float, fields: _FloatFields) -> tuple:
    """``(sign, biased_exponent, fraction)`` integer fields of ``value``."""
    code = "<I" if fields is FieldsF32 else "<Q"
    raw = struct.unpack(code, struct.pack("<" + fields.struct_code, value))[0]
    sign = raw >> (fields.total_bits - 1)
    exponent = (raw >> fields.mantissa_bits) & fields.exponent_mask
    fraction = raw & fields.mantissa_mask
    return sign, exponent, fraction


def pack_float(sign: int, exponent: int, fraction: int, fields: _FloatFields) -> float:
    """Assemble a float from integer fields (inverse of :func:`unpack_float`)."""
    check_width(sign, 1, "sign")
    check_width(exponent, fields.exponent_bits, "exponent")
    check_width(fraction, fields.mantissa_bits, "fraction")
    raw = (sign << (fields.total_bits - 1)) | (exponent << fields.mantissa_bits) | fraction
    code = "<I" if fields is FieldsF32 else "<Q"
    return struct.unpack("<" + fields.struct_code, struct.pack(code, raw))[0]
