"""HDL-level bit-true datapath models and the co-simulation harness.

Reproduces the paper's functional-verification step (Figure 10/11): every
imprecise datapath has an independent scalar integer implementation here,
cross-checked against the vectorized behavioral models in
:mod:`repro.core`.
"""

from .bitvector import (
    FieldsF32,
    FieldsF64,
    bits_of,
    check_width,
    leading_one_position,
    mask,
    pack_float,
    shift_right_truncate,
    unpack_float,
)
from .datapaths import (
    fields_for,
    rtl_mitchell_multiply,
    rtl_table1_multiply,
    rtl_threshold_add,
)
from .sfu_datapaths import (
    COEFF_FRACTION_BITS,
    fixed_point_coefficient,
    rtl_linear_reciprocal,
    rtl_linear_rsqrt,
)
from .verify import Mismatch, VerificationResult, corner_values, cosimulate

__all__ = [
    "FieldsF32",
    "FieldsF64",
    "Mismatch",
    "VerificationResult",
    "bits_of",
    "check_width",
    "corner_values",
    "cosimulate",
    "fields_for",
    "leading_one_position",
    "mask",
    "pack_float",
    "COEFF_FRACTION_BITS",
    "fixed_point_coefficient",
    "rtl_linear_reciprocal",
    "rtl_linear_rsqrt",
    "rtl_mitchell_multiply",
    "rtl_table1_multiply",
    "rtl_threshold_add",
    "shift_right_truncate",
    "unpack_float",
]
