"""Co-simulation harness: behavioral models vs HDL-level datapaths.

Reproduces the Figure-10/11 verification step ("the correctness of the
functional models was verified against hardware models ... through
simulation"): drive both implementations with the same vectors — corner
cases plus a low-discrepancy random sweep — and report every mismatch in
ULPs of the result format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import (
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
)
from repro.erroranalysis import mantissa_inputs

from .datapaths import rtl_mitchell_multiply, rtl_table1_multiply, rtl_threshold_add
from .sfu_datapaths import rtl_linear_reciprocal, rtl_linear_rsqrt

__all__ = ["Mismatch", "VerificationResult", "corner_values", "cosimulate"]


def corner_values(dtype=np.float32) -> np.ndarray:
    """The corner vectors every co-simulation includes."""
    finfo = np.finfo(dtype)
    values = [
        0.0, -0.0, 1.0, -1.0, 2.0, 0.5, 1.5, 1.75, 1.9999999,
        float(finfo.tiny), -float(finfo.tiny), float(finfo.max), -float(finfo.max),
        float(finfo.tiny) * 0.5,  # subnormal
        np.inf, -np.inf, np.nan,
        3.0, -3.0, 1.0 / 3.0, 255.0, 256.0, 257.0,
    ]
    return np.array(values, dtype=dtype)


def _ulp_distance(x: float, y: float, dtype) -> int:
    """Distance in representable steps; 0 for bit-identical or both-NaN."""
    a = np.array(x, dtype=dtype)
    b = np.array(y, dtype=dtype)
    if np.isnan(a) and np.isnan(b):
        return 0
    uint = np.uint32 if dtype == np.float32 else np.uint64
    ia = int(a.view(uint))
    ib = int(b.view(uint))
    width = 32 if dtype == np.float32 else 64
    sign_bit = 1 << (width - 1)
    # Map to a monotone integer line (two's-complement style for floats).
    ia = ia - sign_bit if ia >= sign_bit else ia + sign_bit
    ib = ib - sign_bit if ib >= sign_bit else ib + sign_bit
    return abs(ia - ib)


@dataclass(frozen=True)
class Mismatch:
    """One disagreeing vector."""

    operands: tuple
    behavioral: float
    rtl: float
    ulps: int


@dataclass
class VerificationResult:
    """Outcome of one co-simulation run."""

    unit: str
    vectors: int
    mismatches: list = field(default_factory=list)
    max_ulps: int = 0

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def within(self, ulp_tolerance: int) -> bool:
        return self.max_ulps <= ulp_tolerance

    def summary(self) -> str:
        status = "PASS" if self.passed else f"{len(self.mismatches)} mismatches"
        return f"{self.unit}: {self.vectors} vectors, max {self.max_ulps} ulp — {status}"


def _unit_pair(unit: str, bits: int, threshold: int, config: MultiplierConfig | None):
    dtype = np.float32 if bits == 32 else np.float64
    if unit == "table1_mul":
        return (
            lambda a, b: float(imprecise_multiply(dtype(a), dtype(b), dtype=dtype)),
            lambda a, b: rtl_table1_multiply(a, b, bits),
        )
    if unit == "threshold_add":
        return (
            lambda a, b: float(
                imprecise_add(dtype(a), dtype(b), threshold=threshold, dtype=dtype)
            ),
            lambda a, b: rtl_threshold_add(a, b, threshold=threshold, bits=bits),
        )
    if unit == "mitchell_mul":
        cfg = config if config is not None else MultiplierConfig()
        return (
            lambda a, b: float(configurable_multiply(dtype(a), dtype(b), cfg, dtype=dtype)),
            lambda a, b: rtl_mitchell_multiply(
                a, b, path=cfg.path, truncation=cfg.truncation, bits=bits
            ),
        )
    if unit == "linear_rcp":
        # Unary unit: the second operand is ignored.
        return (
            lambda a, b: float(imprecise_reciprocal(dtype(a), dtype=dtype)),
            lambda a, b: rtl_linear_reciprocal(a, bits=bits),
        )
    if unit == "linear_rsqrt":
        return (
            lambda a, b: float(imprecise_rsqrt(dtype(a), dtype=dtype)),
            lambda a, b: rtl_linear_rsqrt(a, bits=bits),
        )
    raise ValueError(
        f"unknown unit {unit!r}; expected table1_mul, threshold_add, "
        "mitchell_mul, linear_rcp, or linear_rsqrt"
    )


def cosimulate(
    unit: str,
    bits: int = 32,
    n_random: int = 2000,
    threshold: int = 8,
    config: MultiplierConfig | None = None,
    seed: int = 0,
    max_recorded: int = 20,
) -> VerificationResult:
    """Run the co-simulation for one unit and return the mismatch report."""
    dtype = np.float32 if bits == 32 else np.float64
    behavioral, rtl = _unit_pair(unit, bits, threshold, config)

    corners = corner_values(dtype)
    pairs = [(float(a), float(b)) for a in corners for b in corners]
    if n_random > 0:
        ra, rb = mantissa_inputs(n_random, 2, exponent_range=(-6, 6), seed=seed,
                                 dtype=dtype)
        signs = np.where(np.arange(n_random) % 2 == 0, 1.0, -1.0)
        pairs += list(zip((ra * signs).tolist(), rb.tolist()))

    label = f"{unit}[{bits}b" + (f",{config.name}" if config else "") + "]"
    result = VerificationResult(unit=label, vectors=len(pairs))
    for a, b in pairs:
        out_beh = behavioral(a, b)
        out_rtl = rtl(a, b)
        ulps = _ulp_distance(out_beh, out_rtl, dtype)
        if ulps:
            result.max_ulps = max(result.max_ulps, ulps)
            if len(result.mismatches) < max_recorded:
                result.mismatches.append(
                    Mismatch((a, b), out_beh, out_rtl, ulps)
                )
    return result
