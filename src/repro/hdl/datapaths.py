"""Scalar, bit-true HDL-level models of the imprecise datapaths.

Each function processes ONE operand pair the way the RTL would: unpack the
IEEE fields, run explicit integer datapath steps (shift, add, detect,
decode), repack.  No floating point appears anywhere inside a datapath.

These models are deliberately independent of :mod:`repro.core` (they share
nothing but the IEEE layout constants) so the co-simulation in
:mod:`repro.hdl.verify` is a genuine cross-check of two implementations,
mirroring the paper's C++-vs-VHDL verification step.

Supported: the Table-1 multiplier, the threshold adder, and the
accuracy-configurable Mitchell multiplier (both paths, any truncation) at
binary32 and binary64.
"""

from __future__ import annotations


from .bitvector import (
    FieldsF32,
    FieldsF64,
    leading_one_position,
    mask,
    pack_float,
    unpack_float,
)

__all__ = [
    "rtl_table1_multiply",
    "rtl_threshold_add",
    "rtl_mitchell_multiply",
    "fields_for",
]


def fields_for(bits: int):
    if bits == 32:
        return FieldsF32
    if bits == 64:
        return FieldsF64
    raise ValueError(f"bits must be 32 or 64, got {bits}")


def _is_nan(exponent: int, fraction: int, fields) -> bool:
    return exponent == fields.exponent_mask and fraction != 0


def _is_inf(exponent: int, fraction: int, fields) -> bool:
    return exponent == fields.exponent_mask and fraction == 0


def _is_zero_or_subnormal(exponent: int) -> bool:
    return exponent == 0


def _pack_result(sign: int, exponent: int, fraction: int, fields) -> float:
    """Pack with overflow-to-inf and underflow-flush handling."""
    if exponent >= fields.exponent_mask:
        return pack_float(sign, fields.exponent_mask, 0, fields)  # inf
    if exponent < 1:
        return pack_float(sign, 0, 0, fields)  # flush to signed zero
    return pack_float(sign, exponent, fraction, fields)


# ----------------------------------------------------------------------
# Table-1 multiplier (equations 1-6)
# ----------------------------------------------------------------------
def rtl_table1_multiply(a: float, b: float, bits: int = 32) -> float:
    """One Table-1 imprecise multiplication, bit for bit."""
    fields = fields_for(bits)
    sa, ea, fa = unpack_float(a, fields)
    sb, eb, fb = unpack_float(b, fields)
    sz = sa ^ sb

    a_nan = _is_nan(ea, fa, fields)
    b_nan = _is_nan(eb, fb, fields)
    a_inf = _is_inf(ea, fa, fields)
    b_inf = _is_inf(eb, fb, fields)
    a_zero = _is_zero_or_subnormal(ea)
    b_zero = _is_zero_or_subnormal(eb)

    if a_nan or b_nan or (a_inf and b_zero) or (b_inf and a_zero):
        return pack_float(0, fields.exponent_mask, 1, fields)  # qNaN
    if a_inf or b_inf:
        return pack_float(sz, fields.exponent_mask, 0, fields)
    if a_zero or b_zero:
        return pack_float(sz, 0, 0, fields)

    # Mantissa datapath: (p+1)-bit adder replaces the array multiplier.
    p = fields.mantissa_bits
    frac_sum = fa + fb
    carry = frac_sum >> p
    if carry:
        fz = (frac_sum & mask(p)) >> 1
    else:
        fz = frac_sum
    ez = ea + eb - fields.bias + carry
    return _pack_result(sz, ez, fz, fields)


# ----------------------------------------------------------------------
# Threshold adder (Chapter 3.1)
# ----------------------------------------------------------------------
def rtl_threshold_add(a: float, b: float, threshold: int = 8, bits: int = 32) -> float:
    """One imprecise threshold addition, bit for bit."""
    fields = fields_for(bits)
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    sa, ea, fa = unpack_float(a, fields)
    sb, eb, fb = unpack_float(b, fields)

    a_nan = _is_nan(ea, fa, fields)
    b_nan = _is_nan(eb, fb, fields)
    a_inf = _is_inf(ea, fa, fields)
    b_inf = _is_inf(eb, fb, fields)
    if a_nan or b_nan or (a_inf and b_inf and sa != sb):
        return pack_float(0, fields.exponent_mask, 1, fields)
    if a_inf:
        return pack_float(sa, fields.exponent_mask, 0, fields)
    if b_inf:
        return pack_float(sb, fields.exponent_mask, 0, fields)

    # Compare-and-swap so (ex, fx) is the larger magnitude.
    if (ea, fa) >= (eb, fb):
        sx, ex, fx = sa, ea, fa
        sy, ey, fy = sb, eb, fb
    else:
        sx, ex, fx = sb, eb, fb
        sy, ey, fy = sa, ea, fa

    p = fields.mantissa_bits
    guard = threshold
    implicit = 1 << p
    mant_x = ((implicit | fx) << guard) if ex != 0 else 0
    mant_y = ((implicit | fy) << guard) if ey != 0 else 0

    d = ex - ey
    if d > threshold or ey == 0:
        mant_y_aligned = 0
    else:
        mant_y_aligned = mant_y >> d
        keep_cut = p + guard - threshold
        if keep_cut > 0:
            mant_y_aligned &= ~mask(keep_cut)

    if sx != sy:
        total = mant_x - mant_y_aligned
    else:
        total = mant_x + mant_y_aligned
    sz = sx
    total = abs(total)

    if total == 0:
        return pack_float(0, 0, 0, fields)

    msb = total.bit_length() - 1
    norm_shift = msb - (p + guard)
    ez = ex + norm_shift
    if norm_shift >= 0:
        mant_z = total >> norm_shift
    else:
        mant_z = total << (-norm_shift)
    fz = (mant_z >> guard) & mask(p)
    return _pack_result(sz, ez, fz, fields)


# ----------------------------------------------------------------------
# Accuracy-configurable Mitchell multiplier (Figure 7)
# ----------------------------------------------------------------------
def _mitchell_int(m1: int, m2: int, width: int) -> int:
    """Integer Mitchell approximation of ``m1 * m2`` (both ``width`` bits).

    Returns the approximate product at scale ``2^(2*(width-1))`` relative
    to operands scaled by ``2^(width-1)`` — i.e. plain integer semantics.
    """
    if m1 == 0 or m2 == 0:
        return 0
    k1 = leading_one_position(m1, width + 1)
    k2 = leading_one_position(m2, width + 1)
    f1 = m1 - (1 << k1)
    f2 = m2 - (1 << k2)
    x_sum_scaled = (f1 << k2) + (f2 << k1)  # (x1 + x2) * 2^(k1+k2)
    unit = 1 << (k1 + k2)
    if x_sum_scaled >= unit:
        return x_sum_scaled << 1
    return unit + x_sum_scaled


def rtl_mitchell_multiply(
    a: float, b: float, path: str = "full", truncation: int = 0, bits: int = 32
) -> float:
    """One configurable-multiplier operation, bit for bit.

    The mantissa product is assembled entirely in integers at scale
    ``2^(2p)`` (p = mantissa bits), so the model is exact at any precision
    — it is the reference the float64 behavioral model is validated
    against.
    """
    if path not in ("log", "full"):
        raise ValueError(f"path must be 'log' or 'full', got {path}")
    fields = fields_for(bits)
    p = fields.mantissa_bits
    if not 0 <= truncation < p:
        raise ValueError(f"truncation out of range: {truncation}")

    sa, ea, fa = unpack_float(a, fields)
    sb, eb, fb = unpack_float(b, fields)
    sz = sa ^ sb

    a_nan = _is_nan(ea, fa, fields)
    b_nan = _is_nan(eb, fb, fields)
    a_inf = _is_inf(ea, fa, fields)
    b_inf = _is_inf(eb, fb, fields)
    a_zero = _is_zero_or_subnormal(ea)
    b_zero = _is_zero_or_subnormal(eb)
    if a_nan or b_nan or (a_inf and b_zero) or (b_inf and a_zero):
        return pack_float(0, fields.exponent_mask, 1, fields)
    if a_inf or b_inf:
        return pack_float(sz, fields.exponent_mask, 0, fields)
    if a_zero or b_zero:
        return pack_float(sz, 0, 0, fields)

    if truncation:
        cut = ~mask(truncation)
        fa &= cut
        fb &= cut

    implicit = 1 << p
    if path == "log":
        # MA over the whole mantissas (1.f form), product at scale 2^(2p).
        product = _mitchell_int(implicit | fa, implicit | fb, p + 1)
    else:
        # 1 + Ma + Mb at scale 2^(2p), plus MA(Ma, Mb) at scale 2^(2p).
        base = (implicit + fa + fb) << p
        product = base + _mitchell_int(fa, fb, p)

    # Normalize: product is in [2^(2p), 2^(2p+2)).
    two_p = 1 << (2 * p)
    if product >= (two_p << 1):
        carry = 1
        fz = (product - (two_p << 1)) >> (p + 1)
    else:
        carry = 0
        fz = (product - two_p) >> p
    ez = ea + eb - fields.bias + carry
    return _pack_result(sz, ez, fz & mask(p), fields)
