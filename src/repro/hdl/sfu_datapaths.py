"""HDL-level fixed-point models of the linear SFUs.

The behavioral SFUs (:mod:`repro.core.special`) evaluate the Table-1 linear
approximations in float64.  Real hardware carries the coefficients in
finite fixed-point form and evaluates the polynomial with an integer
constant-multiplier and adder.  These models do exactly that — coefficient
and datapath widths are explicit parameters — so the co-simulation
quantifies how far the float64 behavioral models sit from a realizable
datapath (within ~1 output ULP at 28 fractional coefficient bits).
"""

from __future__ import annotations

from .bitvector import mask, pack_float, unpack_float
from .datapaths import fields_for

__all__ = [
    "COEFF_FRACTION_BITS",
    "fixed_point_coefficient",
    "rtl_linear_reciprocal",
    "rtl_linear_rsqrt",
]

#: Default fractional bits of the hardware coefficient constants.
COEFF_FRACTION_BITS = 28

# Table-1 coefficient constants (see repro.core.special).
_RCP_C0, _RCP_C1 = 2.823, 1.882  # y = c0 - c1 x
_RSQRT_C0, _RSQRT_C1 = 2.08, 1.1911
_SQRT1_2 = 0.7071067811865476


def fixed_point_coefficient(value: float, fraction_bits: int = COEFF_FRACTION_BITS) -> int:
    """Quantize a coefficient to ``fraction_bits`` fractional bits."""
    if fraction_bits < 1:
        raise ValueError(f"fraction_bits must be >= 1, got {fraction_bits}")
    if value < 0:
        raise ValueError("coefficients are stored as magnitudes")
    return round(value * (1 << fraction_bits))


def _evaluate_linear(
    c0: int, c1: int, x_frac: int, x_bits: int, fraction_bits: int
) -> int:
    """``c0 - c1 * x`` in fixed point; result at ``fraction_bits`` scale.

    ``x`` is an unsigned fraction with ``x_bits`` fractional bits in
    [0.5, 1) (the reduced operand).  The constant multiply keeps full
    precision and the product is truncated back to ``fraction_bits``.
    """
    product = c1 * x_frac  # scale 2^-(fraction_bits + x_bits)
    product >>= x_bits  # truncate to coefficient scale
    result = c0 - product
    if result < 0:
        raise ArithmeticError("linear SFU result underflowed; bad reduction")
    return result


def _result_to_float(sign: int, value: int, scale_exp: int, fraction_bits: int,
                     fields) -> float:
    """Normalize a positive fixed-point value * 2^scale_exp into the format."""
    if value == 0:
        return pack_float(sign, 0, 0, fields)
    msb = value.bit_length() - 1
    exponent_unbiased = msb - fraction_bits + scale_exp
    # Extract the top mantissa_bits fraction bits below the leading one.
    p = fields.mantissa_bits
    if msb >= p:
        frac = (value >> (msb - p)) & mask(p)
    else:
        frac = (value << (p - msb)) & mask(p)
    biased = exponent_unbiased + fields.bias
    if biased >= fields.exponent_mask:
        return pack_float(sign, fields.exponent_mask, 0, fields)
    if biased < 1:
        return pack_float(sign, 0, 0, fields)
    return pack_float(sign, biased, frac, fields)


def rtl_linear_reciprocal(
    x: float, bits: int = 32, fraction_bits: int = COEFF_FRACTION_BITS
) -> float:
    """One linear-SFU reciprocal, evaluated in fixed point."""
    fields = fields_for(bits)
    sign, exponent, fraction = unpack_float(x, fields)
    if exponent == fields.exponent_mask:
        if fraction:
            return pack_float(0, fields.exponent_mask, 1, fields)  # NaN
        return pack_float(sign, 0, 0, fields)  # 1/inf = 0
    if exponent == 0:  # zero or flushed subnormal
        return pack_float(sign, fields.exponent_mask, 0, fields)  # inf

    p = fields.mantissa_bits
    # Reduced operand xr = (1 + M)/2 in [0.5, 1) with p+1 fractional bits.
    xr = (1 << p) | fraction  # value * 2^-(p+1)
    c0 = fixed_point_coefficient(_RCP_C0, fraction_bits)
    c1 = fixed_point_coefficient(_RCP_C1, fraction_bits)
    lin = _evaluate_linear(c0, c1, xr, p + 1, fraction_bits)
    e_unbiased = exponent - fields.bias
    return _result_to_float(sign, lin, -(e_unbiased + 1), fraction_bits, fields)


def rtl_linear_rsqrt(
    x: float, bits: int = 32, fraction_bits: int = COEFF_FRACTION_BITS
) -> float:
    """One linear-SFU inverse square root, evaluated in fixed point."""
    fields = fields_for(bits)
    sign, exponent, fraction = unpack_float(x, fields)
    if sign and (exponent or fraction):
        return pack_float(0, fields.exponent_mask, 1, fields)  # NaN
    if exponent == fields.exponent_mask:
        if fraction:
            return pack_float(0, fields.exponent_mask, 1, fields)
        return pack_float(0, 0, 0, fields)  # rsqrt(inf) = 0
    if exponent == 0:
        return pack_float(0, fields.exponent_mask, 0, fields)  # inf

    p = fields.mantissa_bits
    xr = (1 << p) | fraction
    c0 = fixed_point_coefficient(_RSQRT_C0, fraction_bits)
    c1 = fixed_point_coefficient(_RSQRT_C1, fraction_bits)
    lin = _evaluate_linear(c0, c1, xr, p + 1, fraction_bits)

    e1 = exponent - fields.bias + 1
    q = e1 >> 1 if e1 >= 0 else -((-e1 + 1) >> 1)
    r = e1 - 2 * q
    if r:
        # Odd parity: fold 1/sqrt(2) in as a second constant multiply.
        scale = fixed_point_coefficient(_SQRT1_2, fraction_bits)
        lin = (lin * scale) >> fraction_bits
    return _result_to_float(0, lin, -q, fraction_bits, fields)
