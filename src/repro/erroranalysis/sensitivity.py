"""Application error-sensitivity analysis.

Chapter 5's quality-tuning methodology consults each unit's
"application-specific error sensitivity" when deciding what to disable.
This module measures it directly: enable one imprecise unit at a time, run
the application, and score the quality impact relative to the precise
reference — producing the data-driven disable ordering the
:class:`~repro.quality.QualityTuner` consumes (instead of its built-in
paper-derived default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import IHWConfig, UNIT_NAMES

__all__ = ["UnitSensitivity", "SensitivityReport", "analyze_sensitivity"]


@dataclass(frozen=True)
class UnitSensitivity:
    """Quality impact of enabling one imprecise unit in isolation."""

    unit: str
    quality: float
    degradation: float  # |quality - ideal| in the metric's own units


@dataclass(frozen=True)
class SensitivityReport:
    """Per-unit sensitivities of one application."""

    entries: tuple
    ideal_quality: float
    higher_is_better: bool

    def ranking(self) -> tuple:
        """Unit names, most error-sensitive first (the tuner's order)."""
        return tuple(
            e.unit
            for e in sorted(self.entries, key=lambda e: e.degradation, reverse=True)
        )

    def most_sensitive(self) -> str:
        return self.ranking()[0]

    def least_sensitive(self) -> str:
        return self.ranking()[-1]

    def degradation_of(self, unit: str) -> float:
        for e in self.entries:
            if e.unit == unit:
                return e.degradation
        raise ValueError(f"unit {unit!r} not in the report")

    def format_rows(self) -> str:
        lines = [f"ideal quality: {self.ideal_quality:.5g}"]
        for e in sorted(self.entries, key=lambda e: e.degradation, reverse=True):
            lines.append(
                f"  {e.unit:6s} quality={e.quality:.5g} degradation={e.degradation:.5g}"
            )
        return "\n".join(lines)


def analyze_sensitivity(
    evaluate: Callable[[IHWConfig], float],
    units: tuple = UNIT_NAMES,
    higher_is_better: bool = True,
    base_config: IHWConfig | None = None,
) -> SensitivityReport:
    """Measure each unit's isolated quality impact.

    Parameters
    ----------
    evaluate:
        ``evaluate(config) -> quality`` (e.g. from
        :meth:`~repro.framework.PowerQualityFramework.quality_evaluator`).
    units:
        Units to probe (defaults to all eight).
    higher_is_better:
        Metric direction (True for SSIM/FOM/vigilance, False for MAE/err%).
    base_config:
        Configuration each probe starts from (default: fully precise);
        structural parameters (TH, multiplier mode) are taken from it.
    """
    unknown = set(units) - set(UNIT_NAMES)
    if unknown:
        raise ValueError(f"unknown units: {sorted(unknown)}")
    if not units:
        raise ValueError("no units to analyze")
    base = base_config if base_config is not None else IHWConfig.precise()
    base = base.without_units(*UNIT_NAMES)

    ideal = evaluate(base)
    entries = []
    for unit in units:
        quality = evaluate(base.with_units(unit))
        degradation = (ideal - quality) if higher_is_better else (quality - ideal)
        entries.append(
            UnitSensitivity(unit=unit, quality=quality, degradation=degradation)
        )
    return SensitivityReport(
        entries=tuple(entries), ideal_quality=ideal, higher_is_better=higher_is_better
    )
