"""Quasi-Monte-Carlo error characterization of the imprecise units.

Reproduces the Figure 8 / Figure 9 probability mass functions: for each
imprecise unit, relative error magnitudes are collected over a large
low-discrepancy input sweep and binned at

    x = ceil(log2 |ERR%|)

so a bar at ``x = -2`` is the probability that the error percentage falls in
``(2^-3, 2^-2]``.  The sum of all bars is the unit's error rate.

The paper uses 200 million inputs; the default here is 2e5 (the PMFs are
visually converged well before that thanks to the low-discrepancy sweep) and
every entry point takes ``n_samples`` for full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core import (
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_divide,
    imprecise_fma,
    imprecise_log2,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
    truncated_multiply,
)

from .metrics import ErrorStats, error_stats
from .quasirandom import mantissa_inputs

__all__ = [
    "ErrorPMF",
    "bin_errors",
    "characterize",
    "characterize_unit",
    "characterize_units",
    "characterize_multiplier_config",
    "characterize_multiplier_configs",
    "UNIT_CHARACTERIZATIONS",
    "DEFAULT_SAMPLES",
]

DEFAULT_SAMPLES = 200_000


@dataclass(frozen=True)
class ErrorPMF:
    """Binned error distribution of one unit configuration (one Fig-8 panel).

    ``bins[i]`` is the ``ceil(log2 |ERR%|)`` bin label and
    ``probabilities[i]`` the fraction of inputs landing in it.  Exact results
    (zero error) are not binned; their share is ``1 - probabilities.sum()``.
    """

    label: str
    bins: np.ndarray
    probabilities: np.ndarray
    stats: ErrorStats

    @property
    def error_rate(self) -> float:
        """Total probability of a non-zero error (the sum of all bars)."""
        return float(self.probabilities.sum())

    def probability_above(self, err_percent: float) -> float:
        """Probability that the error percentage exceeds ``err_percent``."""
        if err_percent <= 0:
            return self.error_rate
        threshold = np.log2(err_percent)
        # A bin labeled x covers errors in (2^(x-1), 2^x]%: the whole bin
        # exceeds err_percent iff x - 1 >= log2(err_percent).
        mask = self.bins - 1 >= threshold
        return float(self.probabilities[mask].sum())

    def dominant_bin(self) -> int:
        """Bin label carrying the highest probability mass."""
        return int(self.bins[np.argmax(self.probabilities)])

    def format_rows(self) -> str:
        """Text rendering of the PMF (one row per bar)."""
        lines = [f"{self.label}: error rate {self.error_rate:.4f}"]
        for b, p in zip(self.bins, self.probabilities):
            lines.append(f"  2^{int(b):+d} %  p={p:.4f} {'#' * int(round(p * 60))}")
        return "\n".join(lines)


def bin_errors(rel_errors: np.ndarray) -> tuple:
    """Bin relative error magnitudes at ``ceil(log2 |ERR%|)``.

    Returns ``(bins, counts)`` over the non-zero errors only.
    """
    rel = np.asarray(rel_errors, dtype=np.float64)
    rel = rel[np.isfinite(rel) & (rel > 0)]
    if rel.size == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    labels = np.ceil(np.log2(rel * 100.0)).astype(np.int64)
    bins, counts = np.unique(labels, return_counts=True)
    return bins, counts


def characterize(approx, exact, label: str = "") -> ErrorPMF:
    """Build an :class:`ErrorPMF` from paired approximate/exact results."""
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    valid = np.isfinite(exact) & np.isfinite(approx) & (exact != 0)
    rel = np.abs(approx[valid] - exact[valid]) / np.abs(exact[valid])
    bins, counts = bin_errors(rel)
    total = max(int(valid.sum()), 1)
    return ErrorPMF(
        label=label,
        bins=bins,
        probabilities=counts / total,
        stats=error_stats(approx[valid], exact[valid]),
    )


# ----------------------------------------------------------------------
# Figure 8: the Table-1 unit set
# ----------------------------------------------------------------------
def _char_fpadd(n, seed, dtype, threshold=8):
    a, b = mantissa_inputs(n, 2, exponent_range=(-8, 8), seed=seed, dtype=dtype)
    sign = np.where(np.arange(n) % 2 == 0, 1.0, -1.0).astype(dtype)
    b = b * sign  # exercise both effective operations
    return imprecise_add(a, b, threshold=threshold, dtype=dtype), (
        a.astype(np.float64) + b.astype(np.float64)
    )


def _char_fpmul(n, seed, dtype):
    a, b = mantissa_inputs(n, 2, seed=seed, dtype=dtype)
    return imprecise_multiply(a, b, dtype=dtype), a.astype(np.float64) * b.astype(
        np.float64
    )


def _char_fpdiv(n, seed, dtype):
    a, b = mantissa_inputs(n, 2, seed=seed, dtype=dtype)
    return imprecise_divide(a, b, dtype=dtype), a.astype(np.float64) / b.astype(
        np.float64
    )


def _char_rcp(n, seed, dtype):
    (x,) = mantissa_inputs(n, 1, seed=seed, dtype=dtype)
    return imprecise_reciprocal(x, dtype=dtype), 1.0 / x.astype(np.float64)


def _char_rsqrt(n, seed, dtype):
    (x,) = mantissa_inputs(n, 1, seed=seed, dtype=dtype)
    return imprecise_rsqrt(x, dtype=dtype), 1.0 / np.sqrt(x.astype(np.float64))


def _char_sqrt(n, seed, dtype):
    (x,) = mantissa_inputs(n, 1, seed=seed, dtype=dtype)
    return imprecise_sqrt(x, dtype=dtype), np.sqrt(x.astype(np.float64))


def _char_log2(n, seed, dtype):
    (x,) = mantissa_inputs(n, 1, exponent_range=(-8, 8), seed=seed, dtype=dtype)
    return imprecise_log2(x, dtype=dtype), np.log2(x.astype(np.float64))


def _char_fma(n, seed, dtype):
    a, b, c = mantissa_inputs(n, 3, seed=seed, dtype=dtype)
    exact = a.astype(np.float64) * b.astype(np.float64) + c.astype(np.float64)
    return imprecise_fma(a, b, c, dtype=dtype), exact


#: Figure-8 panels: unit name -> characterization driver.
UNIT_CHARACTERIZATIONS = {
    "ifpadd": _char_fpadd,
    "ifpmul": _char_fpmul,
    "ifpdiv": _char_fpdiv,
    "ircp": _char_rcp,
    "irsqrt": _char_rsqrt,
    "isqrt": _char_sqrt,
    "ilog2": _char_log2,
    "ifma": _char_fma,
}


def characterize_unit(
    name: str, n_samples: int = DEFAULT_SAMPLES, seed: int = 0, dtype=np.float32
) -> ErrorPMF:
    """Characterize one Table-1 unit by name (Figure 8)."""
    try:
        driver = UNIT_CHARACTERIZATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown unit {name!r}; expected one of {sorted(UNIT_CHARACTERIZATIONS)}"
        ) from None
    with telemetry.span("characterize", unit=name, samples=n_samples):
        approx, exact = driver(n_samples, seed, dtype)
        pmf = characterize(approx, exact, label=name)
    telemetry.counter_inc("repro_characterizations_total", kind="unit",
                          unit=name)
    telemetry.counter_inc("repro_characterization_samples_total", n_samples,
                          kind="unit", unit=name)
    return pmf


def characterize_units(
    names=None,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    dtype=np.float32,
    runner=None,
) -> dict:
    """Characterize several Table-1 units, optionally in parallel.

    ``names`` defaults to every Figure-8 panel.  With a
    :class:`~repro.runtime.ExperimentRunner` the units fan out across
    worker processes — each unit's full quasi-Monte-Carlo sweep runs
    unchanged in one worker, so the PMFs are bit-identical to a
    sequential run.
    """
    names = list(names) if names is not None else sorted(UNIT_CHARACTERIZATIONS)
    unknown = [n for n in names if n not in UNIT_CHARACTERIZATIONS]
    if unknown:
        raise ValueError(
            f"unknown units {unknown}; expected from {sorted(UNIT_CHARACTERIZATIONS)}"
        )
    if runner is None:
        return {
            name: characterize_unit(name, n_samples, seed, dtype) for name in names
        }
    tasks = [(name, n_samples, seed, dtype) for name in names]
    pmfs = runner.map(characterize_unit, tasks, labels=names)
    return dict(zip(names, pmfs))


def characterize_multiplier_configs(
    configs,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    dtype=np.float32,
    runner=None,
) -> dict:
    """Characterize several multiplier configurations (Figure-9 sweep).

    ``configs`` holds :class:`~repro.core.MultiplierConfig` objects or
    paper-style names (``"lp_tr19"``, ``"bt_21"``); the result maps each
    configuration's label to its PMF.  Parallelism mirrors
    :func:`characterize_units`.
    """
    configs = list(configs)
    if runner is None:
        pmfs = [
            characterize_multiplier_config(cfg, n_samples, seed, dtype)
            for cfg in configs
        ]
    else:
        tasks = [(cfg, n_samples, seed, dtype) for cfg in configs]
        labels = [cfg if isinstance(cfg, str) else cfg.name for cfg in configs]
        pmfs = runner.map(characterize_multiplier_config, tasks, labels=labels)
    return {pmf.label: pmf for pmf in pmfs}


def characterize_multiplier_config(
    config, n_samples: int = DEFAULT_SAMPLES, seed: int = 0, dtype=np.float32
) -> ErrorPMF:
    """Characterize one configurable-multiplier configuration (Figure 9).

    ``config`` is a :class:`~repro.core.MultiplierConfig`, a paper-style name
    (``"lp_tr19"``), or ``"bt_N"`` for the intuitive truncation baseline.
    """
    with telemetry.span("characterize", multiplier=str(config),
                        samples=n_samples):
        a, b = mantissa_inputs(n_samples, 2, seed=seed, dtype=dtype)
        exact = a.astype(np.float64) * b.astype(np.float64)
        if isinstance(config, str) and config.startswith("bt_"):
            truncation = int(config[3:])
            approx = truncated_multiply(a, b, truncation, dtype=dtype)
            label = config
        else:
            if isinstance(config, str):
                config = MultiplierConfig.from_name(config)
            approx = configurable_multiply(a, b, config, dtype=dtype)
            label = config.name
        pmf = characterize(approx, exact, label=label)
    telemetry.counter_inc("repro_characterizations_total", kind="multiplier",
                          unit=label)
    telemetry.counter_inc("repro_characterization_samples_total", n_samples,
                          kind="multiplier", unit=label)
    return pmf
