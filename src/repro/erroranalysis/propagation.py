"""First-order analytic error propagation through imprecise kernels.

The paper builds its characterization on the analytic error-modeling
framework of Huang, Lach & Robins (SELSE 2011, reference [13]).  This
module implements that calculus for the reproduced units: each imprecise
operation injects a signed relative error with measured moments
``(bias, variance)``, and first-order propagation composes them through a
computation:

- ``z = x * y``:          ``1+bz = (1+bx)(1+by)(1+b_mul)``
- ``z = x + y`` (same sign, magnitude weights wx, wy):
                          ``1+bz = (1 + wx bx + wy by)(1+b_add)``
- ``z = 1/x``:            ``1+bz = (1+b_rcp)/(1+bx)``
- ``z = 1/sqrt(x)``:      ``1+bz = (1+b_rsqrt)/sqrt(1+bx)``
- ``z = sqrt(x)``:        ``1+bz = (1+b_sqrt) sqrt(1+bx)``

with the ``b_op`` injections measured by quasi-MC characterization and
assumed independent across operations; variances add in quadrature with
first-order sensitivities.  The validated predictions are the error
*magnitude* and *spread* (within ~10% of Monte-Carlo on the paper's kernel
shapes); bias signs through strongly nonlinear chains carry second-order
and correlation effects outside the model.

A :class:`Propagator` exposes the same method names as the runtime
:class:`~repro.core.ArithmeticContext`, but operates on
:class:`Quantity` objects carrying a representative magnitude and an
:class:`ErrorEstimate` — so the *same kernel code* can be executed
symbolically to predict its output error, which the tests validate against
Monte-Carlo measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core import (
    IHWConfig,
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_divide,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
    truncated_multiply,
)

from .metrics import signed_error_moments
from .quasirandom import mantissa_inputs

__all__ = [
    "ErrorEstimate",
    "Propagator",
    "Quantity",
    "WorstCasePropagator",
    "unit_moments",
]

_MOMENT_SAMPLES = 1 << 15


@dataclass(frozen=True)
class ErrorEstimate:
    """First two moments of a quantity's signed relative error."""

    bias: float = 0.0
    variance: float = 0.0

    def __post_init__(self):
        if self.variance < 0:
            raise ValueError(f"variance must be non-negative, got {self.variance}")

    @property
    def spread(self) -> float:
        return math.sqrt(self.variance)

    def expected_magnitude(self) -> float:
        """E|relative error| under a normal approximation."""
        sigma = self.spread
        if sigma == 0:
            return abs(self.bias)
        mu = self.bias
        # E|N(mu, sigma^2)| closed form.
        return sigma * math.sqrt(2 / math.pi) * math.exp(
            -(mu**2) / (2 * sigma**2)
        ) + abs(mu) * math.erf(abs(mu) / (sigma * math.sqrt(2)))

    def bound(self, k: float = 3.0) -> float:
        """|bias| + k sigma — a high-confidence error envelope."""
        return abs(self.bias) + k * self.spread

    @staticmethod
    def exact() -> "ErrorEstimate":
        return ErrorEstimate(0.0, 0.0)


@dataclass(frozen=True)
class Quantity:
    """A kernel value for symbolic execution: magnitude plus error moments."""

    magnitude: float
    error: ErrorEstimate = ErrorEstimate(0.0, 0.0)

    def __post_init__(self):
        if self.magnitude < 0:
            raise ValueError(
                f"magnitude is a scale, must be non-negative: {self.magnitude}"
            )


@lru_cache(maxsize=64)
def _moments_cached(op: str, key: tuple) -> tuple:
    """Measure one unit's signed error moments over a quasi-MC sweep."""
    dtype = np.float32
    if op in ("mul_table1", "mul_mitchell", "mul_bt", "add", "div"):
        a, b = mantissa_inputs(_MOMENT_SAMPLES, 2, seed=3, dtype=dtype)
        if op == "mul_table1":
            approx = imprecise_multiply(a, b)
            exact = a.astype(np.float64) * b.astype(np.float64)
        elif op == "mul_mitchell":
            cfg = MultiplierConfig(key[0], key[1])
            approx = configurable_multiply(a, b, cfg)
            exact = a.astype(np.float64) * b.astype(np.float64)
        elif op == "mul_bt":
            approx = truncated_multiply(a, b, key[0], rounding=key[1])
            exact = a.astype(np.float64) * b.astype(np.float64)
        elif op == "add":
            approx = imprecise_add(a, b, threshold=key[0])
            exact = a.astype(np.float64) + b.astype(np.float64)
        else:
            approx = imprecise_divide(a, b)
            exact = a.astype(np.float64) / b.astype(np.float64)
    else:
        (x,) = mantissa_inputs(_MOMENT_SAMPLES, 1, seed=3, dtype=dtype)
        if op == "rcp":
            approx = imprecise_reciprocal(x)
            exact = 1.0 / x.astype(np.float64)
        elif op == "rsqrt":
            approx = imprecise_rsqrt(x)
            exact = 1.0 / np.sqrt(x.astype(np.float64))
        elif op == "sqrt":
            approx = imprecise_sqrt(x)
            exact = np.sqrt(x.astype(np.float64))
        else:
            raise ValueError(f"unknown op {op!r}")
    return signed_error_moments(approx, exact)


def unit_moments(op: str, config: IHWConfig) -> ErrorEstimate:
    """Measured injection moments of ``op`` under ``config`` (cached).

    Returns the exact estimate when the unit is disabled in ``config``.
    """
    switch = "add" if op == "sub" else op
    if not config.is_enabled(switch):
        return ErrorEstimate.exact()
    if op in ("add", "sub"):
        bias, var = _moments_cached("add", (config.adder_threshold,))
    elif op == "mul":
        if config.multiplier_mode == "table1":
            bias, var = _moments_cached("mul_table1", ())
        elif config.multiplier_mode == "mitchell":
            c = config.multiplier_config
            bias, var = _moments_cached("mul_mitchell", (c.path, c.truncation))
        else:
            bias, var = _moments_cached(
                "mul_bt",
                (config.multiplier_truncation, config.multiplier_bt_rounding),
            )
    elif op == "fma":
        # The FMA is the Table-1 multiplier feeding the threshold adder;
        # the product injection dominates and the adder's is independent.
        mb, mv = _moments_cached("mul_table1", ())
        ab, av = _moments_cached("add", (config.adder_threshold,))
        bias = (1.0 + mb) * (1.0 + ab) - 1.0
        var = mv + av
    elif op in ("rcp", "rsqrt", "sqrt", "div"):
        bias, var = _moments_cached(op, ())
    else:
        raise ValueError(f"unsupported op for propagation: {op!r}")
    return ErrorEstimate(bias, var)


class Propagator:
    """Symbolic executor: ArithmeticContext's API over :class:`Quantity`.

    Same-sign addition is assumed (the paper's kernels accumulate
    magnitudes); near-cancellation subtractions are outside first-order
    validity and raise.
    """

    def __init__(self, config: IHWConfig):
        self.config = config

    def quantity(self, magnitude: float) -> Quantity:
        """An error-free input of the given scale."""
        return Quantity(float(abs(magnitude)))

    def _compose(self, op: str, carried_bias: float, carried_variance: float) -> tuple:
        """Multiply the carried (1 + bias) by the op's injection.

        Biases compose multiplicatively — exact for products, the right
        first-order form everywhere else; variances add in quadrature.
        """
        inj = unit_moments(op, self.config)
        bias = (1.0 + carried_bias) * (1.0 + inj.bias) - 1.0
        return bias, carried_variance + inj.variance

    def mul(self, a: Quantity, b: Quantity) -> Quantity:
        carried = (1.0 + a.error.bias) * (1.0 + b.error.bias) - 1.0
        bias, var = self._compose(
            "mul", carried, a.error.variance + b.error.variance
        )
        return Quantity(a.magnitude * b.magnitude, ErrorEstimate(bias, var))

    def add(self, a: Quantity, b: Quantity) -> Quantity:
        total = a.magnitude + b.magnitude
        if total == 0:
            return Quantity(0.0)
        wa = a.magnitude / total
        wb = b.magnitude / total
        bias, var = self._compose(
            "add",
            wa * a.error.bias + wb * b.error.bias,
            wa**2 * a.error.variance + wb**2 * b.error.variance,
        )
        return Quantity(total, ErrorEstimate(bias, var))

    def accumulate(self, terms) -> Quantity:
        """Left-fold addition of a sequence of quantities."""
        terms = list(terms)
        if not terms:
            raise ValueError("nothing to accumulate")
        acc = terms[0]
        for term in terms[1:]:
            acc = self.add(acc, term)
        return acc

    def rcp(self, x: Quantity) -> Quantity:
        if x.magnitude == 0:
            raise ValueError("reciprocal of a zero-scale quantity")
        carried = 1.0 / (1.0 + x.error.bias) - 1.0
        bias, var = self._compose("rcp", carried, x.error.variance)
        return Quantity(1.0 / x.magnitude, ErrorEstimate(bias, var))

    def rsqrt(self, x: Quantity) -> Quantity:
        if x.magnitude == 0:
            raise ValueError("rsqrt of a zero-scale quantity")
        carried = (1.0 + x.error.bias) ** -0.5 - 1.0
        bias, var = self._compose("rsqrt", carried, 0.25 * x.error.variance)
        return Quantity(x.magnitude**-0.5, ErrorEstimate(bias, var))

    def sqrt(self, x: Quantity) -> Quantity:
        carried = math.sqrt(1.0 + x.error.bias) - 1.0
        bias, var = self._compose("sqrt", carried, 0.25 * x.error.variance)
        return Quantity(math.sqrt(x.magnitude), ErrorEstimate(bias, var))

    def div(self, a: Quantity, b: Quantity) -> Quantity:
        if b.magnitude == 0:
            raise ValueError("division by a zero-scale quantity")
        carried = (1.0 + a.error.bias) / (1.0 + b.error.bias) - 1.0
        bias, var = self._compose(
            "div", carried, a.error.variance + b.error.variance
        )
        return Quantity(a.magnitude / b.magnitude, ErrorEstimate(bias, var))


#: Guaranteed per-op relative error bounds for worst-case propagation.
_WORST_CASE_BOUNDS = {
    "rcp": 0.0591,
    "rsqrt": 0.1112,
    "sqrt": 0.1112,
    "div": 0.0601,
}


def _unit_worst_bound(op: str, config: IHWConfig) -> float:
    """Guaranteed relative-error bound of one op under ``config``."""
    from repro.core import (
        FULL_PATH_MAX_ERROR,
        IMPRECISE_MULTIPLY_MAX_ERROR,
        LOG_PATH_MAX_ERROR,
        truncation_max_error,
    )

    from .bounds import adder_addition_bound, full_path_bound, log_path_bound

    switch = "add" if op == "sub" else op
    if not config.is_enabled(switch):
        return 0.0
    if op in ("add", "sub"):
        return adder_addition_bound(config.adder_threshold)
    if op == "mul":
        if config.multiplier_mode == "table1":
            return IMPRECISE_MULTIPLY_MAX_ERROR
        if config.multiplier_mode == "mitchell":
            c = config.multiplier_config
            bound_fn = log_path_bound if c.path == "log" else full_path_bound
            # The truncation slack in bounds.py is loose; the measured
            # maxima sit under bound(tr) for every studied configuration.
            base = LOG_PATH_MAX_ERROR if c.path == "log" else FULL_PATH_MAX_ERROR
            return max(base, min(bound_fn(c.truncation), 0.25))
        return truncation_max_error(
            config.multiplier_truncation, rounding=config.multiplier_bt_rounding
        )
    try:
        return _WORST_CASE_BOUNDS[op]
    except KeyError:
        raise ValueError(f"unsupported op for worst-case propagation: {op!r}") from None


class WorstCasePropagator:
    """Interval companion of :class:`Propagator`: guaranteed error bounds.

    Tracks a single symmetric relative bound ``B`` per quantity (the true
    value lies within ``[v(1-B), v(1+B)]``) and composes the per-op
    guaranteed maxima conservatively — same-sign additions only, like the
    moments propagator.
    """

    def __init__(self, config: IHWConfig):
        self.config = config

    def quantity(self, magnitude: float, bound: float = 0.0) -> Quantity:
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        return Quantity(float(abs(magnitude)), ErrorEstimate(bound, 0.0))

    @staticmethod
    def bound_of(q: Quantity) -> float:
        """The guaranteed bound this propagator stores in ``error.bias``."""
        return q.error.bias

    def _apply(self, op: str, carried: float, magnitude: float) -> Quantity:
        inj = _unit_worst_bound(op, self.config)
        bound = (1.0 + carried) * (1.0 + inj) - 1.0
        return Quantity(magnitude, ErrorEstimate(bound, 0.0))

    def mul(self, a: Quantity, b: Quantity) -> Quantity:
        carried = (1.0 + self.bound_of(a)) * (1.0 + self.bound_of(b)) - 1.0
        return self._apply("mul", carried, a.magnitude * b.magnitude)

    def add(self, a: Quantity, b: Quantity) -> Quantity:
        total = a.magnitude + b.magnitude
        if total == 0:
            return Quantity(0.0)
        carried = (
            a.magnitude * self.bound_of(a) + b.magnitude * self.bound_of(b)
        ) / total
        return self._apply("add", carried, total)

    def accumulate(self, terms) -> Quantity:
        terms = list(terms)
        if not terms:
            raise ValueError("nothing to accumulate")
        acc = terms[0]
        for term in terms[1:]:
            acc = self.add(acc, term)
        return acc

    def rcp(self, x: Quantity) -> Quantity:
        if x.magnitude == 0:
            raise ValueError("reciprocal of a zero-scale quantity")
        b = self.bound_of(x)
        if b >= 1:
            raise ValueError("input bound reaches 100%: reciprocal unbounded")
        carried = 1.0 / (1.0 - b) - 1.0
        return self._apply("rcp", carried, 1.0 / x.magnitude)

    def rsqrt(self, x: Quantity) -> Quantity:
        if x.magnitude == 0:
            raise ValueError("rsqrt of a zero-scale quantity")
        b = self.bound_of(x)
        if b >= 1:
            raise ValueError("input bound reaches 100%: rsqrt unbounded")
        carried = (1.0 - b) ** -0.5 - 1.0
        return self._apply("rsqrt", carried, x.magnitude**-0.5)

    def sqrt(self, x: Quantity) -> Quantity:
        carried = math.sqrt(1.0 + self.bound_of(x)) - 1.0
        return self._apply("sqrt", carried, math.sqrt(x.magnitude))

    def div(self, a: Quantity, b: Quantity) -> Quantity:
        if b.magnitude == 0:
            raise ValueError("division by a zero-scale quantity")
        bb = self.bound_of(b)
        if bb >= 1:
            raise ValueError("divisor bound reaches 100%: quotient unbounded")
        carried = (1.0 + self.bound_of(a)) / (1.0 - bb) - 1.0
        return self._apply("div", carried, a.magnitude / b.magnitude)
