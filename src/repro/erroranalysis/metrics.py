"""Inherent quality metrics of imprecise arithmetic units.

Chapter 4 uses the following context-free metrics to compare imprecise
components:

- ``eps_max`` — maximum relative error magnitude (the headline Table-1
  figure),
- mean relative error,
- error rate — the fraction of inputs whose result differs from the exact
  one at all,
- MED / WED — mean and worst-case error *distance* (absolute difference),
  after Han & Orshansky.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorStats", "error_stats", "relative_errors", "signed_error_moments"]


def relative_errors(approx, exact) -> np.ndarray:
    """Relative error magnitudes ``|approx - exact| / |exact|``.

    Entries where ``exact`` is zero or non-finite are dropped, matching the
    paper's characterization over normal, non-zero results.
    """
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    valid = np.isfinite(exact) & np.isfinite(approx) & (exact != 0)
    return np.abs(approx[valid] - exact[valid]) / np.abs(exact[valid])


def signed_error_moments(approx, exact) -> tuple:
    """``(bias, variance)`` of the *signed* relative error.

    The first two moments of ``(approx - exact) / exact`` over the finite,
    non-zero-exact samples — the inputs to the first-order error
    propagation calculus in :mod:`repro.erroranalysis.propagation`.
    """
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    valid = np.isfinite(exact) & np.isfinite(approx) & (exact != 0)
    if not valid.any():
        raise ValueError("no finite sample pairs to evaluate")
    rel = (approx[valid] - exact[valid]) / exact[valid]
    return float(rel.mean()), float(rel.var())


@dataclass(frozen=True)
class ErrorStats:
    """Summary error metrics of one imprecise unit configuration."""

    eps_max: float
    eps_mean: float
    error_rate: float
    med: float
    wed: float
    samples: int

    def __str__(self):
        return (
            f"eps_max={self.eps_max:.4%} eps_mean={self.eps_mean:.4%} "
            f"rate={self.error_rate:.4f} MED={self.med:.3e} WED={self.wed:.3e} "
            f"(n={self.samples})"
        )


def error_stats(approx, exact) -> ErrorStats:
    """Compute :class:`ErrorStats` for paired approximate/exact results."""
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    if approx.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs exact {exact.shape}"
        )
    valid = np.isfinite(exact) & np.isfinite(approx)
    a = approx[valid]
    e = exact[valid]
    if a.size == 0:
        raise ValueError("no finite sample pairs to evaluate")
    distance = np.abs(a - e)
    nonzero = e != 0
    rel = distance[nonzero] / np.abs(e[nonzero])
    return ErrorStats(
        eps_max=float(rel.max()) if rel.size else 0.0,
        eps_mean=float(rel.mean()) if rel.size else 0.0,
        error_rate=float((distance > 0).mean()),
        med=float(distance.mean()),
        wed=float(distance.max()),
        samples=int(a.size),
    )
