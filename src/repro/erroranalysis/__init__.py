"""Error analysis and characterization of imprecise units (Chapter 4)."""

from .bounds import (
    adder_addition_bound,
    adder_case_bound,
    adder_subtraction_bound,
    full_path_bound,
    log_path_bound,
    mitchell_pointwise_error,
)
from .characterize import (
    DEFAULT_SAMPLES,
    ErrorPMF,
    UNIT_CHARACTERIZATIONS,
    bin_errors,
    characterize,
    characterize_multiplier_config,
    characterize_multiplier_configs,
    characterize_unit,
    characterize_units,
)
from .metrics import ErrorStats, error_stats, relative_errors, signed_error_moments
from .propagation import (
    ErrorEstimate,
    Propagator,
    Quantity,
    WorstCasePropagator,
    unit_moments,
)
from .sensitivity import SensitivityReport, UnitSensitivity, analyze_sensitivity
from .quasirandom import mantissa_inputs, sobol_unit, uniform_inputs

__all__ = [
    "DEFAULT_SAMPLES",
    "ErrorPMF",
    "ErrorStats",
    "UNIT_CHARACTERIZATIONS",
    "adder_addition_bound",
    "adder_case_bound",
    "adder_subtraction_bound",
    "bin_errors",
    "characterize",
    "characterize_multiplier_config",
    "characterize_multiplier_configs",
    "characterize_unit",
    "characterize_units",
    "error_stats",
    "full_path_bound",
    "log_path_bound",
    "mantissa_inputs",
    "mitchell_pointwise_error",
    "SensitivityReport",
    "UnitSensitivity",
    "analyze_sensitivity",
    "ErrorEstimate",
    "Propagator",
    "Quantity",
    "WorstCasePropagator",
    "relative_errors",
    "signed_error_moments",
    "unit_moments",
    "sobol_unit",
    "uniform_inputs",
]
