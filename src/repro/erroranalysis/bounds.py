"""Analytic error bounds from Chapter 4.

These closed-form bounds are the formal counterparts of the statistical
characterization; the test suite verifies that the behavioral units never
exceed them.

Adder (Chapter 4.1.1), with exponent difference ``d`` and threshold ``TH``:

- case (a) — addition, ``d >= TH``:    eps < 1 / (2^(TH-1) + 1)
- case (b) — addition, ``0 < d < TH``: eps < 1 / 2^(TH+1) per the paper's
  accounting (the truncated weight at the smaller operand's scale); this
  module reports the conservative shifter-scale bound ``2^-TH``.
- case (c) — subtraction, ``d >= TH``: eps < 1 / (2^(TH-1) - 1)
- case (d) — subtraction, ``0 < d < TH``: unbounded relative error
  (near-cancellation), tiny absolute error.

Multiplier (Chapter 4.1.2): the full-path maximum is 1/49 ~= 2.04% for any
``x_a + x_b`` regime; the log path inherits Mitchell's 1/9 bound.
"""

from __future__ import annotations

import math

from repro.core import FULL_PATH_MAX_ERROR, LOG_PATH_MAX_ERROR

__all__ = [
    "adder_addition_bound",
    "adder_subtraction_bound",
    "adder_case_bound",
    "full_path_bound",
    "log_path_bound",
    "mitchell_pointwise_error",
]


def adder_addition_bound(threshold: int) -> float:
    """Worst-case relative error for effective additions (cases a and b)."""
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    zeroed = 1.0 / (2 ** (threshold - 1) + 1)  # case (a)
    truncated = 2.0 ** -threshold  # case (b), shifter-scale accounting
    return max(zeroed, truncated)


def adder_subtraction_bound(threshold: int) -> float:
    """Worst-case relative error for far-apart subtractions (case c)."""
    if threshold < 2:
        raise ValueError(f"threshold must be >= 2 for a finite bound, got {threshold}")
    return 1.0 / (2 ** (threshold - 1) - 1)


def adder_case_bound(threshold: int, exponent_difference: int, subtraction: bool) -> float:
    """Bound for one (d, operation) regime; ``inf`` for case (d)."""
    if exponent_difference < 0:
        raise ValueError("exponent_difference must be non-negative")
    if not subtraction:
        return adder_addition_bound(threshold)
    if exponent_difference >= threshold:
        return adder_subtraction_bound(threshold)
    return math.inf  # case (d): near-cancellation


def full_path_bound(truncation: int = 0, mantissa_bits: int = 23) -> float:
    """Full-path maximum error including operand truncation slack."""
    if truncation < 0 or truncation > mantissa_bits:
        raise ValueError(f"truncation out of range: {truncation}")
    truncation_slack = 2.0 * (2.0 ** (truncation - mantissa_bits))
    return FULL_PATH_MAX_ERROR + truncation_slack


def log_path_bound(truncation: int = 0, mantissa_bits: int = 23) -> float:
    """Log-path maximum error including operand truncation slack."""
    if truncation < 0 or truncation > mantissa_bits:
        raise ValueError(f"truncation out of range: {truncation}")
    truncation_slack = 2.0 * (2.0 ** (truncation - mantissa_bits))
    return LOG_PATH_MAX_ERROR + truncation_slack


def mitchell_pointwise_error(x1: float, x2: float) -> float:
    """Relative error of Mitchell's approximation at fraction point (x1, x2).

    For operands ``2^k (1 + x)`` the error depends only on the fractions:
    ``(1+x1)(1+x2)`` vs the piecewise-linear decode.  Useful for plotting the
    error surface and locating the 1/9 worst case at ``x1 = x2 = 0.5``.
    """
    if not (0 <= x1 < 1 and 0 <= x2 < 1):
        raise ValueError("fractions must lie in [0, 1)")
    true = (1 + x1) * (1 + x2)
    s = x1 + x2
    approx = (1 + s) if s < 1 else 2 * s
    return (true - approx) / true
