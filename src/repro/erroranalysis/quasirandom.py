"""Low-discrepancy input generation for IHW error characterization.

Chapter 4.2 characterizes the imprecise units with the quasi-Monte Carlo
method: a low-discrepancy sequence covers the input space far more uniformly
than pseudo-random sampling, so the error PMF converges with fewer samples
and without clustering bias.

Because the proposed imprecise algorithms do not disturb the exponent
arithmetic, the paper characterizes over the interval that exercises the
mantissa datapath; :func:`mantissa_inputs` generates operands whose mantissas
sweep the characterization range while exponents stay controlled, and
:func:`uniform_inputs` covers a plain real interval.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

__all__ = ["sobol_unit", "uniform_inputs", "mantissa_inputs"]


def sobol_unit(n_samples: int, dimensions: int, seed: int = 0) -> np.ndarray:
    """``(n, d)`` Sobol low-discrepancy points in the unit hypercube.

    ``n_samples`` is rounded up to the next power of two (Sobol sequences
    are balanced at powers of two) and the excess is trimmed.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if dimensions <= 0:
        raise ValueError(f"dimensions must be positive, got {dimensions}")
    sampler = qmc.Sobol(d=dimensions, scramble=True, seed=seed)
    pow2 = int(np.ceil(np.log2(max(n_samples, 2))))
    points = sampler.random_base2(m=pow2)
    return points[:n_samples]


def uniform_inputs(
    n_samples: int,
    dimensions: int = 2,
    low: float = 0.0,
    high: float = 1.0,
    seed: int = 0,
    dtype=np.float32,
) -> tuple:
    """Low-discrepancy operand tuples covering ``[low, high)^dimensions``.

    Returns a tuple of ``dimensions`` arrays of length ``n_samples``.
    """
    if not high > low:
        raise ValueError(f"need high > low, got [{low}, {high})")
    points = sobol_unit(n_samples, dimensions, seed)
    scaled = (low + points * (high - low)).astype(dtype)
    return tuple(scaled[:, i] for i in range(dimensions))


def mantissa_inputs(
    n_samples: int,
    dimensions: int = 2,
    exponent_range: tuple = (-4, 4),
    seed: int = 0,
    dtype=np.float32,
) -> tuple:
    """Operands with low-discrepancy mantissas and dithered exponents.

    Mantissas sweep [1, 2) uniformly (the range the imprecise datapaths
    actually see) while exponents draw from ``exponent_range`` so that
    alignment-dependent units (the adder) see realistic exponent
    differences.
    """
    lo, hi = exponent_range
    if hi < lo:
        raise ValueError(f"invalid exponent_range: {exponent_range}")
    points = sobol_unit(n_samples, 2 * dimensions, seed)
    out = []
    for i in range(dimensions):
        mant = 1.0 + points[:, 2 * i]
        exp = np.floor(points[:, 2 * i + 1] * (hi - lo + 1)) + lo
        out.append((mant * np.exp2(exp)).astype(dtype))
    return tuple(out)
