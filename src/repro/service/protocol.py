"""Request/response vocabulary of the sweep service.

One request names an application experiment and a set of imprecise-hardware
configurations; the response carries, per configuration, exactly the
content-addressed cache entry document a warm read would serve (minus the
volatile ``compute_seconds`` timing) — so answers are bit-identical across
instances, across warm/cold paths, and across repeats, and a client can
verify payload integrity from the embedded output checksum.

Configurations are expressed in any of the three vocabularies every other
surface already speaks (all may be combined in one request):

- ``configs``: ``{name: canonical-document}`` —
  :meth:`repro.core.IHWConfig.canonical` round-trip, the lossless form;
- ``config_specs``: ``{name: "add,mul"}`` — the CLI shorthand of
  :func:`repro.core.parse_config_spec` (``all``/``precise``/unit lists);
- ``family``: a named sweep grid from :func:`repro.core.config_family`
  (``units``/``threshold``/``multiplier``).

See ``docs/SERVICE.md`` for the full schema and examples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core import IHWConfig, config_family, parse_config_spec
from repro.runtime import ExperimentSpec

__all__ = [
    "DEFAULT_METRICS",
    "HIGHER_IS_BETTER",
    "ProtocolError",
    "SweepRequest",
    "canonical_json",
    "meets_target",
    "sanitize_document",
]

#: Per-application default quality metric (everything else defaults to
#: ``mae``), matching ``repro sweep``.
DEFAULT_METRICS = {"raytracing": "ssim"}

#: Metrics where larger values mean better quality (the rest are error
#: metrics where smaller is better).
HIGHER_IS_BETTER = frozenset({"ssim", "psnr"})


class ProtocolError(ValueError):
    """A malformed or over-limit request; ``status`` is the HTTP answer."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def meets_target(metric: str, quality: float, target: float) -> bool:
    """Whether ``quality`` satisfies the request's quality target."""
    if metric in HIGHER_IS_BETTER:
        return quality >= target
    return quality <= target


def sanitize_document(doc: dict) -> dict:
    """A response-ready copy of a cache entry document.

    Drops ``compute_seconds`` — the only volatile field — so the same
    result serialized by any instance, warm or cold, is byte-identical.
    """
    return {k: v for k, v in doc.items() if k != "compute_seconds"}


def canonical_json(doc) -> str:
    """The one serialization responses use (sorted keys, no whitespace)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``POST /v1/sweep`` body."""

    spec: ExperimentSpec
    configs: dict = field(default_factory=dict)  # name -> IHWConfig
    quality_target: float | None = None
    stream: bool = False

    @classmethod
    def from_document(cls, doc, max_configs: int = 0) -> "SweepRequest":
        """Parse and validate a request document (raises ProtocolError).

        ``max_configs`` > 0 bounds the per-request configuration count
        (the backpressure contract's 413 limit).
        """
        if not isinstance(doc, dict):
            raise ProtocolError("request body must be a JSON object")
        known = {
            "app", "metric", "params", "dtype", "seed", "configs",
            "config_specs", "family", "threshold", "quality_target",
            "stream",
        }
        unknown = set(doc) - known
        if unknown:
            raise ProtocolError(f"unknown request fields: {sorted(unknown)}")

        app = doc.get("app")
        if not isinstance(app, str) or not app:
            raise ProtocolError("request must name an 'app'")
        metric = doc.get("metric", DEFAULT_METRICS.get(app, "mae"))
        params = doc.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        try:
            spec = ExperimentSpec.create(
                app, metric=metric,
                dtype=doc.get("dtype", "float32"),
                seed=int(doc.get("seed", 0)),
                **params,
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(str(exc)) from None

        threshold = doc.get("threshold")
        configs = cls._parse_configs(doc, threshold)
        if not configs:
            raise ProtocolError(
                "request names no configurations; supply 'configs', "
                "'config_specs', or 'family'"
            )
        if max_configs and len(configs) > max_configs:
            raise ProtocolError(
                f"request names {len(configs)} configurations; this "
                f"instance accepts at most {max_configs} per request",
                status=413,
            )

        target = doc.get("quality_target")
        if target is not None:
            try:
                target = float(target)
            except (TypeError, ValueError):
                raise ProtocolError("'quality_target' must be a number") from None
        return cls(
            spec=spec,
            configs=configs,
            quality_target=target,
            stream=bool(doc.get("stream", False)),
        )

    @staticmethod
    def _parse_configs(doc, threshold) -> dict:
        from repro.core.adder import DEFAULT_THRESHOLD

        th = DEFAULT_THRESHOLD if threshold is None else int(threshold)
        configs: dict = {}

        family = doc.get("family")
        if family is not None:
            try:
                configs.update(config_family(family, th))
            except ValueError as exc:
                raise ProtocolError(str(exc)) from None

        specs = doc.get("config_specs", {})
        if not isinstance(specs, dict):
            raise ProtocolError("'config_specs' must be an object of "
                                "{name: spec-string}")
        for name, text in specs.items():
            if not isinstance(text, str):
                raise ProtocolError(f"config spec {name!r} must be a string")
            try:
                configs[str(name)] = parse_config_spec(text, th)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"bad config spec {name!r}: {exc}") from None

        canonicals = doc.get("configs", {})
        if not isinstance(canonicals, dict):
            raise ProtocolError("'configs' must be an object of "
                                "{name: canonical-document}")
        for name, body in canonicals.items():
            if not isinstance(body, dict):
                raise ProtocolError(f"config {name!r} must be an object")
            try:
                configs[str(name)] = IHWConfig.from_canonical(body)
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"bad config {name!r}: {exc}") from None
        return configs

    def describe(self) -> str:
        return (f"{self.spec.describe()} over "
                f"{len(self.configs)} config(s)")
