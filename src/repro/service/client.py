"""HTTP client of the sweep service (stdlib ``http.client``).

:class:`ServiceClient` is what ``repro call`` and
:func:`repro.framework.evaluate_many` (``client=`` routing) use: it
speaks the ``/v1/sweep`` protocol, retries through the service's
backpressure and fault semantics (429 + ``Retry-After``, torn
connections), and advertises its retry count in the ``X-Repro-Attempt``
header — the attempt axis deterministic service faults key on, so a
``dropped-connection:times=1`` injection disturbs exactly the first
attempt and the retry provably recovers.

Every endpoint accepts an explicit per-request ``timeout=`` overriding
the client-wide socket default — a health probe should give up in a
second while a cold sweep on the same client may wait minutes; the fleet
client leans on this for its short probes and hedge deadlines.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse

from repro import telemetry

from .protocol import canonical_json

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request that failed after exhausting retries; carries ``status``
    (0 for transport-level failures)."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Client of one sweep-service instance.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the instance.
    timeout:
        Per-request socket timeout (seconds).
    retries:
        Additional attempts after the first (429s and torn connections
        are retried; 4xx protocol errors are not).
    backoff:
        Base sleep between retries when the server sends no
        ``Retry-After`` hint.
    """

    def __init__(self, base_url: str, timeout: float = 300.0,
                 retries: int = 3, backoff: float = 0.2):
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme != "http" or not parts.netloc:
            raise ValueError(
                f"base_url must be http://host:port, got {base_url!r}"
            )
        self.base_url = f"http://{parts.netloc}"
        self.netloc = parts.netloc
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, body: bytes | None = None,
                content_type: str = "application/json",
                timeout: float | None = None) -> tuple:
        """One request with retry/backoff -> (status, headers, body bytes).

        ``timeout`` overrides the client-wide socket timeout for this
        request only (applied to connect and each read).
        """
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._delay(last_error, attempt))
            try:
                status, headers, payload = self._once(
                    method, path, body, content_type, attempt, timeout
                )
            except (OSError, http.client.HTTPException) as exc:
                telemetry.counter_inc("repro_service_client_retries_total",
                                      reason="connection")
                last_error = exc
                continue
            if status == 429:
                telemetry.counter_inc("repro_service_client_retries_total",
                                      reason="backpressure")
                last_error = ServiceError(
                    _error_text(payload) or "service is at capacity",
                    status=429,
                )
                last_error.retry_after = _retry_after(headers)
                continue
            return status, headers, payload
        raise ServiceError(
            f"{method} {path} failed after {self.retries + 1} attempts: "
            f"{last_error}",
            status=getattr(last_error, "status", 0),
        )

    def _once(self, method, path, body, content_type, attempt,
              timeout=None):
        connection = http.client.HTTPConnection(
            self.netloc,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            headers = {
                "Content-Type": content_type,
                "X-Repro-Attempt": str(attempt),
                "Connection": "close",
            }
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()

    def _delay(self, last_error, attempt) -> float:
        hinted = getattr(last_error, "retry_after", None)
        if hinted:
            return min(float(hinted), 30.0)
        return self.backoff * attempt

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self, timeout: float | None = None) -> dict:
        return self._get_json("/healthz", timeout=timeout)

    def readyz(self, timeout: float | None = None) -> dict:
        """The readiness document; 503 (not ready) is a valid answer,
        not an error — ``doc["ready"]`` carries the verdict."""
        status, _headers, payload = self.request("GET", "/readyz",
                                                 timeout=timeout)
        if status not in (200, 503):
            raise ServiceError(
                f"GET /readyz returned {status}: {_error_text(payload)}",
                status=status,
            )
        return json.loads(payload)

    def drain(self, timeout: float | None = None) -> dict:
        """``POST /drainz``: ask the node to stop admitting new work."""
        status, _headers, payload = self.request("POST", "/drainz",
                                                 timeout=timeout)
        if status != 200:
            raise ServiceError(
                f"POST /drainz returned {status}: {_error_text(payload)}",
                status=status,
            )
        return json.loads(payload)

    def undrain(self, timeout: float | None = None) -> dict:
        """``DELETE /drainz``: resume admissions."""
        status, _headers, payload = self.request("DELETE", "/drainz",
                                                 timeout=timeout)
        if status != 200:
            raise ServiceError(
                f"DELETE /drainz returned {status}: {_error_text(payload)}",
                status=status,
            )
        return json.loads(payload)

    def queuez(self, timeout: float | None = None) -> dict:
        return self._get_json("/queuez", timeout=timeout)

    def metricsz(self, timeout: float | None = None) -> str:
        status, _headers, payload = self.request("GET", "/metricsz",
                                                 timeout=timeout)
        if status != 200:
            raise ServiceError(f"/metricsz returned {status}", status=status)
        return payload.decode("utf-8")

    def _get_json(self, path: str, timeout: float | None = None) -> dict:
        status, _headers, payload = self.request("GET", path,
                                                 timeout=timeout)
        if status != 200:
            raise ServiceError(
                f"GET {path} returned {status}: {_error_text(payload)}",
                status=status,
            )
        return json.loads(payload)

    def sweep(self, app: str, *, configs=None, config_specs=None,
              family=None, params=None, metric=None, seed=0,
              threshold=None, quality_target=None,
              timeout: float | None = None) -> dict:
        """One ``POST /v1/sweep`` query -> the parsed response document.

        ``configs`` is ``{name: IHWConfig}`` (serialized canonically);
        ``config_specs``/``family`` pass the shorthand forms through.
        """
        doc = self._request_doc(app, configs, config_specs, family, params,
                                metric, seed, threshold, quality_target)
        return self.sweep_document(doc, timeout=timeout)

    def sweep_document(self, doc: dict,
                       timeout: float | None = None) -> dict:
        """``POST /v1/sweep`` with a prebuilt request document.

        The fleet client resolves configurations once and fans subsets
        of the same document out to its members through this entry.
        """
        status, _headers, payload = self.request(
            "POST", "/v1/sweep", canonical_json(doc).encode("utf-8"),
            timeout=timeout,
        )
        if status != 200:
            raise ServiceError(
                f"sweep returned {status}: {_error_text(payload)}",
                status=status,
            )
        return json.loads(payload)

    def sweep_stream(self, app: str, **kwargs):
        """Streaming variant: yields one parsed NDJSON document per line."""
        timeout = kwargs.pop("timeout", None)
        doc = self._request_doc(
            app, kwargs.pop("configs", None), kwargs.pop("config_specs", None),
            kwargs.pop("family", None), kwargs.pop("params", None),
            kwargs.pop("metric", None), kwargs.pop("seed", 0),
            kwargs.pop("threshold", None), kwargs.pop("quality_target", None),
        )
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        doc["stream"] = True
        status, _headers, payload = self.request(
            "POST", "/v1/sweep", canonical_json(doc).encode("utf-8"),
            timeout=timeout,
        )
        if status != 200:
            raise ServiceError(
                f"sweep returned {status}: {_error_text(payload)}",
                status=status,
            )
        for line in payload.decode("utf-8").splitlines():
            if line.strip():
                yield json.loads(line)

    @staticmethod
    def _request_doc(app, configs, config_specs, family, params, metric,
                     seed, threshold, quality_target) -> dict:
        doc: dict = {"app": app, "seed": int(seed)}
        if params:
            doc["params"] = dict(params)
        if metric:
            doc["metric"] = metric
        if configs:
            doc["configs"] = {
                name: cfg.canonical() for name, cfg in configs.items()
            }
        if config_specs:
            doc["config_specs"] = dict(config_specs)
        if family:
            doc["family"] = family
        if threshold is not None:
            doc["threshold"] = int(threshold)
        if quality_target is not None:
            doc["quality_target"] = float(quality_target)
        return doc

    # ------------------------------------------------------------------
    # Framework entry
    # ------------------------------------------------------------------
    def evaluate_many(self, spec, configs) -> list:
        """Full :class:`~repro.framework.Evaluation` objects via the service.

        Ensures every configuration is computed (one coalesced sweep
        request), then reconstructs validated evaluations — including the
        output arrays — by reading the instance's cache peer surface
        through :class:`~repro.runtime.HTTPCacheBackend`, so checksums
        are verified client-side exactly as for a local cache.
        """
        from repro.runtime import HTTPCacheBackend, ResultCache

        configs = list(configs)
        named = {f"cfg{i:03d}": cfg for i, cfg in enumerate(configs)}
        response = self.sweep(
            spec.app, configs=named, params=spec.params_dict(),
            metric=spec.metric, seed=spec.seed,
        )
        failures = {
            name: doc["error"]
            for name, doc in response["results"].items() if "error" in doc
        }
        if failures:
            raise ServiceError(f"service failed to evaluate: {failures}")
        remote = ResultCache(backend=HTTPCacheBackend(self.base_url))
        evaluations = []
        for name, config in named.items():
            evaluation = remote.get(spec, config)
            if evaluation is None:
                raise ServiceError(
                    f"service reported {name} computed but its cache "
                    "entry could not be fetched"
                )
            evaluations.append(evaluation)
        return evaluations


def _retry_after(headers: dict) -> float | None:
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except ValueError:
                return None
    return None


def _error_text(payload: bytes) -> str:
    try:
        return json.loads(payload).get("error", "")
    except Exception:
        return payload.decode("utf-8", "replace")[:200]
