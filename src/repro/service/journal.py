"""Crash-safe queue journal: durable record of admitted cache-miss work.

The coalescing queue holds admitted work in memory; a node that dies
mid-sweep would silently forget every item that had been admitted but not
yet delivered.  :class:`QueueJournal` closes that gap with an append-only
JSONL file next to the manifest store (``<cache dir>/manifests/``):

- ``{"op": "admit", "key": ..., "spec": ..., "config": ...}`` is
  appended (write + flush + fsync) the moment the queue admits a
  cache-miss item — the spec and config travel in their canonical JSON
  forms so the record alone can reconstruct the work.
- ``{"op": "done", "key": ...}`` is appended when the item is delivered
  (successfully or with an execution error — either way the queue is
  finished with it).

On restart, :meth:`replay` folds the log: admits without a matching done
are *orphans*.  The server checks each orphan against the result cache —
a key already present was completed by this node (the crash hit between
cache write and journal append) or by a peer answering from the shared
store, and is **not** recomputed; the rest are re-enqueued through the
normal admission path.  That is the fleet-grade extension of the sweep
manifest's guarantee: a killed node recomputes zero completed configs.

Crash-safety model: appends are single ``write`` calls of one ``\\n``-
terminated line, so the only possible damage is a torn *final* line,
which replay tolerates (unparsable lines are skipped).  Compaction —
dropping the matched admit/done pairs — rewrites the file through
:func:`repro.runtime.atomic_write_text`, the same tempfile +
``os.replace`` idiom every other durable cache artifact uses.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.runtime import atomic_write_text

__all__ = ["QueueJournal", "JOURNAL_FILENAME", "JOURNAL_VERSION"]

JOURNAL_VERSION = 1
JOURNAL_FILENAME = "queue.journal"


class QueueJournal:
    """Append-only admit/done log for one node's sweep queue.

    Parameters
    ----------
    path:
        Journal file location (created on first append).
    compact_every:
        Rewrite the file with only live (admitted, not done) records
        after this many ``done`` appends, bounding growth on long-lived
        nodes.
    """

    def __init__(self, path, compact_every: int = 512):
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.path = Path(path)
        self.compact_every = compact_every
        self._lock = threading.Lock()
        self._handle = None
        self._live: dict = {}  # key -> admit record (not yet done)
        self._dones = 0  # done records since the last compaction

    # ------------------------------------------------------------------
    # Replay (startup)
    # ------------------------------------------------------------------
    def replay(self) -> list:
        """Fold the on-disk log into the list of orphaned admit records.

        Each record is the original admit document (``key``, ``spec``,
        ``config`` in canonical form).  Unparsable lines — at most the
        torn tail of a crashed append — are skipped.  Call before the
        first append; the file itself is untouched (use :meth:`reset`
        once the orphans have been re-admitted or resolved).
        """
        try:
            text = self.path.read_text()
        except OSError:
            return []
        orphans: dict = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail line from a crashed append
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            if not isinstance(key, str) or not key:
                continue
            op = record.get("op")
            if op == "admit":
                orphans[key] = record
            elif op == "done":
                orphans.pop(key, None)
        return list(orphans.values())

    def reset(self) -> None:
        """Atomically truncate the journal (post-replay, pre-re-admission)."""
        with self._lock:
            self._close_handle()
            self._live.clear()
            self._dones = 0
            if self.path.exists():
                atomic_write_text(self.path, "")

    # ------------------------------------------------------------------
    # Appends (queue guard sites)
    # ------------------------------------------------------------------
    def admit(self, key: str, spec_doc: dict, config_doc: dict) -> None:
        """Record one admitted cache-miss item (durable before return)."""
        record = {
            "v": JOURNAL_VERSION,
            "op": "admit",
            "key": key,
            "spec": spec_doc,
            "config": config_doc,
        }
        with self._lock:
            self._live[key] = record
            self._append(record)

    def done(self, key: str) -> None:
        """Record one delivered item; compacts periodically."""
        with self._lock:
            self._live.pop(key, None)
            self._append({"v": JOURNAL_VERSION, "op": "done", "key": key})
            self._dones += 1
            if self._dones >= self.compact_every:
                self._compact()

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        """Admitted-but-undelivered record count (queue snapshot)."""
        with self._lock:
            return len(self._live)

    # ------------------------------------------------------------------
    # Internals (call with self._lock held)
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _compact(self) -> None:
        """Rewrite with only live records (atomic), then resume appending."""
        self._close_handle()
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self._live.values()
        ]
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        self._dones = 0

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
