"""Bounded work queue with request coalescing for the sweep service.

Cache misses become queue items, one per (experiment, configuration) pair,
addressed by the same content key the result cache uses.  That shared
address is what makes coalescing exact: a request for work already
in flight — queued *or* executing — attaches a waiter to the existing
item instead of enqueuing a duplicate, so N concurrent identical requests
cost exactly one computation and one cache write
(``repro_service_coalesced_total`` counts the other N-1).

Worker threads drain the queue; each pops one item, then gathers every
other pending item of the *same experiment* (up to ``batch_limit``) and
evaluates them as one :meth:`~repro.runtime.ExperimentRunner.sweep` call,
so the runner's batch-signature grouping still applies.  Results are
re-read through the cache (:meth:`~repro.runtime.cache.ResultCache.document`)
and delivered to waiters as sanitized entry documents — the identical
bytes a warm request would have been served, which is what makes service
answers bit-identical across the cold/warm/coalesced paths.

The queue is deliberately asyncio-free: waiters are plain callbacks
``(doc, error)`` invoked on the worker thread, and the HTTP layer bridges
them onto its event loop.  Backpressure is a hard bound on distinct
in-flight items — :class:`QueueFullError` carries the ``Retry-After``
hint the server turns into a 429.

Two fleet-facing extensions ride on the same admission path:

- **Durability** — when a :class:`~repro.service.journal.QueueJournal`
  is attached, every admission appends an ``admit`` record before
  :meth:`submit` returns and every delivery appends ``done``, so a node
  killed mid-sweep can replay its orphans on restart (see the journal's
  module docstring for the recovery contract).
- **Draining** — :meth:`start_draining` stops admitting *new* work
  (:class:`DrainingError` → 503) while coalescing onto in-flight items
  and warm cache reads continue; readiness (``/readyz``) flips so fleet
  placement routes around the node while it finishes what it owns.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro import telemetry
from repro.runtime import group_key, record_group

from .protocol import sanitize_document

__all__ = ["DrainingError", "QueueFullError", "SweepQueue"]


class QueueFullError(RuntimeError):
    """The queue's in-flight bound is reached; retry after a delay."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"work queue is full; retry after {retry_after:.0f}s"
        )
        self.retry_after = retry_after


class DrainingError(RuntimeError):
    """The queue is draining and admits no new work (route elsewhere)."""

    def __init__(self):
        super().__init__("queue is draining; no new work admitted")


class _Item:
    """One in-flight (spec, config) computation and its waiters."""

    __slots__ = ("key", "spec", "config", "waiters", "parent_span_id",
                 "running")

    def __init__(self, key, spec, config, parent_span_id=None):
        self.key = key
        self.spec = spec
        self.config = config
        self.waiters: list = []  # callables (doc, error) -> None
        self.parent_span_id = parent_span_id
        self.running = False


class SweepQueue:
    """Work-queue scheduler sharding misses across runner workers.

    Parameters
    ----------
    cache:
        The service's :class:`~repro.runtime.ResultCache`; results are
        written here and re-read for delivery.
    runner_factory:
        Zero-argument callable producing the
        :class:`~repro.runtime.ExperimentRunner` a worker thread uses
        (each thread builds its own — runners are not thread-safe).
    workers:
        Worker-thread count (each drains whole same-experiment batches).
    max_pending:
        Bound on distinct in-flight items; beyond it :meth:`submit`
        raises :class:`QueueFullError` (coalescing onto existing items
        is always admitted — it adds no work).
    batch_limit:
        Most same-experiment items one runner call may gather.
    retry_after:
        The backoff hint (seconds) carried by :class:`QueueFullError`.
    journal:
        Optional :class:`~repro.service.journal.QueueJournal` making
        admissions durable across a node crash.
    """

    def __init__(self, cache, runner_factory, workers: int = 1,
                 max_pending: int = 64, batch_limit: int = 16,
                 retry_after: float = 2.0, journal=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.cache = cache
        self.runner_factory = runner_factory
        self.max_pending = max_pending
        self.batch_limit = max(1, batch_limit)
        self.retry_after = retry_after
        self.journal = journal

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: deque = deque()  # _Item, FIFO
        self._inflight: dict = {}  # key -> _Item (pending or running)
        self._groups: dict = {}  # group_key -> {"hits": n, "misses": n}
        self._paused = threading.Event()
        self._paused.set()  # set = running; cleared = paused
        self._stopping = False
        self._draining = False
        self._degraded = False  # any runner finished on the inline path

        self.executions = 0  # runner.sweep calls
        self.completed = 0  # items delivered successfully
        self.failed = 0  # items delivered with an error
        self.coalesced = 0  # submits that attached to existing items

        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"sweep-queue-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side (HTTP handlers)
    # ------------------------------------------------------------------
    def submit(self, spec, config, waiter, parent_span_id=None) -> str:
        """Enqueue one (spec, config) computation, coalescing duplicates.

        ``waiter(doc, error)`` fires exactly once from a worker thread:
        with the sanitized entry document on success, or with the failure
        exception.  Returns ``"queued"`` or ``"coalesced"``.
        """
        key = self.cache.key(spec, config)
        with self._not_empty:
            item = self._inflight.get(key)
            if item is not None:
                item.waiters.append(waiter)
                self.coalesced += 1
                telemetry.counter_inc("repro_service_coalesced_total")
                return "coalesced"
            if self._stopping:
                raise RuntimeError("queue is shut down")
            if self._draining:
                telemetry.counter_inc("repro_service_rejected_total",
                                      reason="draining")
                raise DrainingError()
            if len(self._inflight) >= self.max_pending:
                telemetry.counter_inc("repro_service_rejected_total",
                                      reason="queue-full")
                raise QueueFullError(self.retry_after)
            item = _Item(key, spec, config, parent_span_id=parent_span_id)
            item.waiters.append(waiter)
            self._inflight[key] = item
            self._pending.append(item)
            if self.journal is not None:
                # Durable before submit returns: a crash after this point
                # can re-create the item from the journal alone.
                self.journal.admit(key, spec.canonical(), config.canonical())
            record_group(self._groups, group_key(config), hit=False)
            telemetry.counter_inc("repro_service_enqueued_total")
            telemetry.gauge_set("repro_service_queue_depth",
                                len(self._pending))
            self._not_empty.notify()
            return "queued"

    def record_cache_outcome(self, config, hit: bool) -> None:
        """Fold a warm-path cache outcome into the per-group accounting.

        The server calls this for requests answered without enqueuing, so
        ``/queuez`` and ``repro sweep --stats`` (which uses the same
        :func:`~repro.runtime.record_group` helper) agree on the shape.
        """
        with self._lock:
            record_group(self._groups, group_key(config), hit=hit)

    # ------------------------------------------------------------------
    # Introspection / test hooks
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/queuez`` view: depths, bounds, counters, group ledger."""
        with self._lock:
            running = sum(1 for i in self._inflight.values() if i.running)
            return {
                "pending": len(self._pending),
                "running": running,
                "inflight": len(self._inflight),
                "max_pending": self.max_pending,
                "executions": self.executions,
                "completed": self.completed,
                "failed": self.failed,
                "coalesced": self.coalesced,
                "paused": not self._paused.is_set(),
                "draining": self._draining,
                "degraded": self._degraded,
                "journal": self.journal is not None,
                "groups": {k: dict(v) for k, v in self._groups.items()},
            }

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    def start_draining(self) -> None:
        """Stop admitting new work; in-flight items run to completion."""
        with self._lock:
            self._draining = True

    def stop_draining(self) -> None:
        """Resume admissions (operator changed their mind / tests)."""
        with self._lock:
            self._draining = False

    def pause(self) -> None:
        """Hold workers before their next pop (deterministic coalescing
        tests: pause, fire N identical requests, then resume)."""
        self._paused.clear()

    def resume(self) -> None:
        self._paused.set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until nothing is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    return True
            time.sleep(0.01)
        with self._lock:
            return not self._inflight

    def shutdown(self) -> None:
        """Refuse new work and unblock idle workers (daemon threads)."""
        with self._not_empty:
            self._stopping = True
            self._not_empty.notify_all()
        self._paused.set()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        runner = self.runner_factory()
        while True:
            self._paused.wait()
            with self._not_empty:
                while not self._pending and not self._stopping:
                    self._not_empty.wait(timeout=0.5)
                    if not self._paused.is_set():
                        break
                if self._stopping:
                    return
                if not self._paused.is_set() or not self._pending:
                    continue
                batch = self._take_batch()
                telemetry.gauge_set("repro_service_queue_depth",
                                    len(self._pending))
            self._execute_batch(runner, batch)

    def _take_batch(self) -> list:
        """Pop the head item plus same-experiment followers (lock held)."""
        first = self._pending.popleft()
        first.running = True
        batch = [first]
        spec_id = first.spec
        kept: deque = deque()
        while self._pending and len(batch) < self.batch_limit:
            item = self._pending.popleft()
            if item.spec == spec_id:
                item.running = True
                batch.append(item)
            else:
                kept.append(item)
        # Items of other experiments go back in arrival order.
        self._pending.extendleft(reversed(kept))
        return batch

    def _execute_batch(self, runner, batch) -> None:
        spec = batch[0].spec
        configs = {item.key: item.config for item in batch}
        with self._lock:
            self.executions += 1
        telemetry.counter_inc("repro_service_executions_total")
        error = None
        start = time.perf_counter()
        with telemetry.span(
            "service.execute", app=spec.app, configs=len(batch)
        ) as span_doc:
            if span_doc is not None and batch[0].parent_span_id:
                # Re-parent under the span of the request that enqueued
                # the work: the trace crosses the queue boundary intact.
                span_doc["parent"] = batch[0].parent_span_id
            try:
                runner.sweep(spec, configs, batch=True)
            except Exception as exc:  # delivered to waiters, not raised
                error = exc
        telemetry.histogram_observe("repro_service_execute_seconds",
                                    time.perf_counter() - start)
        if runner.stats is not None and runner.stats.degraded:
            # The pool was lost and this sweep finished on the sequential
            # inline path.  Results stay bit-identical, but the node's
            # throughput is compromised — readiness reports it so fleet
            # placement can prefer healthy peers.
            with self._lock:
                self._degraded = True
        for item in batch:
            self._deliver(item, error)

    def _deliver(self, item, error) -> None:
        doc = None
        if error is None:
            doc = self.cache.document(item.spec, item.config)
            if doc is None:
                error = RuntimeError(
                    f"computed result for {item.key[:12]} did not land in "
                    "the cache (uncacheable output or storage failure)"
                )
            else:
                doc = sanitize_document(doc)
        with self._lock:
            self._inflight.pop(item.key, None)
            if error is None:
                self.completed += 1
            else:
                self.failed += 1
            waiters = list(item.waiters)
            item.waiters.clear()
        if self.journal is not None:
            # Both outcomes retire the item: a completed result lives in
            # the cache, and a failed one was *delivered* (the client saw
            # the error) — neither is an orphan to replay.
            self.journal.done(item.key)
        telemetry.counter_inc(
            "repro_service_items_total",
            outcome="completed" if error is None else "failed",
        )
        for waiter in waiters:
            try:
                waiter(doc, error)
            except Exception:
                # A broken waiter (e.g. its connection already dropped)
                # must not poison delivery to the remaining waiters.
                telemetry.counter_inc("repro_service_waiter_errors_total")
