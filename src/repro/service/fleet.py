"""Fleet client: N sweep-service instances behind one resilient endpoint.

The paper's power-quality sweeps are embarrassingly parallel and every
answer is a canonical cache-entry document, which makes multi-node
serving unusually safe: any node can answer any key, answers are
bit-identical wherever they were computed, and recomputing a key is
wasteful but never wrong.  :class:`FleetClient` exploits exactly those
properties:

- **Placement** is rendezvous (highest-random-weight) hashing of the
  result's *cache key* over the ready members — every client maps the
  same (spec, config) to the same node without coordination, so the
  server-side coalescing queue keeps collapsing duplicate work
  fleet-wide, and losing a member only re-routes that member's keys.
- **Health-probed member table**: members are probed on ``/readyz``
  (liveness is deliberately ignored — a draining node is alive but must
  not receive new work) with a short per-request timeout, refreshed at
  ``probe_interval``.
- **Circuit breakers** (per member): ``breaker_threshold`` consecutive
  request failures open the breaker; after ``breaker_cooldown`` seconds
  a single half-open probe request is admitted — success closes the
  breaker, failure re-opens it.  Breaker state is published on the
  ``repro_fleet_breaker_state`` gauge (0 closed / 1 half-open / 2 open).
- **Hedged retries**: when a sub-request outlives ``hedge_after``
  seconds, the same work is fired at the next member in rendezvous
  order and the first answer wins (``repro_fleet_hedges_total`` /
  ``repro_fleet_hedge_wins_total``).  Bit-identity of answers is what
  makes racing safe; the shared cache store is what makes the loser's
  effort cheap (it lands as a warm entry, not a conflict).
- **Failover**: a member that fails a sub-request is excluded and its
  configurations are re-placed over the surviving members
  (``repro_fleet_failovers_total``), which answer warm from the shared
  cache when the dead node had already computed them.

The deterministic ``partition`` fault kind (``REPRO_FAULTS``) guards
this client: matching members are treated as unreachable without a
packet leaving the box, keyed by ``host:port`` with the per-member
contact counter as the attempt axis — ``partition:match=:PORT,times=2``
refuses the first two contacts and then heals.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import threading
import time
import urllib.parse

from repro import faults, telemetry
from repro.runtime import entry_key

from .client import ServiceClient, ServiceError
from .protocol import SweepRequest

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "FleetClient",
    "FleetError",
    "rendezvous_rank",
]

#: Statuses that indict the *request*, not the member: every node would
#: answer the same way, so failover and breaker penalties don't apply.
_PERMANENT_STATUSES = frozenset({400, 404, 413})

_BREAKER_GAUGE = {"closed": 0, "half-open": 1, "open": 2}


class FleetError(RuntimeError):
    """Every eligible fleet member failed to serve the request."""


class BreakerOpen(RuntimeError):
    """A member was skipped because its circuit breaker is open."""

    def __init__(self, netloc: str):
        super().__init__(f"circuit breaker open for {netloc}")
        self.netloc = netloc


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    States: ``closed`` (normal) → ``open`` after ``threshold``
    consecutive failures → ``half-open`` once ``cooldown`` seconds have
    passed, admitting exactly one probe — whose outcome either closes or
    re-opens the breaker.  Thread-safe; ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 5.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._resolve()

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def admittable(self) -> bool:
        """Non-mutating check for placement decisions (no probe slot
        is consumed — :meth:`allow` does that at request time)."""
        with self._lock:
            state = self._resolve()
            if state == "closed":
                return True
            return state == "half-open" and not self._probing

    def allow(self) -> bool:
        """Whether a request may proceed now; in the half-open state the
        first caller takes the single probe slot."""
        with self._lock:
            state = self._resolve()
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            state = self._resolve()
            if state == "half-open":
                # The probe failed: straight back to open, restart the
                # cooldown clock.
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
                return
            self._failures += 1
            if self._failures >= self.threshold and state == "closed":
                self._state = "open"
                self._opened_at = self._clock()

    def _resolve(self) -> str:
        """Promote open -> half-open when the cooldown elapsed (lock held)."""
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown):
            self._state = "half-open"
            self._probing = False
        return self._state


def rendezvous_rank(key: str, members: list) -> list:
    """Members sorted by highest-random-weight for ``key`` (best first).

    Every client computes the same ranking from the key and the member
    identity alone — no shared state, and removing a member only
    re-routes the keys it owned (the defining property of rendezvous
    hashing).  ``members`` may be any objects with a ``netloc``
    attribute, or plain strings.
    """
    def weight(member):
        identity = getattr(member, "netloc", member)
        digest = hashlib.sha256(f"{key}|{identity}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    return sorted(members, key=lambda m: (weight(m),
                                          getattr(m, "netloc", m)),
                  reverse=True)


class _Member:
    """One fleet member: its client, breaker, and probe verdict."""

    __slots__ = ("netloc", "base_url", "client", "breaker", "ready",
                 "probed_at", "contacts")

    def __init__(self, base_url: str, client: ServiceClient,
                 breaker: CircuitBreaker):
        self.base_url = client.base_url
        self.netloc = client.netloc
        self.client = client
        self.breaker = breaker
        self.ready = True  # optimistic until the first probe says otherwise
        self.probed_at: float | None = None
        self.contacts = 0  # attempt axis of the partition fault kind


class FleetClient:
    """Client of a fleet of sweep-service instances.

    Parameters
    ----------
    members:
        Base URLs (``http://host:port`` or bare ``host:port``), one per
        instance; a comma-separated string is accepted (the CLI form).
    timeout:
        Default per-request socket timeout for sweep sub-requests.
    retries / backoff:
        Per-member :class:`ServiceClient` retry posture.  The default of
        one retry absorbs a single torn connection on-node; anything
        worse becomes a breaker failure and a fleet-level failover.
    probe_timeout / probe_interval:
        Readiness-probe socket timeout and refresh period.
    hedge_after:
        Latency deadline (seconds) after which a straggling sub-request
        is hedged to the next member in rendezvous order; ``None``
        disables hedging.
    breaker_threshold / breaker_cooldown:
        Circuit-breaker tuning (see :class:`CircuitBreaker`).
    """

    def __init__(self, members, timeout: float = 300.0,
                 retries: int = 1, backoff: float = 0.2,
                 probe_timeout: float = 2.0, probe_interval: float = 1.0,
                 hedge_after: float | None = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 5.0):
        if isinstance(members, str):
            members = [part for part in members.split(",") if part.strip()]
        urls = [_normalize_url(text) for text in members]
        if not urls:
            raise ValueError("a fleet needs at least one member")
        if len(set(urls)) != len(urls):
            raise ValueError(f"duplicate fleet members in {urls}")
        self.timeout = timeout
        self.probe_timeout = probe_timeout
        self.probe_interval = probe_interval
        self.hedge_after = hedge_after
        self._members = [
            _Member(
                url,
                ServiceClient(url, timeout=timeout, retries=retries,
                              backoff=backoff),
                CircuitBreaker(threshold=breaker_threshold,
                               cooldown=breaker_cooldown),
            )
            for url in urls
        ]
        self._lock = threading.Lock()
        for member in self._members:
            self._publish_breaker(member)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> list:
        return [member.netloc for member in self._members]

    def status(self) -> dict:
        """Per-member table: probe verdict, breaker state, contact count."""
        self._probe_members()
        return {
            member.netloc: {
                "ready": member.ready,
                "breaker": member.breaker.state,
                "contacts": member.contacts,
            }
            for member in self._members
        }

    def healthz(self) -> dict:
        """Liveness of every member (``repro call --fleet`` with no app)."""
        report = {}
        for member in self._members:
            try:
                report[member.netloc] = member.client.healthz(
                    timeout=self.probe_timeout
                )
            except Exception as exc:
                report[member.netloc] = {"status": "unreachable",
                                         "error": str(exc)}
        return report

    # ------------------------------------------------------------------
    # The sweep query
    # ------------------------------------------------------------------
    def sweep(self, app: str, *, configs=None, config_specs=None,
              family=None, params=None, metric=None, seed=0,
              threshold=None, quality_target=None,
              timeout: float | None = None) -> dict:
        """One fleet-placed sweep -> a merged response document.

        The same signature as :meth:`ServiceClient.sweep`; the response
        has the same shape plus a ``fleet`` section recording placement,
        hedges, and failovers.  Configurations are resolved locally (the
        exact server-side rules, via :class:`SweepRequest`) because
        placement needs each result's cache key before any node is
        contacted.
        """
        doc = ServiceClient._request_doc(app, configs, config_specs,
                                         family, params, metric, seed,
                                         threshold, quality_target)
        request = SweepRequest.from_document(doc)
        spec = request.spec
        base = {
            "app": spec.app,
            "metric": spec.metric,
            "dtype": spec.dtype,
            "seed": spec.seed,
            "params": spec.params_dict(),
        }
        if request.quality_target is not None:
            base["quality_target"] = request.quality_target

        self._probe_members()
        results: dict = {}
        placement: dict = {}
        target_met: dict = {}
        served = {"hits": 0, "misses": 0, "errors": 0}
        stats = {"hedges": 0, "failovers": 0}
        remaining = dict(request.configs)
        keys = {name: entry_key(spec, config)
                for name, config in remaining.items()}
        excluded: set = set()
        last_error: Exception | None = None

        # Each round places the remaining configurations over the
        # not-yet-excluded members and issues one sub-request per owner;
        # a failed owner is excluded and its keys re-placed next round.
        # len(members) rounds bound the loop: every round that makes no
        # progress excludes at least one member.
        for _round in range(len(self._members)):
            if not remaining:
                break
            groups = self._place(remaining, keys, excluded)
            if not groups:
                break
            failed, last_error = self._issue(
                groups, base, timeout, stats,
                results, placement, target_met, served, remaining,
            )
            if not failed and remaining:
                break  # no member to blame: the errors are per-config
            excluded |= failed

        if remaining and not results:
            raise FleetError(
                f"every fleet member failed to serve the request: "
                f"{last_error}"
            )
        for name in remaining:
            results[name] = {"error": f"no fleet member could serve "
                                      f"this configuration: {last_error}"}
            served["errors"] += 1

        payload = {
            "app": spec.app,
            "experiment": spec.canonical(),
            "results": results,
            "served": served,
            "fleet": {
                "members": self.members,
                "placement": placement,
                "hedges": stats["hedges"],
                "failovers": stats["failovers"],
            },
        }
        if request.quality_target is not None:
            payload["target_met"] = target_met
        return payload

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, remaining: dict, keys: dict, excluded: set) -> dict:
        """Group configurations by owner -> {netloc: (member, fallbacks,
        {name: config})}; rendezvous order per cache key."""
        candidates = [m for m in self._members if m.netloc not in excluded]
        eligible = [m for m in candidates
                    if m.ready and m.breaker.admittable()]
        if not eligible:
            # Nothing looks healthy: try every non-excluded member
            # anyway — a stale probe must not strand the request.
            eligible = candidates
        if not eligible:
            return {}  # every member excluded: nothing left to place on
        groups: dict = {}
        for name, config in remaining.items():
            ranked = rendezvous_rank(keys[name], eligible)
            owner = ranked[0]
            entry = groups.setdefault(
                owner.netloc, (owner, ranked[1:], {})
            )
            entry[2][name] = config
        return groups

    def _probe_members(self) -> None:
        now = time.monotonic()
        for member in self._members:
            if (member.probed_at is not None
                    and now - member.probed_at < self.probe_interval):
                continue
            member.probed_at = now
            try:
                doc = member.client.readyz(timeout=self.probe_timeout)
            except Exception:
                # Probe failures make the member unattractive for
                # placement; only *request* failures feed the breaker.
                member.ready = False
                continue
            member.ready = bool(doc.get("ready"))

    # ------------------------------------------------------------------
    # Sub-request fan-out
    # ------------------------------------------------------------------
    def _issue(self, groups, base, timeout, stats,
               results, placement, target_met, served, remaining):
        """Run one round of sub-requests; merge what succeeds.

        Returns (failed member netlocs, last failover error).
        """
        failed: set = set()
        last_error: Exception | None = None
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=len(groups)
        ) as pool:
            futures = {
                pool.submit(self._member_sweep, member, fallbacks,
                            dict(base), group, timeout,
                            stats): (member, group)
                for member, fallbacks, group in groups.values()
            }
            for future in concurrent.futures.as_completed(futures):
                member, group = futures[future]
                try:
                    response, served_by = future.result()
                except ServiceError as exc:
                    if exc.status in _PERMANENT_STATUSES:
                        raise  # every member would refuse identically
                    failed.add(member.netloc)
                    last_error = exc
                    self._count_failover(member, group, stats)
                    continue
                # Thread-pool futures over HTTP sub-requests: no worker
                # process exists to lose, and *any* member failure means
                # the same thing — fail over its configurations.
                # repro-lint: disable=hygiene-pool-swallow -- ThreadPoolExecutor, not a process pool
                except Exception as exc:
                    failed.add(member.netloc)
                    last_error = exc
                    self._count_failover(member, group, stats)
                    continue
                self._merge(response, served_by, group, results,
                            placement, target_met, served, remaining)
        return failed, last_error

    def _count_failover(self, member, group, stats) -> None:
        stats["failovers"] += len(group)
        telemetry.counter_inc("repro_fleet_failovers_total",
                              amount=float(len(group)),
                              member=member.netloc)

    @staticmethod
    def _merge(response, served_by, group, results, placement,
               target_met, served, remaining) -> None:
        for name in group:
            doc = response.get("results", {}).get(name)
            if doc is None:
                doc = {"error": "member response omitted this "
                                "configuration"}
            results[name] = doc
            placement[name] = served_by
            remaining.pop(name, None)
        sub = response.get("served", {})
        for field in served:
            served[field] += int(sub.get(field, 0))
        target_met.update(response.get("target_met", {}))

    def _member_sweep(self, member, fallbacks, base, group, timeout,
                      stats):
        """One sub-request with optional hedging -> (response, netloc)."""
        subdoc = dict(base)
        subdoc["configs"] = {
            name: config.canonical() for name, config in group.items()
        }
        if self.hedge_after is None or not fallbacks:
            return self._request_member(member, subdoc, timeout), \
                member.netloc
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=2)
        try:
            primary = pool.submit(self._request_member, member, subdoc,
                                  timeout)
            done, _pending = concurrent.futures.wait(
                {primary}, timeout=self.hedge_after
            )
            if primary in done:
                return primary.result(), member.netloc
            # The primary is straggling past the deadline: race the next
            # member in rendezvous order.  First answer wins — safe
            # because both would return identical canonical documents.
            hedge_member = fallbacks[0]
            with self._lock:
                # stats is shared across concurrently-issued groups.
                stats["hedges"] += 1
            telemetry.counter_inc("repro_fleet_hedges_total",
                                  member=member.netloc)
            hedge = pool.submit(self._request_member, hedge_member,
                                subdoc, timeout)
            waiting = {primary: member, hedge: hedge_member}
            last_error: Exception | None = None
            while waiting:
                done, _pending = concurrent.futures.wait(
                    set(waiting),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    winner = waiting.pop(future)
                    try:
                        response = future.result()
                    # Hedge race over thread-pool HTTP futures: a loser
                    # failing is expected, only the winner's bytes count.
                    # repro-lint: disable=hygiene-pool-swallow -- ThreadPoolExecutor, not a process pool
                    except Exception as exc:
                        last_error = exc
                        continue
                    for loser in waiting:
                        loser.cancel()  # still-queued loser never runs
                    telemetry.counter_inc(
                        "repro_fleet_hedge_wins_total",
                        winner="primary" if future is primary
                        else "hedge",
                    )
                    return response, winner.netloc
            raise last_error if last_error is not None else RuntimeError(
                "hedged request produced no outcome"
            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _request_member(self, member, subdoc, timeout):
        """One guarded request to one member (breaker + partition fault)."""
        with self._lock:
            contact = member.contacts
            member.contacts += 1
        injector = faults.active()
        if injector is not None and injector.partition(member.netloc,
                                                       contact):
            member.breaker.record_failure()
            self._publish_breaker(member)
            raise ConnectionError(
                f"injected network partition to {member.netloc}"
            )
        if not member.breaker.allow():
            raise BreakerOpen(member.netloc)
        try:
            response = member.client.sweep_document(
                subdoc, timeout=self.timeout if timeout is None else timeout
            )
        except ServiceError as exc:
            if exc.status in _PERMANENT_STATUSES:
                # The member answered; the request is at fault.  Don't
                # punish the breaker for it.
                raise
            member.breaker.record_failure()
            self._publish_breaker(member)
            raise
        member.breaker.record_success()
        self._publish_breaker(member)
        member.ready = True
        return response

    def _publish_breaker(self, member) -> None:
        telemetry.gauge_set("repro_fleet_breaker_state",
                            float(_BREAKER_GAUGE[member.breaker.state]),
                            member=member.netloc)


def _normalize_url(text: str) -> str:
    text = text.strip()
    if not text:
        raise ValueError("empty fleet member")
    if "//" not in text:
        text = f"http://{text}"
    parts = urllib.parse.urlsplit(text)
    if parts.scheme != "http" or not parts.netloc:
        raise ValueError(
            f"fleet member must be http://host:port or host:port, "
            f"got {text!r}"
        )
    return f"http://{parts.netloc}"
