"""Async HTTP server of the sweep service (stdlib asyncio streams).

``repro serve`` binds this server; the dependency posture matches the
rest of the project (no third-party HTTP stack — plain ``asyncio``
stream handling of HTTP/1.1 with ``Connection: close`` semantics, which
sidesteps keep-alive and chunked-encoding state machines entirely).

Endpoints (schema in ``docs/SERVICE.md``):

- ``POST /v1/sweep`` — the tradeoff query; warm configurations answer
  from the result cache, misses go through the coalescing work queue.
  ``"stream": true`` switches the response to NDJSON progress lines.
- ``GET /healthz`` — pure liveness: the process is up and answering.
- ``GET /readyz`` — readiness: 200 only when the node should receive
  *new* work (not draining, queue below capacity, backends healthy);
  503 otherwise, with the reasons in the body.  Fleet placement routes
  on this, never on liveness.
- ``POST /drainz`` — graceful drain: stop admitting cache-miss work,
  finish everything in flight, flip readiness.  ``DELETE /drainz``
  resumes admissions.
- ``GET /queuez`` / ``GET /metricsz`` — queue introspection (shared
  accounting with ``repro sweep --stats``) and Prometheus metrics.
- ``/cache/v1/...`` — the shared-cache peer surface consumed by
  :class:`~repro.runtime.HTTPCacheBackend`, so one instance's warm store
  can back another's reads (N boxes, one warm set).

Admitted cache-miss work is journaled (``<cache dir>/manifests/
queue.journal``) and replayed at startup: orphans already present in the
(possibly shared) cache are recovered without recomputation, the rest are
re-enqueued — see :mod:`repro.service.journal`.

Deterministic service faults (``REPRO_FAULTS`` kinds ``slow-response``,
``dropped-connection``, ``queue-full``) are injected at the request
boundary, keyed by request path with the client's ``X-Repro-Attempt``
header as the attempt axis — so ``times=N`` clauses disturb exactly the
first N attempts and provably recover on retry.  The fleet kinds
``node-crash`` and ``slow-node`` guard the same boundary keyed by
``"<host:port><path>"`` so one member of an in-process fleet can be
targeted by port (see :mod:`repro.faults`).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro import faults, telemetry
from repro.core import IHWConfig
from repro.core.backends.threads import resolve_thread_count
from repro.faults.injector import CRASH_EXIT_CODE
from repro.runtime import (
    CacheBackendError,
    DirectoryBackend,
    ExperimentRunner,
    ExperimentSpec,
    HTTPCacheBackend,
    ResultCache,
    RetryPolicy,
)
from repro.runtime.manifest import MANIFEST_DIRNAME

from .journal import QueueJournal
from .protocol import (
    ProtocolError,
    SweepRequest,
    canonical_json,
    meets_target,
    sanitize_document,
)
from .queue import DrainingError, QueueFullError, SweepQueue

__all__ = ["ServiceConfig", "SweepService", "ServerHandle",
           "serve_in_thread", "run_server"]

#: Largest accepted request body (a sweep request is a few KiB of JSON;
#: cache-peer npz payload PUTs are the big legitimate writes).
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 32 * 1024

_JSON = "application/json"
_BINARY = "application/octet-stream"


@dataclass
class ServiceConfig:
    """Tunables of one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    cache_dir: str = ".repro_cache"
    remote_cache: str | None = None  # peer base URL -> shared warm set
    max_pending: int = 64
    max_configs: int = 64  # per-request configuration bound (413 above)
    queue_workers: int = 1
    runner_workers: int = 1
    batch_limit: int = 16
    retry_after: float = 2.0
    request_timeout: float = 300.0
    journal: bool = True  # durable queue journal under cache_dir


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method, path, headers, body):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def attempt(self) -> int:
        try:
            return int(self.headers.get("x-repro-attempt", "0"))
        except ValueError:
            return 0


class SweepService:
    """The application behind the HTTP surface (transport-independent)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        if config.remote_cache:
            backend = HTTPCacheBackend(config.remote_cache)
            self.cache = ResultCache(backend=backend)
        else:
            self.cache = ResultCache(
                backend=DirectoryBackend(config.cache_dir)
            )
        #: Set by the transport once the socket is bound ("host:port");
        #: the node-targeted fault kinds key on it.
        self.node_id = ""
        self.journal = None
        orphans: list = []
        if config.journal:
            # Node-local state even when the *store* is a remote peer:
            # the journal records what this node's queue owes, and the
            # (possibly shared) cache is consulted at replay to decide
            # what still needs computing.
            self.journal = QueueJournal(
                Path(config.cache_dir) / MANIFEST_DIRNAME
                / "queue.journal"
            )
            orphans = self.journal.replay()
            self.journal.reset()
        self.queue = SweepQueue(
            cache=self.cache,
            runner_factory=self._make_runner,
            workers=config.queue_workers,
            max_pending=config.max_pending,
            batch_limit=config.batch_limit,
            retry_after=config.retry_after,
            journal=self.journal,
        )
        #: Replay accounting, surfaced by /readyz and ``repro serve``.
        self.recovered = {"complete": 0, "requeued": 0, "invalid": 0}
        if orphans:
            self._recover(orphans)
        self.started = time.time()
        # What a parallel backend would resolve to in this process: lets
        # /metricsz distinguish a service running wide from one whose
        # sweeps execute single-threaded.
        telemetry.gauge_set("repro_backend_threads",
                            resolve_thread_count())
        # npz payloads a cache peer staged ahead of the entry document
        # (the backend protocol writes npz-before-json for crash safety).
        self._staged_npz: dict = {}
        self._staged_lock = threading.Lock()

    def _recover(self, orphans: list) -> None:
        """Resolve journal orphans: cache-present keys are already done
        (computed by this node pre-crash or by a peer on the shared
        store); the rest re-enter the queue through normal admission.
        The invariant this enforces is the acceptance criterion of the
        journal: a killed node recomputes **zero** completed configs.
        """
        for record in orphans:
            try:
                spec = ExperimentSpec.from_canonical(record["spec"])
                config = IHWConfig.from_canonical(record["config"])
            except (KeyError, TypeError, ValueError):
                self.recovered["invalid"] += 1
                telemetry.counter_inc("repro_service_journal_replayed_total",
                                      outcome="invalid")
                continue
            try:
                present = self.cache.backend.contains(
                    self.cache.key(spec, config))
            except CacheBackendError:
                present = False  # unreachable peer: recompute (idempotent)
            if present:
                self.recovered["complete"] += 1
                telemetry.counter_inc("repro_service_journal_replayed_total",
                                      outcome="complete")
                continue
            self.queue.submit(spec, config, waiter=_discard_waiter)
            self.recovered["requeued"] += 1
            telemetry.counter_inc("repro_service_journal_replayed_total",
                                  outcome="requeued")

    def _make_runner(self) -> ExperimentRunner:
        # Per-queue-thread runner: inline (max_workers=1) keeps execution
        # deterministic and fork-free inside server threads; manifests
        # are disabled — the queue is its own progress authority.
        return ExperimentRunner(
            max_workers=self.config.runner_workers,
            cache=self.cache,
            policy=RetryPolicy(),
            checkpoint_every=0,
        )

    def close(self) -> None:
        self.queue.shutdown()
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(self, request: _Request, respond) -> None:
        """Dispatch one request; ``respond`` is the transport's writer."""
        path = request.path.split("?", 1)[0]
        if path == "/healthz" and request.method == "GET":
            await respond(200, self._healthz())
        elif path == "/readyz" and request.method == "GET":
            doc = self._readyz()
            await respond(200 if doc["ready"] else 503, doc)
        elif path == "/drainz" and request.method == "POST":
            self.queue.start_draining()
            telemetry.counter_inc("repro_service_requests_total",
                                  endpoint="drainz")
            snapshot = self.queue.snapshot()
            await respond(200, {
                "draining": True,
                "pending": snapshot["pending"],
                "inflight": snapshot["inflight"],
            })
        elif path == "/drainz" and request.method == "DELETE":
            self.queue.stop_draining()
            await respond(200, {"draining": False})
        elif path == "/queuez" and request.method == "GET":
            await respond(200, self.queue.snapshot())
        elif path == "/metricsz" and request.method == "GET":
            text = telemetry.get_registry().prometheus_text() + "\n"
            await respond(200, text.encode("utf-8"),
                          content_type="text/plain; charset=utf-8")
        elif path == "/v1/sweep" and request.method == "POST":
            await self._handle_sweep(request, respond)
        elif path.startswith("/cache/v1/"):
            await self._handle_cache(request, path, respond)
        else:
            await respond(404, {"error": f"no route for "
                                         f"{request.method} {path}"})

    def _healthz(self) -> dict:
        # Liveness only: "the process is up".  Everything that should
        # steer *placement* — draining, capacity, degradation — lives in
        # /readyz, so a drained node still answers health probes.
        snapshot = self.queue.snapshot()
        return {
            "status": "ok",
            "service": "repro-sweep-service",
            "uptime_seconds": round(time.time() - self.started, 3),
            "cache": str(self.cache.root),
            "pending": snapshot["pending"],
            "inflight": snapshot["inflight"],
        }

    def _readyz(self) -> dict:
        snapshot = self.queue.snapshot()
        reasons = []
        if snapshot["draining"]:
            reasons.append("draining")
        if snapshot["inflight"] >= snapshot["max_pending"]:
            reasons.append("queue-full")
        if snapshot["degraded"]:
            reasons.append("degraded-backend")
        return {
            "ready": not reasons,
            "reasons": reasons,
            "draining": snapshot["draining"],
            "degraded": snapshot["degraded"],
            "pending": snapshot["pending"],
            "inflight": snapshot["inflight"],
            "max_pending": snapshot["max_pending"],
            "recovered": dict(self.recovered),
        }

    # ------------------------------------------------------------------
    # Sweep queries
    # ------------------------------------------------------------------
    async def _handle_sweep(self, request: _Request, respond) -> None:
        try:
            body = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await respond(400, {"error": f"request body is not JSON: {exc}"})
            return
        try:
            sweep = SweepRequest.from_document(
                body, max_configs=self.config.max_configs
            )
        except ProtocolError as exc:
            await respond(exc.status, {"error": str(exc)})
            return

        loop = asyncio.get_running_loop()
        with telemetry.span(
            "service.request", app=sweep.spec.app,
            configs=len(sweep.configs),
        ) as request_span:
            parent_id = request_span["id"] if request_span else None
            hits = 0
            warm: dict = {}
            futures: dict = {}
            try:
                for name, config in sweep.configs.items():
                    # Cache reads hit the filesystem (or an HTTP peer);
                    # keep them off the event loop.
                    doc = await loop.run_in_executor(
                        None, self.cache.document, sweep.spec, config
                    )
                    if doc is not None:
                        warm[name] = sanitize_document(doc)
                        self.queue.record_cache_outcome(config, hit=True)
                        hits += 1
                        continue
                    future = loop.create_future()
                    # submit() appends to the queue journal (file IO)
                    # before returning — keep it off the event loop too.
                    await loop.run_in_executor(
                        None, self.queue.submit, sweep.spec, config,
                        _future_waiter(loop, future), parent_id,
                    )
                    futures[name] = future
            except QueueFullError as exc:
                for future in futures.values():
                    future.cancel()
                await respond(
                    429,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    headers={"Retry-After": f"{exc.retry_after:.0f}"},
                )
                return
            except DrainingError as exc:
                # The request needed new computation and this node is
                # winding down: refuse the whole sweep so the client
                # (or fleet placement) routes it to a ready peer.
                for future in futures.values():
                    future.cancel()
                await respond(503, {"error": str(exc), "draining": True})
                return
            telemetry.counter_inc("repro_service_requests_total",
                                  endpoint="sweep")
            telemetry.counter_inc("repro_service_cache_outcomes_total",
                                  outcome="hit", amount=float(hits))
            telemetry.counter_inc("repro_service_cache_outcomes_total",
                                  outcome="miss", amount=float(len(futures)))
            if sweep.stream:
                await self._respond_stream(sweep, warm, futures, respond)
            else:
                await self._respond_unary(sweep, warm, futures, respond,
                                          hits)

    async def _gather(self, futures: dict) -> tuple:
        """Await every pending future -> (results, errors) by name."""
        results: dict = {}
        errors: dict = {}
        for name, future in futures.items():
            try:
                results[name] = await asyncio.wait_for(
                    asyncio.shield(future), self.config.request_timeout
                )
            except asyncio.TimeoutError:
                errors[name] = "computation timed out"
            except Exception as exc:
                errors[name] = str(exc)
        return results, errors

    async def _respond_unary(self, sweep, warm, futures, respond,
                             hits) -> None:
        computed, errors = await self._gather(futures)
        results = {}
        for name in sweep.configs:
            if name in warm:
                results[name] = warm[name]
            elif name in computed:
                results[name] = computed[name]
            else:
                results[name] = {"error": errors[name]}
        payload = {
            "app": sweep.spec.app,
            "experiment": sweep.spec.canonical(),
            "results": results,
            "served": {
                "hits": hits,
                "misses": len(futures),
                "errors": len(errors),
            },
        }
        if sweep.quality_target is not None:
            payload["target_met"] = {
                name: meets_target(sweep.spec.metric,
                                   doc["quality"], sweep.quality_target)
                for name, doc in results.items() if "quality" in doc
            }
        await respond(200, payload)

    async def _respond_stream(self, sweep, warm, futures, respond) -> None:
        """NDJSON progress: one line per configuration, then a summary."""
        stream = await respond(200, None, content_type="application/x-ndjson",
                               stream=True)
        errors = 0
        for name in sweep.configs:
            if name in warm:
                await stream({"name": name, "status": "hit",
                              "result": warm[name]})
        for name, future in futures.items():
            try:
                doc = await asyncio.wait_for(
                    asyncio.shield(future), self.config.request_timeout
                )
                await stream({"name": name, "status": "computed",
                              "result": doc})
            except asyncio.TimeoutError:
                errors += 1
                await stream({"name": name, "status": "error",
                              "error": "computation timed out"})
            except Exception as exc:
                errors += 1
                await stream({"name": name, "status": "error",
                              "error": str(exc)})
        await stream({"done": True, "served": {
            "hits": len(warm), "misses": len(futures), "errors": errors,
        }})

    # ------------------------------------------------------------------
    # Cache peer surface
    # ------------------------------------------------------------------
    async def _handle_cache(self, request: _Request, path, respond) -> None:
        backend = self.cache.backend
        parts = path[len("/cache/v1/"):].split("/")
        method = request.method

        if parts == ["statz"] and method == "GET":
            await respond(200, {"entries": backend.entry_count()})
            return
        if not parts or not parts[0]:
            await respond(404, {"error": "missing cache key"})
            return
        key = parts[0]
        if not _valid_key(key):
            await respond(400, {"error": f"malformed cache key {key!r}"})
            return
        sub = parts[1] if len(parts) > 1 else None
        if len(parts) > 2 or sub not in (None, "npz", "lock"):
            await respond(404, {"error": f"no cache route {path!r}"})
            return

        handler = {
            (None, "GET"): self._cache_get_json,
            (None, "HEAD"): self._cache_head,
            (None, "PUT"): self._cache_put_json,
            ("npz", "GET"): self._cache_get_npz,
            ("npz", "PUT"): self._cache_put_npz,
            ("lock", "POST"): self._cache_lock,
            ("lock", "DELETE"): self._cache_unlock,
        }.get((sub, method))
        if handler is None:
            await respond(405, {"error": f"{method} not supported on {path}"})
            return
        await handler(backend, key, request, respond)

    async def _cache_get_json(self, backend, key, request, respond):
        text = backend.read_json(key)
        if text is None:
            await respond(404, {"error": "no such entry"})
        else:
            await respond(200, text.encode("utf-8"), content_type=_JSON)

    async def _cache_head(self, backend, key, request, respond):
        status = 200 if backend.contains(key) else 404
        await respond(status, b"", head=True)

    async def _cache_put_json(self, backend, key, request, respond):
        with self._staged_lock:
            npz = self._staged_npz.pop(key, None)
        backend.write_entry(key, request.body.decode("utf-8"), npz)
        telemetry.counter_inc("repro_service_peer_writes_total")
        await respond(200, {"stored": key})

    async def _cache_get_npz(self, backend, key, request, respond):
        data = backend.read_npz(key)
        if data is None:
            await respond(404, {"error": "no such payload"})
        else:
            await respond(200, data, content_type=_BINARY)

    async def _cache_put_npz(self, backend, key, request, respond):
        # Staged until the entry document lands: the backend contract
        # writes npz-before-json so a torn write can never parse.
        with self._staged_lock:
            self._staged_npz[key] = request.body
        await respond(200, {"staged": key})

    async def _cache_lock(self, backend, key, request, respond):
        if backend.acquire_lock(key):
            await respond(200, {"locked": key})
        else:
            await respond(409, {"error": "entry is locked"})

    async def _cache_unlock(self, backend, key, request, respond):
        backend.release_lock(key)
        await respond(200, {"unlocked": key})


def _valid_key(key: str) -> bool:
    return (0 < len(key) <= 64 and
            all(c in "0123456789abcdef" for c in key))


def _discard_waiter(doc, error) -> None:
    """Waiter for journal-replayed work: nobody is on the socket for it —
    the result lands in the cache, which is the whole point."""


def _future_waiter(loop, future):
    """Bridge a queue delivery (worker thread) onto the event loop."""

    def waiter(doc, error):
        def resolve():
            if future.cancelled() or future.done():
                return
            if error is not None:
                future.set_exception(
                    error if isinstance(error, Exception)
                    else RuntimeError(str(error))
                )
            else:
                future.set_result(doc)
        loop.call_soon_threadsafe(resolve)

    return waiter


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------
async def _read_request(reader) -> _Request | None:
    """Parse one HTTP/1.1 request from the stream (None on EOF/garbage)."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    except asyncio.LimitOverrunError:
        return None
    if len(header_blob) > MAX_HEADER_BYTES:
        return None
    lines = header_blob.decode("latin-1").split("\r\n")
    request_parts = lines[0].split(" ")
    if len(request_parts) != 3:
        return None
    method, path, _version = request_parts
    headers: dict = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            return None
        if n < 0 or n > MAX_BODY_BYTES:
            return None
        try:
            body = await reader.readexactly(n)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return _Request(method.upper(), path, headers, body)


def _render_response(status: int, body: bytes, content_type: str,
                     extra_headers: dict | None = None,
                     stream: bool = False, head: bool = False) -> bytes:
    reason = {
        200: "OK", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict",
        413: "Payload Too Large", 429: "Too Many Requests",
        500: "Internal Server Error", 503: "Service Unavailable",
    }.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if not stream:
        lines.append(f"Content-Length: {0 if head else len(body)}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head_bytes = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head_bytes if head else head_bytes + body


async def _handle_connection(service: SweepService, reader, writer) -> None:
    request = await _read_request(reader)
    if request is None:
        writer.close()
        return
    injector = faults.active()
    attempt = request.attempt
    responded = False

    async def respond(status, payload, content_type=None, headers=None,
                      stream=False, head=False):
        nonlocal responded
        responded = True
        if injector is not None:
            delay = injector.slow_response(request.path, attempt)
            if delay:
                await asyncio.sleep(delay)
            if injector.drop_connection(request.path, attempt):
                # Sever mid-exchange: the client sees a torn connection
                # and must retry with an incremented attempt header.
                writer.transport.abort()
                raise ConnectionResetError("injected dropped connection")
        if isinstance(payload, (dict, list)):
            body = (canonical_json(payload) + "\n").encode("utf-8")
            content_type = content_type or _JSON
        else:
            body = payload if payload is not None else b""
            content_type = content_type or _BINARY
        writer.write(_render_response(status, body, content_type,
                                      extra_headers=headers,
                                      stream=stream, head=head))
        await writer.drain()
        if stream:
            async def send_line(doc):
                writer.write(
                    (canonical_json(doc) + "\n").encode("utf-8")
                )
                await writer.drain()
            return send_line
        return None

    try:
        if injector is not None:
            # Node-targeted fleet faults: keyed by "<host:port><path>" so
            # a clause can match one member of an in-process fleet by
            # port, one endpoint by path, or both.
            node_key = f"{service.node_id}{request.path}"
            if injector.node_crash(node_key, attempt):
                # Die exactly as a power cut would: no cleanup, no
                # journal compaction, no goodbye on the socket.
                os._exit(CRASH_EXIT_CODE)
            stall = injector.slow_node(node_key, attempt)
            if stall > 0:
                await asyncio.sleep(stall)
        if injector is not None and injector.queue_full(request.path,
                                                       attempt):
            await respond(
                429,
                {"error": "injected queue-full",
                 "retry_after": service.config.retry_after},
                headers={"Retry-After":
                         f"{service.config.retry_after:.0f}"},
            )
        else:
            await service.handle(request, respond)
    except ConnectionResetError:
        pass
    except Exception as exc:  # one request must not take the server down
        telemetry.counter_inc("repro_service_errors_total")
        if not responded:
            try:
                await respond(500, {"error": f"internal error: {exc}"})
            except ConnectionResetError:
                pass
    finally:
        try:
            writer.close()
        except Exception:
            pass


class ServerHandle:
    """A running service instance (own thread + event loop)."""

    def __init__(self, service, host, port, loop, thread, server):
        self.service = service
        self.host = host
        self.port = port
        self.base_url = f"http://{host}:{port}"
        self._loop = loop
        self._thread = thread
        self._server = server

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop

        def _shutdown():
            self._server.close()
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        self._thread.join(timeout)
        self.service.close()


def serve_in_thread(config: ServiceConfig) -> ServerHandle:
    """Start a service on a daemon thread; returns once it accepts."""
    service = SweepService(config)
    started = threading.Event()
    box: dict = {}

    def runner():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def start():
            return await asyncio.start_server(
                lambda r, w: _handle_connection(service, r, w),
                config.host, config.port,
            )

        server = loop.run_until_complete(start())
        box["loop"] = loop
        box["server"] = server
        box["port"] = server.sockets[0].getsockname()[1]
        started.set()
        try:
            loop.run_forever()
        finally:
            try:
                loop.run_until_complete(server.wait_closed())
            except Exception:
                pass
            loop.close()

    thread = threading.Thread(target=runner, name="sweep-service",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("sweep service failed to start within 30s")
    service.node_id = f"{config.host}:{box['port']}"
    return ServerHandle(service, config.host, box["port"],
                        box["loop"], thread, box["server"])


def run_server(config: ServiceConfig, out=None) -> int:
    """Blocking entry point of ``repro serve`` (Ctrl-C to stop)."""
    import sys

    out = out or sys.stdout
    handle = serve_in_thread(config)
    print(f"sweep service listening on {handle.base_url} "
          f"(cache: {handle.service.cache.root})", file=out)
    recovered = handle.service.recovered
    if any(recovered.values()):
        print(f"journal replay: {recovered['complete']} complete, "
              f"{recovered['requeued']} requeued, "
              f"{recovered['invalid']} invalid", file=out)
    try:
        while handle._thread.is_alive():
            handle._thread.join(timeout=0.5)
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        handle.stop()
    return 0
