"""Sweep service: power-quality tradeoff queries as a served API.

The batch surfaces (``repro sweep``, the framework, the autotuner) answer
one process's questions; this subsystem serves *fleets* of them.  A
service instance (``repro serve``) exposes:

- ``POST /v1/sweep`` — "what does app X lose under configuration C?" —
  answered from the content-addressed result cache when warm, computed
  through a coalescing, bounded work queue when cold, optionally
  streamed as NDJSON progress;
- ``/cache/v1/...`` — the shared-cache peer surface: another instance
  pointed at this one (``--remote-cache``) reads and writes this
  instance's warm set through
  :class:`~repro.runtime.HTTPCacheBackend`, so N boxes converge on one
  cache with zero recomputation;
- ``/healthz`` / ``/readyz`` / ``/drainz`` — liveness, readiness
  (queue depth, draining, degraded backends — what fleet placement
  routes on), and graceful drain;
- ``/queuez`` / ``/metricsz`` — queue and per-signature-group
  accounting (the same ledger ``repro sweep --stats`` reports), and
  Prometheus metrics.

Across instances, :class:`FleetClient` (``repro call --fleet``) turns N
nodes into one resilient endpoint: rendezvous-hash placement by cache
key, per-member circuit breakers, hedged retries for stragglers, and
failover that re-routes a dead node's keys — while each node's durable
queue journal (:mod:`repro.service.journal`) guarantees a killed node
recomputes zero completed configs on restart.

Guarantees, in one line each:

- **Bit-identical answers**: every response document is the sanitized
  cache entry (volatile timing dropped) serialized canonically — warm,
  cold, coalesced, local, or remote paths all produce identical bytes.
- **Exactly-once compute**: identical in-flight work (by cache key)
  coalesces to one execution with all waiters notified
  (``repro_service_coalesced_total``).
- **Bounded**: the queue admits at most ``max_pending`` distinct items
  (429 + ``Retry-After`` beyond) and at most ``max_configs``
  configurations per request (413).

See ``docs/SERVICE.md`` for the schema and topology recipes.
"""

from .client import ServiceClient, ServiceError
from .fleet import (
    BreakerOpen,
    CircuitBreaker,
    FleetClient,
    FleetError,
    rendezvous_rank,
)
from .journal import JOURNAL_FILENAME, QueueJournal
from .protocol import (
    DEFAULT_METRICS,
    HIGHER_IS_BETTER,
    ProtocolError,
    SweepRequest,
    canonical_json,
    meets_target,
    sanitize_document,
)
from .queue import DrainingError, QueueFullError, SweepQueue
from .server import (
    ServerHandle,
    ServiceConfig,
    SweepService,
    run_server,
    serve_in_thread,
)

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "DEFAULT_METRICS",
    "DrainingError",
    "FleetClient",
    "FleetError",
    "HIGHER_IS_BETTER",
    "JOURNAL_FILENAME",
    "ProtocolError",
    "QueueFullError",
    "QueueJournal",
    "ServerHandle",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepQueue",
    "SweepRequest",
    "SweepService",
    "canonical_json",
    "meets_target",
    "rendezvous_rank",
    "run_server",
    "sanitize_document",
    "serve_in_thread",
]
