"""Sweep service: power-quality tradeoff queries as a served API.

The batch surfaces (``repro sweep``, the framework, the autotuner) answer
one process's questions; this subsystem serves *fleets* of them.  A
service instance (``repro serve``) exposes:

- ``POST /v1/sweep`` — "what does app X lose under configuration C?" —
  answered from the content-addressed result cache when warm, computed
  through a coalescing, bounded work queue when cold, optionally
  streamed as NDJSON progress;
- ``/cache/v1/...`` — the shared-cache peer surface: another instance
  pointed at this one (``--remote-cache``) reads and writes this
  instance's warm set through
  :class:`~repro.runtime.HTTPCacheBackend`, so N boxes converge on one
  cache with zero recomputation;
- ``/healthz`` / ``/queuez`` / ``/metricsz`` — liveness, queue and
  per-signature-group accounting (the same ledger ``repro sweep
  --stats`` reports), and Prometheus metrics.

Guarantees, in one line each:

- **Bit-identical answers**: every response document is the sanitized
  cache entry (volatile timing dropped) serialized canonically — warm,
  cold, coalesced, local, or remote paths all produce identical bytes.
- **Exactly-once compute**: identical in-flight work (by cache key)
  coalesces to one execution with all waiters notified
  (``repro_service_coalesced_total``).
- **Bounded**: the queue admits at most ``max_pending`` distinct items
  (429 + ``Retry-After`` beyond) and at most ``max_configs``
  configurations per request (413).

See ``docs/SERVICE.md`` for the schema and topology recipes.
"""

from .client import ServiceClient, ServiceError
from .protocol import (
    DEFAULT_METRICS,
    HIGHER_IS_BETTER,
    ProtocolError,
    SweepRequest,
    canonical_json,
    meets_target,
    sanitize_document,
)
from .queue import QueueFullError, SweepQueue
from .server import (
    ServerHandle,
    ServiceConfig,
    SweepService,
    run_server,
    serve_in_thread,
)

__all__ = [
    "DEFAULT_METRICS",
    "HIGHER_IS_BETTER",
    "ProtocolError",
    "QueueFullError",
    "ServerHandle",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepQueue",
    "SweepRequest",
    "SweepService",
    "canonical_json",
    "meets_target",
    "run_server",
    "sanitize_document",
    "serve_in_thread",
]
