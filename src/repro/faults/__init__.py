"""Deterministic fault-injection harness for the experiment runtime.

Armed via the ``REPRO_FAULTS`` environment variable (or the
:func:`injection` context manager, which sets it so forked pool workers
inherit the spec), queried by guard sites in ``repro.runtime``, and
exercised by the chaos suite in ``tests/test_faults.py``.  See
``docs/RELIABILITY.md`` for the spec grammar and each fault kind's
recovery path.
"""

from .injector import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    BackendFault,
    FaultClause,
    FaultError,
    FaultInjector,
    TransientFault,
    active,
    corrupt_entry,
    injection,
    stable_fraction,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "BackendFault",
    "FaultClause",
    "FaultError",
    "FaultInjector",
    "TransientFault",
    "active",
    "corrupt_entry",
    "injection",
    "stable_fraction",
]
