"""Deterministic, seeded fault injection for the experiment runtime.

The runtime's recovery paths (retry, pool rebuild, backend fallback,
cache quarantine) are only trustworthy if they are *exercised*, and real
faults are rare and nondeterministic.  This module injects them on
demand, reproducibly, from one environment knob::

    REPRO_FAULTS="crash:match=cfg03,times=1;hang:match=cfg07,seconds=30"

Grammar (clauses separated by ``;``)::

    spec    = clause (";" clause)*
    clause  = "seed=" INT                 # global pseudo-randomness seed
            | KIND [":" param ("," param)*]
    KIND    = "crash" | "hang" | "transient" | "flaky-backend"
            | "corrupt-cache" | "slow-response" | "dropped-connection"
            | "queue-full" | "node-crash" | "partition" | "slow-node"
    param   = "match=" SUBSTR             # fire only for task keys
                                          # containing SUBSTR (default: all)
            | "times=" INT                # fire on the first N attempts of
                                          # a matching task (default 1)
            | "p=" FLOAT                  # additionally gate each firing on
                                          # a seeded hash fraction < p
            | "seconds=" FLOAT            # hang duration (hang only)

Fault kinds and the recovery path each one proves:

``crash``
    ``os._exit`` inside a worker process → ``BrokenProcessPool`` → the
    runner rebuilds the pool and requeues the unfinished work.
``hang``
    ``time.sleep(seconds)`` inside a worker → the per-task deadline
    expires → the runner terminates the pool and retries the task.
``transient``
    raises :class:`TransientFault` from the task body (worker or inline)
    → per-task retry with backoff.
``flaky-backend``
    raises :class:`BackendFault` when the task's config selects a
    non-``reference`` compute backend → per-task fallback to the
    ``reference`` backend (bit-identical by the parity contract).
``corrupt-cache``
    truncates the just-written cache entry → the next read detects the
    damage, quarantines the entry, and recomputes.
``slow-response``
    the sweep service delays a response by ``seconds`` → clients observe
    latency but identical bytes (timeout handling is the client's job).
``dropped-connection``
    the sweep service closes the socket mid-response → the client
    retries with an incremented attempt counter and recovers.
``queue-full``
    the sweep service reports 429 + ``Retry-After`` as if the work queue
    were at capacity → the client backs off and retries.
``node-crash``
    a sweep-service *process* dies mid-request (``os._exit``, exactly as
    a power cut would) → the fleet client fails over to the next node in
    rendezvous order and, on restart, the node's queue journal re-enqueues
    only orphaned work.
``partition``
    the fleet client treats a member as unreachable (the request never
    leaves the box) → the member's circuit breaker opens and placement
    re-routes its keys.
``slow-node``
    a sweep service stalls ``seconds`` before *handling* each matching
    request → the fleet client's hedge deadline expires and a second
    node races to answer first.

The three service kinds guard the HTTP boundary (``repro.service``), not
worker processes; their ``key`` is the request path, and the attempt axis
is the client's retry counter (``X-Repro-Attempt``), so ``times=N``
clauses disturb the first N attempts and then let the retry succeed —
recovery is provable, not probabilistic.

The three fleet kinds extend that scheme across nodes.  ``node-crash``
and ``slow-node`` guard the server with ``key = "<host:port><path>"``
(match by port to target one member of an in-process fleet, by path to
target one endpoint); ``partition`` guards the *client* with the member's
``host:port`` as key and the client's per-member contact counter as the
attempt axis, so ``times=N`` heals the partition after N refusals.

Decisions are **deterministic**: ``crash``/``hang``/``transient``/
``flaky-backend`` fire iff ``attempt < times`` (and, when ``p`` is given,
a SHA-256 fraction of ``(seed, kind, key, attempt)`` is below ``p``) —
stateless, so forked workers and the parent agree without coordination.
``corrupt-cache`` has no attempt axis and uses a per-injector counter
instead (cache writes happen only in the parent process).

Injected faults are counted in ``repro_faults_injected_total{kind=...}``
(a ``crash`` increments before exiting, so its count dies with the
worker — the parent-side ``repro_runtime_pool_rebuilds_total`` is the
observable trace).
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro import telemetry

__all__ = [
    "FAULT_KINDS",
    "BackendFault",
    "FaultClause",
    "FaultError",
    "FaultInjector",
    "TransientFault",
    "active",
    "corrupt_entry",
    "injection",
    "stable_fraction",
]

FAULT_KINDS = (
    "crash", "hang", "transient", "flaky-backend", "corrupt-cache",
    "slow-response", "dropped-connection", "queue-full",
    "node-crash", "partition", "slow-node",
)

#: Exit code of an injected worker crash (distinguishable in core dumps
#: and CI logs from a real interpreter abort).
CRASH_EXIT_CODE = 91


class FaultError(RuntimeError):
    """Base class of every injected failure."""


class TransientFault(FaultError):
    """An injected failure that a plain retry recovers from."""


class BackendFault(FaultError):
    """An injected compute-backend failure (recovered by falling back
    to the ``reference`` backend)."""


def stable_fraction(*parts) -> float:
    """A deterministic fraction in [0, 1) derived from ``parts``."""
    payload = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultClause:
    """One armed fault: kind plus targeting parameters."""

    kind: str
    match: str = ""
    times: int = 1
    p: float | None = None
    seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")


def _parse_clause(text: str) -> FaultClause:
    kind, _, params = text.partition(":")
    kind = kind.strip()
    kwargs: dict = {}
    if params.strip():
        for param in params.split(","):
            key, sep, value = param.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key:
                raise ValueError(
                    f"bad fault parameter {param!r} in clause {text!r} "
                    "(expected key=value)"
                )
            if key == "match":
                kwargs["match"] = value
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "p":
                kwargs["p"] = float(value)
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            else:
                raise ValueError(
                    f"unknown fault parameter {key!r} in clause {text!r} "
                    "(expected match/times/p/seconds)"
                )
    return FaultClause(kind=kind, **kwargs)


class FaultInjector:
    """Parsed ``REPRO_FAULTS`` spec, queried by the runtime's guard sites.

    One injector instance is created per process (workers parse the
    inherited environment themselves) and, for the stateful
    ``corrupt-cache`` kind, per sweep in the parent.
    """

    def __init__(self, clauses, seed: int = 0, spec: str = ""):
        self.clauses = tuple(clauses)
        self.seed = seed
        self.spec = spec
        self._fired: dict = {}  # (kind, key) -> count, corrupt-cache only

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultInjector | None":
        """Parse a spec string; None when it arms nothing."""
        spec = (spec or "").strip()
        if not spec:
            return None
        clauses = []
        seed = 0
        for raw in spec.split(";"):
            text = raw.strip()
            if not text:
                continue
            if text.startswith("seed="):
                seed = int(text[len("seed="):])
                continue
            clauses.append(_parse_clause(text))
        if not clauses:
            return None
        return cls(clauses, seed=seed, spec=spec)

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------
    def _armed(self, kind: str, key: str, attempt: int):
        """The first clause of ``kind`` firing for (key, attempt), or None."""
        for clause in self.clauses:
            if clause.kind != kind:
                continue
            if clause.match and clause.match not in key:
                continue
            if attempt >= clause.times:
                continue
            if clause.p is not None and stable_fraction(
                self.seed, kind, key, attempt
            ) >= clause.p:
                continue
            return clause
        return None

    def _record(self, kind: str) -> None:
        telemetry.counter_inc("repro_faults_injected_total", kind=kind)

    # ------------------------------------------------------------------
    # Guard sites
    # ------------------------------------------------------------------
    def worker_task(self, key: str, attempt: int) -> None:
        """Worker-process guard: crash and hang faults.

        Only ever called from pool worker processes — a crash here kills
        the worker, not the experiment; the degraded sequential path
        never runs this guard, which is what makes degradation safe.
        """
        if self._armed("crash", key, attempt):
            self._record("crash")
            os._exit(CRASH_EXIT_CODE)
        clause = self._armed("hang", key, attempt)
        if clause:
            self._record("hang")
            time.sleep(clause.seconds)

    def task(self, key: str, attempt: int) -> None:
        """Process-agnostic guard: transient faults (safe inline)."""
        if self._armed("transient", key, attempt):
            self._record("transient")
            raise TransientFault(
                f"injected transient fault for task {key!r} (attempt {attempt})"
            )

    def backend(self, key: str, attempt: int, backend) -> None:
        """Backend guard: flaky-backend faults, non-reference backends only."""
        if backend in (None, "", "reference"):
            return
        if self._armed("flaky-backend", key, attempt):
            self._record("flaky-backend")
            raise BackendFault(
                f"injected {backend!r} backend fault for task {key!r} "
                f"(attempt {attempt})"
            )

    def slow_response(self, key: str, attempt: int) -> float:
        """Service guard: seconds to stall before answering (0.0 = none)."""
        clause = self._armed("slow-response", key, attempt)
        if clause:
            self._record("slow-response")
            return clause.seconds
        return 0.0

    def drop_connection(self, key: str, attempt: int) -> bool:
        """Service guard: whether to sever the connection mid-response."""
        if self._armed("dropped-connection", key, attempt):
            self._record("dropped-connection")
            return True
        return False

    def queue_full(self, key: str, attempt: int) -> bool:
        """Service guard: whether to refuse as if the queue were full."""
        if self._armed("queue-full", key, attempt):
            self._record("queue-full")
            return True
        return False

    def node_crash(self, key: str, attempt: int) -> bool:
        """Server guard: whether this *process* should die mid-request.

        The caller performs the ``os._exit`` so the guard stays testable;
        ``key`` is ``"<host:port><path>"`` (see module docstring).
        """
        if self._armed("node-crash", key, attempt):
            self._record("node-crash")
            return True
        return False

    def partition(self, key: str, attempt: int) -> bool:
        """Fleet-client guard: whether a member looks unreachable.

        ``key`` is the member's ``host:port``; ``attempt`` is the
        client's per-member contact counter.
        """
        if self._armed("partition", key, attempt):
            self._record("partition")
            return True
        return False

    def slow_node(self, key: str, attempt: int) -> float:
        """Server guard: seconds to stall before *handling* (0.0 = none).

        Unlike ``slow-response`` (which stalls a single response), a slow
        node delays every matching request — the straggler profile that
        hedged retries exist for.
        """
        clause = self._armed("slow-node", key, attempt)
        if clause:
            self._record("slow-node")
            return clause.seconds
        return 0.0

    def corrupt_cache(self, key: str) -> bool:
        """Whether to corrupt the entry just written for ``key`` (stateful)."""
        for clause in self.clauses:
            if clause.kind != "corrupt-cache":
                continue
            if clause.match and clause.match not in key:
                continue
            fired = self._fired.get(("corrupt-cache", key), 0)
            if fired >= clause.times:
                continue
            self._fired[("corrupt-cache", key)] = fired + 1
            self._record("corrupt-cache")
            return True
        return False


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def active() -> FaultInjector | None:
    """The injector armed by ``REPRO_FAULTS``, or None when unset."""
    return FaultInjector.parse(os.environ.get("REPRO_FAULTS", ""))


@contextmanager
def injection(spec: str):
    """Arm ``spec`` for this process *and* pool workers forked inside.

    Sets ``REPRO_FAULTS`` in the environment (fork-based workers inherit
    it) and restores the previous value on exit.  Yields the parent-side
    injector (None for an empty spec).
    """
    previous = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = spec
    try:
        yield active()
    finally:
        if previous is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = previous


def corrupt_entry(cache, spec, config) -> bool:
    """Truncate the persisted cache entry for (spec, config).

    Emulates bit rot / a torn write surviving on disk: the entry's JSON
    is cut to half its length, so the next ``cache.get`` fails to parse
    it, quarantines it, and forces a recompute.  Returns whether an
    entry existed to corrupt.
    """
    json_path, _npz_path = cache.entry_paths(spec, config)
    try:
        data = json_path.read_bytes()
    except OSError:
        return False
    json_path.write_bytes(data[: max(1, len(data) // 2)])
    return True
