"""Command line interface: run the paper's experiments from a shell.

Usage (after installation)::

    python -m repro list
    python -m repro info
    python -m repro characterize ifpmul --samples 100000
    python -m repro characterize lp_tr19 --samples 100000
    python -m repro evaluate hotspot --config all --rows 96 --iterations 40
    python -m repro evaluate raytracing --config rcp,add,sqrt --size 96
    python -m repro sweep-multiplier --bits 32
    python -m repro sweep hotspot --family units --workers 4
    python -m repro sensitivity raytracing --size 48
    python -m repro lint

Every command prints a plain-text report; exit code 0 on success.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]

#: Units accepted by ``--config`` beyond the unit-name list.
_CONFIG_ALIASES = ("all", "precise")


def _parse_config(spec: str, threshold: int, multiplier: str | None, sfu_mode: str):
    from repro.core import parse_config_spec

    return parse_config_spec(spec, threshold, multiplier, sfu_mode)


def _app_registry():
    """App name -> (runner factory, default quality metric, metric name)."""
    from repro.apps import cp, hotspot, raytrace, srad
    from repro.quality import mae, ssim

    def hotspot_runner(args):
        return lambda cfg: hotspot.run(cfg, args.rows, args.rows, args.iterations)

    def srad_runner(args):
        return lambda cfg: srad.run(cfg, args.rows, args.rows, args.iterations)

    def ray_runner(args):
        return lambda cfg: raytrace.run(cfg, args.size, args.size)

    def cp_runner(args):
        return lambda cfg: cp.run(cfg, grid=args.size)

    ssim_metric = lambda out, ref: ssim(out, ref, data_range=1.0)  # noqa: E731
    return {
        "hotspot": (hotspot_runner, mae, "MAE (K)"),
        "srad": (srad_runner, mae, "MAE"),
        "raytracing": (ray_runner, ssim_metric, "SSIM"),
        "cp": (cp_runner, mae, "MAE"),
    }


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_list(args, out) -> int:
    from repro.framework import EXPERIMENTS

    print(f"{'id':8s} {'bench':45s} title", file=out)
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:8s} {exp.bench:45s} {exp.title}", file=out)
    print(f"\n{len(EXPERIMENTS)} experiments; run them with "
          "`pytest benchmarks/ --benchmark-only -s`.", file=out)
    return 0


def cmd_info(args, out) -> int:
    from repro import __version__
    from repro.gpu import FERMI_GTX480
    from repro.hardware import HardwareLibrary

    print(f"repro {__version__} — Low Power GPGPU Computation with "
          "Imprecise Hardware (DAC 2014)", file=out)
    cfg = FERMI_GTX480
    print(f"\nsimulated GPU: {cfg.num_sms} SMs x {cfg.fpu_lanes} lanes @ "
          f"{cfg.clock_ghz} GHz ({cfg.peak_gflops():.0f} GFLOPS peak)", file=out)
    print("\n45 nm hardware library (paper-calibrated):", file=out)
    print(HardwareLibrary.paper_45nm().table(), file=out)
    return 0


def cmd_characterize(args, out) -> int:
    from repro.erroranalysis import (
        UNIT_CHARACTERIZATIONS,
        characterize_multiplier_config,
        characterize_unit,
    )

    dtype = np.float64 if args.double else np.float32
    if args.unit in UNIT_CHARACTERIZATIONS:
        pmf = characterize_unit(args.unit, args.samples, dtype=dtype)
    else:
        try:
            pmf = characterize_multiplier_config(
                args.unit, args.samples, dtype=dtype
            )
        except ValueError:
            known = sorted(UNIT_CHARACTERIZATIONS) + ["lp_trN", "fp_trN", "bt_N"]
            print(f"unknown unit {args.unit!r}; expected one of {known}",
                  file=sys.stderr)
            return 2
    print(pmf.format_rows(), file=out)
    print(f"\n{pmf.stats}", file=out)
    return 0


def cmd_evaluate(args, out) -> int:
    from repro.framework import PowerQualityFramework

    registry = _app_registry()
    if args.app not in registry:
        print(f"unknown app {args.app!r}; expected one of {sorted(registry)}",
              file=sys.stderr)
        return 2
    runner_factory, metric, metric_name = registry[args.app]
    try:
        config = _parse_config(args.config, args.threshold, args.multiplier,
                               args.sfu_mode)
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2

    framework = PowerQualityFramework(
        run_app=runner_factory(args), quality_metric=metric
    )
    evaluation = framework.evaluate(config)
    breakdown = framework.reference_breakdown
    print(f"application: {args.app}", file=out)
    print(f"configuration: {config.describe()}", file=out)
    print(f"quality ({metric_name}): {evaluation.quality:.5g}", file=out)
    print(f"FPU+SFU power share: {breakdown.arithmetic_share:.1%}", file=out)
    print(evaluation.savings.format_row(), file=out)
    return 0


def cmd_sweep_multiplier(args, out) -> int:
    from repro.core import MultiplierConfig
    from repro.erroranalysis import characterize_multiplier_config
    from repro.hardware import bt_fp_multiplier, dw_fp_multiplier, mitchell_fp_multiplier

    bits = args.bits
    dtype = np.float32 if bits == 32 else np.float64
    mantissa = 23 if bits == 32 else 52
    dw = dw_fp_multiplier(bits).metrics().power_mw
    truncations = sorted({0, mantissa // 4, mantissa // 2, int(mantissa * 0.82)})

    print(f"{'config':10s} {'power mW':>9s} {'reduction':>10s} {'eps_max':>9s}",
          file=out)
    for path in ("full", "log"):
        for tr in truncations:
            cfg = MultiplierConfig(path, tr)
            power = mitchell_fp_multiplier(bits, cfg).metrics().power_mw
            pmf = characterize_multiplier_config(cfg, args.samples, dtype=dtype)
            print(f"{cfg.name:10s} {power:9.3f} {dw / power:9.1f}x "
                  f"{pmf.stats.eps_max:9.2%}", file=out)
    for tr in truncations[1:]:
        power = bt_fp_multiplier(bits, tr).metrics().power_mw
        pmf = characterize_multiplier_config(f"bt_{tr}", args.samples, dtype=dtype)
        print(f"{'bt_' + str(tr):10s} {power:9.3f} {dw / power:9.1f}x "
              f"{pmf.stats.eps_max:9.2%}", file=out)
    return 0


def cmd_verify(args, out) -> int:
    from repro.core import MultiplierConfig
    from repro.hdl import cosimulate

    runs = [
        ("table1_mul", {}, 0),
        ("threshold_add", {"threshold": args.threshold}, 0),
        ("mitchell_mul", {"config": MultiplierConfig("log", 0)}, 0),
        ("mitchell_mul", {"config": MultiplierConfig("full", 0)}, 0),
    ]
    failures = 0
    for unit, kwargs, tol in runs:
        result = cosimulate(unit, args.bits, n_random=args.samples, **kwargs)
        tolerance = tol if args.bits == 32 else max(tol, 1)
        ok = result.within(tolerance)
        failures += not ok
        print(f"{result.summary()}  (tolerance {tolerance} ulp) "
              f"{'OK' if ok else 'FAIL'}", file=out)
    return 1 if failures else 0


def cmd_stalls(args, out) -> int:
    """Issue/stall breakdown of an application's representative window."""
    from repro.gpu import profile_kernel_stalls

    registry = _app_registry()
    if args.app not in registry:
        print(f"unknown app {args.app!r}; expected one of {sorted(registry)}",
              file=sys.stderr)
        return 2
    runner_factory, _metric, _name = registry[args.app]
    result = runner_factory(args)(None)
    profile = profile_kernel_stalls(result.counters)
    print(f"application: {args.app} (precise run, "
          f"{result.counters.total_scalar_ops():,} scalar ops)", file=out)
    print(profile.format_rows(), file=out)
    return 0


def cmd_sweep_app(args, out) -> int:
    """Sweep multiplier configurations over a CPU benchmark (Fig 21/Table 7)."""
    from repro.apps import art, gromacs, sphinx
    from repro.core import IHWConfig
    from repro.quality import error_percent, word_accuracy

    apps = {"art": art, "gromacs": gromacs, "sphinx": sphinx}
    if args.app not in apps:
        print(f"unknown app {args.app!r}; expected one of {sorted(apps)}",
              file=sys.stderr)
        return 2
    module = apps[args.app]
    reference = module.reference_run()

    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    print(f"application: {args.app} (precise reference computed)", file=out)
    for name in configs:
        try:
            if name.startswith("bt_"):
                cfg = IHWConfig.units("mul").with_multiplier(
                    "truncated", truncation=int(name[3:])
                )
            else:
                cfg = IHWConfig.units("mul").with_multiplier("mitchell", config=name)
        except ValueError as exc:
            print(f"bad configuration {name!r}: {exc}", file=sys.stderr)
            return 2
        result = module.run(cfg)
        if args.app == "art":
            obj, _loc, vigilance = result.output
            print(f"{name:10s} recognized={obj:12s} vigilance={vigilance:.4f}",
                  file=out)
        elif args.app == "gromacs":
            err = error_percent(result.output[0], reference.output[0])
            verdict = "PASS" if err < 1.25 else "FAIL"
            print(f"{name:10s} energy err={err:7.3f}%  {verdict} (1.25% line)",
                  file=out)
        else:
            correct, total = word_accuracy(result.output, reference.extras["truth"])
            print(f"{name:10s} words recognized={correct}/{total}", file=out)
    return 0


#: Spec parameters and quality metric per sweepable application.
_SWEEP_APPS = {
    "hotspot": ("mae", lambda a: {"rows": a.rows, "cols": a.rows,
                                  "iterations": a.iterations}),
    "srad": ("mae", lambda a: {"rows": a.rows, "cols": a.rows,
                               "iterations": a.iterations}),
    "raytracing": ("ssim", lambda a: {"width": a.size, "height": a.size}),
    "cp": ("mae", lambda a: {"grid": a.size}),
}


def _sweep_family(family: str, threshold: int):
    from repro.core import config_family

    return config_family(family, threshold)


def cmd_sweep(args, out) -> int:
    """Parallel, cached sweep of one application over many configurations."""
    import json as _json

    from repro import telemetry
    from repro.runtime import (ExperimentRunner, ExperimentSpec, ResultCache,
                               RetryPolicy, TaskFailedError)

    if args.app not in _SWEEP_APPS:
        print(f"unknown app {args.app!r}; expected one of {sorted(_SWEEP_APPS)}",
              file=sys.stderr)
        return 2
    metric, params_for = _SWEEP_APPS[args.app]
    spec = ExperimentSpec.create(args.app, metric=metric, **params_for(args))

    try:
        if args.configs:
            configs = {
                part.strip(): _parse_config(part.strip(), args.threshold,
                                            None, "linear")
                for part in args.configs.split("|") if part.strip()
            }
        else:
            configs = _sweep_family(args.family, args.threshold)
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    if not configs:
        print("no configurations to sweep", file=sys.stderr)
        return 2

    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = "auto"
    try:
        policy = RetryPolicy(max_retries=args.retries,
                             task_timeout=args.task_timeout)
    except ValueError as exc:
        print(f"bad retry policy: {exc}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(max_workers=args.workers, cache=cache,
                              policy=policy,
                              checkpoint_every=args.checkpoint_every)
    if args.resume and runner.cache is None:
        print("--resume needs the result cache; drop --no-cache",
              file=sys.stderr)
        return 2
    try:
        results = runner.sweep(spec, configs, resume=args.resume,
                               batch=not args.no_batch)
    except TaskFailedError as exc:
        # Completed work is already checkpointed (cache + manifest);
        # tell the operator how to pick it back up.
        print(f"sweep failed: {exc}", file=sys.stderr)
        print(f"{runner.stats.summary()}", file=sys.stderr)
        print("completed configurations are checkpointed; rerun with "
              "--resume to continue", file=sys.stderr)
        return 1
    stats = runner.stats

    cached_names = {t.name for t in stats.tasks if t.cached}
    print(f"application: {spec.describe()}", file=out)
    print(f"{'config':24s} {'quality':>10s} {'holistic':>9s} {'arith':>9s} "
          f"{'source':>7s}", file=out)
    for name, ev in results.items():
        source = "cache" if name in cached_names else "run"
        print(f"{name:24s} {ev.quality:10.5g} "
              f"{ev.savings.system_savings:9.2%} "
              f"{ev.savings.arithmetic_savings:9.2%} {source:>7s}", file=out)
    print(f"\n{stats.summary()}", file=out)
    if args.stats:
        doc = stats.to_dict()
        print("\nrunner stats:", file=out)
        for field in ("wall_seconds", "compute_seconds", "mean_task_seconds",
                      "speedup_vs_sequential", "max_workers", "chunk_size",
                      "n_tasks", "cache_hits", "cache_misses", "hit_rate",
                      "retries", "fallbacks", "timeouts", "pool_rebuilds",
                      "degraded", "resumed_skipped"):
            print(f"  {field:24s} {doc[field]}", file=out)
        for note in doc["notes"]:
            print(f"  note: {note}", file=out)
        if doc["signature_groups"]:
            # Same per-group ledger the sweep service's /queuez reports.
            print(f"  {'signature group':40s} {'hits':>5s} {'misses':>7s}",
                  file=out)
            for group, counts in sorted(doc["signature_groups"].items()):
                print(f"  {group:40s} {counts['hits']:5d} "
                      f"{counts['misses']:7d}", file=out)
        print(f"  {'task':24s} {'seconds':>9s} source", file=out)
        for task in doc["tasks"]:
            source = "cache" if task["cached"] else "run"
            detail = ""
            if task["attempts"] > 1:
                detail += f" attempts={task['attempts']}"
            if task["fallback"]:
                detail += " fallback=reference"
            print(f"  {task['name']:24s} {task['seconds']:9.3f} {source}"
                  f"{detail}", file=out)
        if telemetry.metrics_enabled():
            # The flush path only exists when telemetry is on; with it off
            # this section would point at a directory nothing writes to.
            print(f"  {'telemetry_mode':24s} {telemetry.telemetry_mode()}",
                  file=out)
            print(f"  {'telemetry_flush_path':24s} {telemetry.telemetry_dir()}",
                  file=out)
    if runner.cache is not None:
        print(f"cache: {runner.cache.root} "
              f"({runner.cache.entry_count()} entries)", file=out)

    if args.json:
        payload = {
            "spec": spec.canonical(),
            "results": {
                name: {
                    "config": ev.config.describe(),
                    "quality": ev.quality,
                    "system_savings": ev.savings.system_savings,
                    "arithmetic_savings": ev.savings.arithmetic_savings,
                    "cached": name in cached_names,
                }
                for name, ev in results.items()
            },
            "stats": stats.to_dict(),
            "speedup_vs_sequential": stats.speedup_vs_sequential,
        }
        if telemetry.metrics_enabled():
            payload["telemetry"] = {
                "mode": telemetry.telemetry_mode(),
                "flush_path": str(telemetry.telemetry_dir()),
            }
        with open(args.json, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {args.json}", file=out)
    return 0


def cmd_serve(args, out) -> int:
    """Run a sweep-service instance (docs/SERVICE.md)."""
    from repro.service import ServiceConfig, run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        remote_cache=args.remote_cache,
        max_pending=args.max_pending,
        max_configs=args.max_configs,
        queue_workers=args.queue_workers,
        runner_workers=args.runner_workers,
        batch_limit=args.batch_limit,
        retry_after=args.retry_after,
        journal=not args.no_journal,
    )
    return run_server(config, out=out)


def cmd_call(args, out) -> int:
    """Query a sweep-service instance (client side of ``repro serve``)."""
    import json as _json
    import time as _time

    from repro.service import (
        FleetClient,
        FleetError,
        ServiceClient,
        ServiceError,
    )

    if args.app not in _SWEEP_APPS:
        print(f"unknown app {args.app!r}; expected one of {sorted(_SWEEP_APPS)}",
              file=sys.stderr)
        return 2
    metric, params_for = _SWEEP_APPS[args.app]
    kwargs: dict = {
        "params": params_for(args),
        "metric": metric,
        "threshold": args.threshold,
    }
    if args.configs:
        kwargs["config_specs"] = {
            part.strip(): part.strip()
            for part in args.configs.split("|") if part.strip()
        }
    else:
        kwargs["family"] = args.family
    if args.quality_target is not None:
        kwargs["quality_target"] = args.quality_target

    if args.fleet:
        if args.stream:
            print("--stream is not supported with --fleet",
                  file=sys.stderr)
            return 2
        client = FleetClient(args.fleet, timeout=args.timeout,
                             retries=args.retries,
                             hedge_after=args.hedge_after)
    else:
        client = ServiceClient(args.url, timeout=args.timeout,
                               retries=args.retries)
    try:
        if args.stream:
            for line in client.sweep_stream(args.app,
                                            timeout=args.timeout,
                                            **kwargs):
                print(_json.dumps(line, sort_keys=True), file=out)
            return 0
        latencies = []
        response = None
        for _ in range(max(1, args.repeats)):
            start = _time.perf_counter()
            # The per-request timeout knob, explicitly: every repeat is
            # bounded on its own, not by an ambient socket default.
            response = client.sweep(args.app, timeout=args.timeout,
                                    **kwargs)
            latencies.append(_time.perf_counter() - start)
    except (ServiceError, FleetError) as exc:
        print(f"service call failed: {exc}", file=sys.stderr)
        return 1

    print(f"{'config':24s} {'quality':>10s} {'holistic':>9s} {'arith':>9s}",
          file=out)
    for name, doc in response["results"].items():
        if "error" in doc:
            print(f"{name:24s} ERROR: {doc['error']}", file=out)
            continue
        savings = doc["savings"]
        print(f"{name:24s} {doc['quality']:10.5g} "
              f"{savings['system_savings']:9.2%} "
              f"{savings['arithmetic_savings']:9.2%}", file=out)
    served = response["served"]
    print(f"\nserved: {served['hits']} hit / {served['misses']} miss"
          + (f" / {served['errors']} error" if served["errors"] else ""),
          file=out)
    if "target_met" in response:
        met = [n for n, ok in response["target_met"].items() if ok]
        print(f"quality target met by: {', '.join(met) if met else '(none)'}",
              file=out)
    if "fleet" in response:
        fleet = response["fleet"]
        extras = []
        if fleet["hedges"]:
            extras.append(f"{fleet['hedges']} hedged")
        if fleet["failovers"]:
            extras.append(f"{fleet['failovers']} failed over")
        print(f"fleet: {len(fleet['members'])} members"
              + (f" ({', '.join(extras)})" if extras else ""), file=out)
    if len(latencies) > 1:
        ordered = sorted(latencies)
        p50 = _percentile(ordered, 0.50)
        p95 = _percentile(ordered, 0.95)
        p99 = _percentile(ordered, 0.99)
        print(f"latency over {len(latencies)} calls: "
              f"p50 {p50 * 1e3:.2f} ms / p95 {p95 * 1e3:.2f} ms / "
              f"p99 {p99 * 1e3:.2f} ms", file=out)
    if args.json:
        payload = dict(response)
        if len(latencies) > 1:
            ordered = sorted(latencies)
            payload["latency_p50_seconds"] = _percentile(ordered, 0.50)
            payload["latency_p95_seconds"] = _percentile(ordered, 0.95)
            payload["latency_p99_seconds"] = _percentile(ordered, 0.99)
        with open(args.json, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"response written to {args.json}", file=out)
    return 0


def _percentile(ordered, q: float):
    """Nearest-rank percentile of an ascending-sorted non-empty list.

    ``q=0.50`` reproduces the historical p50 (``[n // 2]``) exactly, so
    the smoke benchmark's warm-latency gate keeps its semantics.
    """
    index = min(len(ordered) - 1, int(len(ordered) * q))
    return ordered[index]


def cmd_metrics(args, out) -> int:
    """Render the persisted telemetry metrics snapshot."""
    from repro import telemetry
    from repro.telemetry import MetricsRegistry

    directory = args.dir or telemetry.telemetry_dir()
    path = Path(directory) / telemetry.METRICS_FILENAME
    if not path.exists():
        print(f"no metrics snapshot at {path}; run a command with "
              "REPRO_TELEMETRY=metrics (or trace) first", file=sys.stderr)
        return 2
    registry = MetricsRegistry.from_snapshot_file(path)
    if args.format == "json":
        print(registry.to_jsonl(), file=out)
    else:
        print(registry.prometheus_text(), file=out)
    return 0


def cmd_trace(args, out) -> int:
    """Render the persisted telemetry trace as an indented span tree."""
    import json as _json

    from repro import telemetry
    from repro.telemetry import render_span_tree

    directory = args.dir or telemetry.telemetry_dir()
    path = Path(directory) / telemetry.TRACE_FILENAME
    if not path.exists():
        print(f"no trace at {path}; run a command with "
              "REPRO_TELEMETRY=trace first", file=sys.stderr)
        return 2
    spans = [
        _json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    if not spans:
        print(f"trace {path} is empty", file=sys.stderr)
        return 2
    print(render_span_tree(spans, roots_only_last=not args.all), file=out)
    return 0


def _changed_lint_paths(root: Path):
    """Package-relative paths changed vs ``merge-base HEAD origin/main``.

    Returns ``None`` (meaning: full scan) when ``root`` is not inside a
    git work tree or git itself is unavailable — ``--changed-only`` is a
    fast-path convenience, never a correctness gate.
    """
    import subprocess

    root = root.resolve()

    def git(*argv):
        try:
            return subprocess.run(
                ["git", *argv], cwd=root, capture_output=True, text=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None

    top = git("rev-parse", "--show-toplevel")
    if top is None or top.returncode != 0:
        return None
    repo = Path(top.stdout.strip())
    base = git("merge-base", "HEAD", "origin/main")
    base_ref = base.stdout.strip() if base and base.returncode == 0 \
        else "HEAD"
    diff = git("diff", "--name-only", base_ref)
    if diff is None or diff.returncode != 0:
        return None
    untracked = git("ls-files", "--others", "--exclude-standard")
    lines = diff.stdout.splitlines()
    if untracked is not None and untracked.returncode == 0:
        lines += untracked.stdout.splitlines()
    changed = set()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rel = (repo / line).resolve().relative_to(root)
        except ValueError:
            continue  # changed file outside the scanned package
        changed.add(rel.as_posix())
    return changed


def cmd_lint(args, out) -> int:
    """Contract-enforcing static analysis (see docs/ANALYSIS.md)."""
    import json as _json

    import repro
    from repro.analysis import (
        load_baseline,
        run_analysis,
        to_sarif,
        write_baseline,
    )

    root = Path(args.path) if args.path else Path(repro.__file__).parent
    if not root.is_dir():
        print(f"repro lint: package path {root} is not a directory\n"
              "usage: repro lint [--path PACKAGE_DIR]", file=sys.stderr)
        return 2
    if args.changed_only and (args.write_baseline or args.update_baseline):
        print("repro lint: --changed-only scans a subset and cannot "
              "rewrite the baseline (drop --write-baseline/"
              "--update-baseline)", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline)
    try:
        baseline = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    restrict = None
    if args.changed_only:
        restrict = _changed_lint_paths(root)
        if restrict is not None:
            restrict = {p for p in restrict if p.endswith(".py")}
    try:
        report = run_analysis(root, baseline_fingerprints=baseline,
                              restrict_paths=restrict)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if report.modules_scanned == 0:
        print(f"repro lint: no python modules found under {root}\n"
              "usage: repro lint [--path PACKAGE_DIR]", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, report.findings)
        print(f"baseline of {len(report.findings)} findings written to "
              f"{baseline_path}", file=out)
        return 0
    if args.update_baseline:
        # Keep only baselined findings that still exist: stale entries
        # are pruned, new findings are NOT silently accepted.
        kept = report.baselined_findings
        write_baseline(baseline_path, kept)
        print(f"baseline rewritten: {len(kept)} kept, "
              f"{len(report.stale_fingerprints)} stale pruned "
              f"({baseline_path})", file=out)
        if not report.ok:
            print(f"{len(report.new_findings)} new findings remain "
                  "(fix them or use --write-baseline to accept)", file=out)
        return 0 if report.ok else 1

    prefix = "" if root.name == str(root) else f"{root}/"
    if args.format == "json":
        rendered = _json.dumps(report.to_dict(), indent=2, sort_keys=True)
    elif args.format == "sarif":
        rendered = _json.dumps(to_sarif(report, path_prefix=prefix),
                               indent=2, sort_keys=True)
    else:
        rendered = report.format_text(path_prefix=prefix)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"{args.format} report written to {args.output}", file=out)
        print(report.summary(), file=out)
    else:
        print(rendered, file=out)
    return 0 if report.ok else 1


def cmd_bench(args, out) -> int:
    """Benchmark the compute backends against ``reference`` (bit-identical)."""
    import json as _json

    import numpy as np

    from repro.core.backends import available_backend_names, backend_names
    from repro.core.backends.bench import run_benchmarks
    from repro.core.backends.threads import cpu_count

    size = 65536 if args.quick else args.size
    repeats = 2 if args.quick else args.repeats
    dtype = np.float64 if args.dtype == "float64" else np.float32
    if args.threads is not None:
        if args.threads < 1:
            print(f"--threads must be >= 1, got {args.threads}",
                  file=sys.stderr)
            return 2
        cores = cpu_count()
        if args.threads > cores:
            print(f"--threads {args.threads} exceeds the {cores} core(s) "
                  "available on this machine; oversubscribing threads only "
                  f"slows the kernels down — use --threads {cores} or less",
                  file=sys.stderr)
            return 2
    if args.backends:
        names = tuple(n.strip() for n in args.backends.split(",") if n.strip())
        unknown = [n for n in names if n not in backend_names()]
        if unknown:
            print(f"unknown backend(s) {unknown}; registered: "
                  f"{backend_names()}", file=sys.stderr)
            return 2
    else:
        names = available_backend_names()

    payload = run_benchmarks(size=size, repeats=repeats, dtype=dtype,
                             backends=names, batch=args.batch,
                             parallel=args.parallel, threads=args.threads)

    failed_parity = []
    print(f"size={payload['size']} repeats={payload['repeats']} "
          f"dtype={payload['dtype']}", file=out)
    for name, entry in payload["backends"].items():
        if not entry["available"]:
            print(f"{name:<10} unavailable: {entry.get('error', '')}", file=out)
            continue
        if not entry["parity_ok"]:
            failed_parity.append(name)
            print(f"{name:<10} PARITY FAILED: "
                  f"{entry.get('parity_failures')}", file=out)
            continue
        for op, record in entry["ops"].items():
            ms = record["seconds"] * 1e3
            speedup = record.get("speedup_vs_reference")
            suffix = f"  {speedup:5.2f}x vs reference" if speedup else ""
            print(f"{name:<10} {op:<5} {ms:9.2f} ms{suffix}", file=out)

    batch_section = payload.get("batch")
    if batch_section is not None:
        if not batch_section["parity_ok"]:
            failed_parity.append("batch")
            print(f"batch      PARITY FAILED: "
                  f"{batch_section.get('parity_failures')}", file=out)
        else:
            n = batch_section["n_configs"]
            for op, record in batch_section["sweeps"].items():
                ms = record["batch_seconds"] * 1e3
                speedup = record.get("speedup")
                suffix = (f"  {speedup:5.2f}x vs per-config fused"
                          if speedup else "")
                print(f"batch      {op:<13} {ms:9.2f} ms{suffix}", file=out)
            headline = batch_section["threshold_sweep"].get("speedup")
            if headline:
                print(f"batch      {n}-config threshold sweep: "
                      f"{headline:5.2f}x vs per-config fused", file=out)

    parallel_section = payload.get("parallel")
    if parallel_section is not None:
        threads = parallel_section["threads"]
        for name, entry in parallel_section["backends"].items():
            if not entry["available"]:
                print(f"{name:<14} unavailable: {entry.get('error', '')}",
                      file=out)
                continue
            if not entry["parity_ok"]:
                failed_parity.append(name)
                print(f"{name:<14} PARITY FAILED: "
                      f"{entry.get('parity_failures')}", file=out)
                continue
            for op, record in entry["ops"].items():
                ms = record["seconds"] * 1e3
                speedup = record.get("speedup_vs_fused")
                suffix = (f"  {speedup:5.2f}x vs fused ({threads} threads)"
                          if speedup else "")
                print(f"{name:<14} {op:<17} {ms:9.2f} ms{suffix}", file=out)
            compile_seconds = entry.get("compile_seconds")
            if compile_seconds:
                total = sum(compile_seconds.values())
                print(f"{name:<14} one-time JIT compile: {total:.2f} s "
                      f"({len(compile_seconds)} kernels)", file=out)

    if failed_parity:
        print(f"parity failures in: {', '.join(failed_parity)} — "
              "no benchmark file written", file=sys.stderr)
        return 1
    if not args.no_write:
        path = Path(args.out)
        path.write_text(_json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"benchmark results written to {path}", file=out)
    return 0


def cmd_report(args, out) -> int:
    from repro.reporting import generate_report

    text = generate_report(fast=args.fast)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_sensitivity(args, out) -> int:
    from repro.erroranalysis import analyze_sensitivity
    from repro.framework import PowerQualityFramework

    registry = _app_registry()
    if args.app not in registry:
        print(f"unknown app {args.app!r}; expected one of {sorted(registry)}",
              file=sys.stderr)
        return 2
    runner_factory, metric, metric_name = registry[args.app]
    framework = PowerQualityFramework(
        run_app=runner_factory(args), quality_metric=metric
    )
    higher_is_better = args.app == "raytracing"
    report = analyze_sensitivity(
        framework.quality_evaluator(), higher_is_better=higher_is_better
    )
    print(f"application: {args.app} (metric: {metric_name})", file=out)
    print(report.format_rows(), file=out)
    print(f"\nsuggested disable order: {', '.join(report.ranking())}", file=out)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Imprecise-hardware GPGPU power-quality experiments (DAC 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible tables and figures")
    sub.add_parser("info", help="show the machine and hardware library")

    p = sub.add_parser("characterize", help="error-characterize one unit")
    p.add_argument("unit", help="unit (ifpmul, ircp, ...) or config (lp_tr19, bt_21)")
    p.add_argument("--samples", type=int, default=1 << 17)
    p.add_argument("--double", action="store_true", help="binary64 operands")

    p = sub.add_parser("evaluate", help="power-quality evaluation of an app")
    p.add_argument("app", help="hotspot | srad | raytracing | cp")
    p.add_argument("--config", default="all",
                   help="'all', 'precise', or comma-separated units")
    p.add_argument("--multiplier", default=None,
                   help="multiplier config: fp_trN / lp_trN / bt_N")
    p.add_argument("--threshold", type=int, default=8, help="adder TH")
    p.add_argument("--sfu-mode", default="linear", choices=("linear", "quadratic"))
    p.add_argument("--rows", type=int, default=64, help="grid rows (hotspot/srad)")
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--size", type=int, default=64, help="image/grid size (ray/cp)")

    p = sub.add_parser("sweep-multiplier", help="Figure-14 design-space sweep")
    p.add_argument("--bits", type=int, default=32, choices=(32, 64))
    p.add_argument("--samples", type=int, default=1 << 14)

    p = sub.add_parser("sensitivity", help="per-unit quality sensitivity of an app")
    p.add_argument("app", help="hotspot | srad | raytracing | cp")
    p.add_argument("--rows", type=int, default=48)
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--size", type=int, default=48)

    p = sub.add_parser("verify", help="co-simulate behavioral vs HDL datapaths")
    p.add_argument("--bits", type=int, default=32, choices=(32, 64))
    p.add_argument("--samples", type=int, default=2000)
    p.add_argument("--threshold", type=int, default=8)

    p = sub.add_parser("stalls", help="issue/stall breakdown of an app's kernel")
    p.add_argument("app", help="hotspot | srad | raytracing | cp")
    p.add_argument("--rows", type=int, default=48)
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--size", type=int, default=48)

    p = sub.add_parser(
        "sweep-app", help="multiplier sweep over a CPU benchmark (Fig 21/Table 7)"
    )
    p.add_argument("app", help="art | gromacs | sphinx")
    p.add_argument(
        "--configs",
        default="fp_tr0,fp_tr44,lp_tr44,bt_44,bt_49",
        help="comma-separated configurations (fp_trN / lp_trN / bt_N)",
    )

    p = sub.add_parser(
        "sweep", help="parallel cached sweep of an app over configurations"
    )
    p.add_argument("app", help="hotspot | srad | raytracing | cp")
    p.add_argument("--family", default="units",
                   choices=("units", "threshold", "multiplier"),
                   help="preset configuration family")
    p.add_argument("--configs", default=None,
                   help="pipe-separated config specs (e.g. 'all|precise|add,mul') "
                        "overriding --family")
    p.add_argument("--threshold", type=int, default=8, help="adder TH")
    p.add_argument("--rows", type=int, default=48, help="grid rows (hotspot/srad)")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--size", type=int, default=48, help="image/grid size (ray/cp)")
    p.add_argument("--workers", type=int, default=None,
                   help="process count (default: auto; 1 = sequential)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache for this run")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default .repro_cache or REPRO_CACHE_DIR)")
    p.add_argument("--json", default=None, help="also write results to a JSON file")
    p.add_argument("--stats", action="store_true",
                   help="print the detailed runner statistics after the sweep")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted sweep: skip configurations the "
                        "previous run already completed (needs the cache)")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per failing configuration (default 2)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-task deadline in seconds; hung workers are "
                        "terminated and the task retried (default: none)")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="completed tasks between sweep-manifest flushes "
                        "(0 disables checkpoint/resume manifests)")
    p.add_argument("--no-batch", action="store_true",
                   help="disable batch-compatible grouping of cache misses "
                        "(results are identical; batching only schedules "
                        "compatible configurations back-to-back)")

    p = sub.add_parser(
        "serve", help="serve power-quality tradeoff queries over HTTP"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 = ephemeral; default 8642)")
    p.add_argument("--cache-dir", default=".repro_cache",
                   help="local result-cache directory")
    p.add_argument("--remote-cache", default=None,
                   help="base URL of a peer instance to use as the shared "
                        "cache backend (e.g. http://hostA:8642)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="work-queue bound; beyond it requests get 429 + "
                        "Retry-After")
    p.add_argument("--max-configs", type=int, default=64,
                   help="per-request configuration bound (413 above)")
    p.add_argument("--queue-workers", type=int, default=1,
                   help="queue worker threads draining misses")
    p.add_argument("--runner-workers", type=int, default=1,
                   help="process count per queue worker's runner "
                        "(1 = inline, deterministic)")
    p.add_argument("--batch-limit", type=int, default=16,
                   help="most same-experiment items one runner call batches")
    p.add_argument("--retry-after", type=float, default=2.0,
                   help="Retry-After hint (seconds) on 429 responses")
    p.add_argument("--no-journal", action="store_true",
                   help="disable the durable queue journal (crash "
                        "recovery of admitted work)")

    p = sub.add_parser(
        "call", help="query a running sweep service (client of 'serve')"
    )
    p.add_argument("app", help="hotspot | srad | raytracing | cp")
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="service base URL")
    p.add_argument("--fleet", default=None,
                   help="comma-separated member URLs (host:port,...); "
                        "place the sweep across a fleet instead of --url")
    p.add_argument("--hedge-after", type=float, default=None,
                   help="with --fleet: hedge a straggling sub-request to "
                        "a second node after this many seconds")
    p.add_argument("--family", default="units",
                   choices=("units", "threshold", "multiplier"),
                   help="preset configuration family")
    p.add_argument("--configs", default=None,
                   help="pipe-separated config specs (e.g. 'all|precise') "
                        "overriding --family")
    p.add_argument("--threshold", type=int, default=8, help="adder TH")
    p.add_argument("--rows", type=int, default=48, help="grid rows (hotspot/srad)")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--size", type=int, default=48, help="image/grid size (ray/cp)")
    p.add_argument("--quality-target", type=float, default=None,
                   help="report which configurations meet this quality")
    p.add_argument("--stream", action="store_true",
                   help="print NDJSON progress lines as results complete")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-request socket timeout (seconds)")
    p.add_argument("--retries", type=int, default=3,
                   help="client retries through 429s and torn connections")
    p.add_argument("--repeats", type=int, default=1,
                   help="repeat the call N times and report p50/p95/p99 "
                        "latency (warm-path probe)")
    p.add_argument("--json", default=None,
                   help="also write the response document to a JSON file")

    p = sub.add_parser(
        "metrics", help="print the persisted telemetry metrics snapshot"
    )
    p.add_argument("--dir", default=None,
                   help="telemetry directory (default .repro_telemetry or "
                        "REPRO_TELEMETRY_DIR)")
    p.add_argument("--format", default="prometheus",
                   choices=("prometheus", "json"),
                   help="output format (default Prometheus text exposition)")

    p = sub.add_parser("trace", help="render the persisted telemetry trace")
    p.add_argument("--dir", default=None,
                   help="telemetry directory (default .repro_telemetry or "
                        "REPRO_TELEMETRY_DIR)")
    p.add_argument("--all", action="store_true",
                   help="render every recorded root span (default: last only)")

    p = sub.add_parser(
        "lint", help="contract-enforcing static analysis of the package"
    )
    p.add_argument("--path", default=None,
                   help="package directory to scan (default: the installed "
                        "repro package)")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "sarif"))
    p.add_argument("--output", default=None,
                   help="write the rendered report to a file instead of "
                        "stdout (stdout gets the one-line summary)")
    p.add_argument("--baseline", default=".repro-lint-baseline.json",
                   help="accepted-findings baseline file (need not exist)")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept the current findings into the baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline pruning stale entries "
                        "(does not accept new findings)")
    p.add_argument("--changed-only", action="store_true",
                   help="report findings only for files changed since "
                        "merge-base with origin/main (full scan outside "
                        "a git repo); the whole package is still parsed")

    p = sub.add_parser(
        "bench", help="benchmark the compute backends (parity-checked)"
    )
    p.add_argument("--size", type=int, default=1_000_000,
                   help="elements per operand vector (default 1M)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repeats; best-of is reported")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke scale: 64k elements, 2 repeats")
    p.add_argument("--dtype", default="float32", choices=("float32", "float64"))
    p.add_argument("--backends", default=None,
                   help="comma-separated backend names (default: all available)")
    p.add_argument("--out", default="BENCH_core.json",
                   help="JSON output path (default BENCH_core.json)")
    p.add_argument("--no-write", action="store_true",
                   help="print the table only, write no file")
    p.add_argument("--batch", dest="batch", action="store_true", default=True,
                   help="include the batched multi-config sweep section "
                        "(one decompose, N configs; on by default)")
    p.add_argument("--no-batch", dest="batch", action="store_false",
                   help="skip the batched sweep section")
    p.add_argument("--parallel", dest="parallel", action="store_true",
                   default=True,
                   help="include the multi-core backend section vs the "
                        "fused baseline (on by default)")
    p.add_argument("--no-parallel", dest="parallel", action="store_false",
                   help="skip the multi-core backend section")
    p.add_argument("--threads", type=int, default=None,
                   help="worker threads for the parallel backends "
                        "(default: REPRO_THREADS or the machine core "
                        "count; values above the core count are refused)")

    p = sub.add_parser("report", help="generate the full markdown report")
    p.add_argument("--fast", action="store_true", help="smoke-test scale")
    p.add_argument("--output", default=None, help="write to a file instead of stdout")

    return parser


_COMMANDS = {
    "list": cmd_list,
    "info": cmd_info,
    "characterize": cmd_characterize,
    "evaluate": cmd_evaluate,
    "sweep-multiplier": cmd_sweep_multiplier,
    "sensitivity": cmd_sensitivity,
    "verify": cmd_verify,
    "stalls": cmd_stalls,
    "sweep-app": cmd_sweep_app,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "call": cmd_call,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
    "lint": cmd_lint,
    "bench": cmd_bench,
    "report": cmd_report,
}

#: Commands that run no experiments — never flush telemetry of their own.
#: ``call`` belongs here: the experiments run (and flush) server-side.
_VIEWER_COMMANDS = ("metrics", "trace", "lint", "bench", "call")


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    With ``REPRO_TELEMETRY=metrics|trace`` every experiment-running
    command persists its buffered telemetry under the telemetry
    directory on the way out; ``repro metrics`` / ``repro trace``
    render what accumulated there.
    """
    from repro import telemetry

    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        code = _COMMANDS[args.command](args, out)
        if args.command not in _VIEWER_COMMANDS:
            written = telemetry.flush()
            for kind, path in sorted(written.items()):
                print(f"telemetry {kind} written to {path}", file=out)
    except BrokenPipeError:
        # Downstream closed early (e.g. piped into head); exit quietly.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.  Streams without a real fd
        # (captured/redirected) have nothing to redirect — skip.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return 0
    return code


if __name__ == "__main__":
    sys.exit(main())
