"""Per-operation hardware metrics library consumed by the power framework.

The Figure-12 savings algorithm needs, for every arithmetic op, the
synthesized (power, latency) of the executing unit in both the DWIP
(IEEE-754 baseline) and the IHW implementation.  :class:`HardwareLibrary`
provides that matrix from either source:

- ``HardwareLibrary.paper_45nm()`` — the paper's measured numbers
  (Table 2 ratios applied to the DWIP absolute baselines), the default for
  reproducing Tables 5-7;
- ``HardwareLibrary.analytic(bits)`` — the structural gate-level model in
  :mod:`repro.hardware.units`, used for sweeps the paper does not tabulate
  (e.g. every truncation point of Figure 14) and for cross-validation.

Multiplier variants (``table1`` / ``mitchell`` / ``truncated``) resolve to
configuration-specific metrics; the Mitchell and truncated variants always
come from the structural model, scaled into the library's DWIP-absolute
frame so the two sources compose consistently.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig, MultiplierConfig

from . import units as U
from .paper_data import DWIP_ABSOLUTE, TABLE2_NORMALIZED, UnitMetrics

__all__ = ["HardwareLibrary", "OPS"]

#: Operations with a (DWIP, IHW) implementation pair.
OPS = ("add", "sub", "mul", "fma", "div", "rcp", "rsqrt", "sqrt", "log2")

#: Table-2 unit name for each op.
_TABLE2_NAME = {
    "add": "ifpadd",
    "sub": "ifpadd",
    "mul": "ifpmul",
    "fma": "ifma",
    "div": "ifpdiv",
    "rcp": "ircp",
    "rsqrt": "irsqrt",
    "sqrt": "isqrt",
    "log2": "ilog2",
}

_ANALYTIC_DW = {
    "add": U.dw_fp_adder,
    "sub": U.dw_fp_adder,
    "mul": U.dw_fp_multiplier,
    "fma": U.dw_fma,
    "div": U.dw_fp_divider,
    "rcp": U.dw_reciprocal,
    "rsqrt": U.dw_rsqrt,
    "sqrt": U.dw_sqrt,
    "log2": U.dw_log2,
}

_ANALYTIC_IHW = {
    "add": U.ihw_fp_adder,
    "sub": U.ihw_fp_adder,
    "mul": U.ihw_fp_multiplier_table1,
    "fma": U.ihw_fma,
    "div": U.ihw_fp_divider,
    "rcp": U.ihw_reciprocal,
    "rsqrt": U.ihw_rsqrt,
    "sqrt": U.ihw_sqrt,
    "log2": U.ihw_log2,
}


class HardwareLibrary:
    """Per-op (power, latency) matrix for DWIP and IHW implementations."""

    def __init__(self, dwip: dict, ihw: dict, bits: int = 32, source: str = "paper"):
        missing = set(OPS) - set(dwip) | set(OPS) - set(ihw)
        if missing:
            raise ValueError(f"library is missing ops: {sorted(missing)}")
        self._dwip = dict(dwip)
        self._ihw = dict(ihw)
        self.bits = bits
        self.source = source

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_45nm(cls, bits: int = 32) -> "HardwareLibrary":
        """Library from the paper's reported measurements (Tables 2/3)."""
        dwip = {op: DWIP_ABSOLUTE[op].derived() for op in OPS}
        ihw = {}
        for op in OPS:
            ratio = TABLE2_NORMALIZED[_TABLE2_NAME[op]]
            base = DWIP_ABSOLUTE[op]
            ihw[op] = UnitMetrics(
                power_mw=base.power_mw * ratio.power_mw,
                latency_ns=base.latency_ns * ratio.latency_ns,
            ).derived()
        return cls(dwip, ihw, bits=bits, source="paper")

    @classmethod
    def analytic(cls, bits: int = 32) -> "HardwareLibrary":
        """Library from the structural gate-level model."""
        dwip = {op: _ANALYTIC_DW[op](bits).metrics() for op in OPS}
        ihw = {op: _ANALYTIC_IHW[op](bits).metrics() for op in OPS}
        return cls(dwip, ihw, bits=bits, source="analytic")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def dwip(self, op: str) -> UnitMetrics:
        """Metrics of the IEEE-754 (DesignWare) implementation of ``op``."""
        self._check(op)
        return self._dwip[op]

    def ihw(self, op: str, config: IHWConfig | None = None) -> UnitMetrics:
        """Metrics of the imprecise implementation of ``op``.

        For ``mul`` the result depends on the configured multiplier mode:
        ``table1`` uses the library's stored entry, while ``mitchell`` and
        ``truncated`` come from the structural model scaled into this
        library's DWIP frame.
        """
        self._check(op)
        if op != "mul" or config is None or config.multiplier_mode == "table1":
            return self._ihw[op]
        if config.multiplier_mode == "mitchell":
            return self.multiplier_metrics(config.multiplier_config)
        return self.bt_multiplier_metrics(config.multiplier_truncation)

    def metrics_for(self, op: str, config: IHWConfig) -> UnitMetrics:
        """Metrics of ``op`` under ``config`` (DWIP when the unit is off)."""
        unit_switch = "add" if op == "sub" else op
        if config.is_enabled(unit_switch):
            return self.ihw(op, config)
        return self.dwip(op)

    def _scaled_from_analytic(self, design: U.UnitDesign) -> UnitMetrics:
        """Map an analytic multiplier design into this library's frame."""
        analytic_dw = U.dw_fp_multiplier(self.bits).metrics()
        base = self._dwip["mul"]
        return UnitMetrics(
            power_mw=base.power_mw * design.metrics().power_mw / analytic_dw.power_mw,
            latency_ns=(
                base.latency_ns * design.metrics().latency_ns / analytic_dw.latency_ns
            ),
        ).derived()

    def multiplier_metrics(self, config: MultiplierConfig) -> UnitMetrics:
        """Metrics of the Mitchell multiplier at one configuration."""
        return self._scaled_from_analytic(U.mitchell_fp_multiplier(self.bits, config))

    def bt_multiplier_metrics(self, truncation: int) -> UnitMetrics:
        """Metrics of the intuitive truncation baseline ``bt_N``."""
        return self._scaled_from_analytic(U.bt_fp_multiplier(self.bits, truncation))

    def power_reduction(self, op: str, config: IHWConfig | None = None) -> float:
        """DWIP/IHW power ratio for ``op`` (e.g. ~25x for the multiplier)."""
        return self.dwip(op).power_mw / self.ihw(op, config).power_mw

    def table(self) -> str:
        """Text rendering of the full matrix (a Table-2 style report)."""
        rows = [
            f"{'op':6s} {'DW mW':>8s} {'DW ns':>6s} {'IHW mW':>8s} {'IHW ns':>7s} "
            f"{'P ratio':>8s} {'L ratio':>8s}"
        ]
        for op in OPS:
            d, i = self.dwip(op), self._ihw[op]
            rows.append(
                f"{op:6s} {d.power_mw:8.2f} {d.latency_ns:6.2f} {i.power_mw:8.3f} "
                f"{i.latency_ns:7.3f} {i.power_mw / d.power_mw:8.3f} "
                f"{i.latency_ns / d.latency_ns:8.3f}"
            )
        return "\n".join(rows)

    def _check(self, op: str):
        if op not in self._dwip:
            raise ValueError(f"unknown op {op!r}; expected one of {OPS}")


def truncation_power_sweep(path: str, truncations, bits: int = 32) -> np.ndarray:
    """Power (mW, analytic frame) across a truncation sweep (Figure 14)."""
    powers = []
    for tr in truncations:
        design = U.mitchell_fp_multiplier(bits, MultiplierConfig(path, int(tr)))
        powers.append(design.metrics().power_mw)
    return np.asarray(powers)
