"""Block-level PPA primitives for the analytic hardware model.

Each builder returns a :class:`Block` describing one datapath block:
NAND2-equivalent gate count, critical path in gate delays, and an activity
factor (relative switching density under random inputs).  Blocks compose by
summation of power/area and summation of path delays along a named critical
chain — exactly the granularity the paper's Figure-11 synthesis flow reports
at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .gates import GATE_AREA_UM2, GATE_DELAY_NS, GATE_POWER_MW, LEAKAGE_FRACTION

__all__ = [
    "Block",
    "adder",
    "ripple_adder",
    "carry_save_adder",
    "array_multiplier",
    "barrel_shifter",
    "priority_encoder",
    "leading_one_detector",
    "decoder",
    "rounding_unit",
    "mux",
    "constant_multiplier",
    "logic",
]


@dataclass(frozen=True)
class Block:
    """One datapath block in the gate-level model."""

    name: str
    gate_equivalents: float
    path_gates: float
    activity: float = 1.0
    idle: bool = False  # idle blocks burn only leakage (Figure-7 gating)

    @property
    def power_mw(self) -> float:
        """Average power under continuous random-vector operation."""
        dynamic = self.gate_equivalents * self.activity * GATE_POWER_MW
        leakage = self.gate_equivalents * GATE_POWER_MW * LEAKAGE_FRACTION
        return leakage if self.idle else dynamic + leakage

    @property
    def delay_ns(self) -> float:
        return self.path_gates * GATE_DELAY_NS

    @property
    def area_um2(self) -> float:
        return self.gate_equivalents * GATE_AREA_UM2

    def idled(self) -> "Block":
        """A copy of this block with inputs muxed to constants (leakage only)."""
        return Block(self.name, self.gate_equivalents, self.path_gates, self.activity, True)


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def adder(bits: int, name: str = "adder") -> Block:
    """Fast (carry-lookahead class) two-operand adder."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return Block(name, 7 * bits, 2 * _log2ceil(bits) + 6, activity=1.0)


def ripple_adder(bits: int, name: str = "ripple_adder") -> Block:
    """Area-minimal ripple-carry adder (long critical path)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return Block(name, 6 * bits, 2 * bits + 2, activity=1.0)


def carry_save_adder(bits: int, operands: int = 3, name: str = "csa") -> Block:
    """Carry-save adder tree reducing ``operands`` inputs plus final CPA."""
    if bits < 1 or operands < 2:
        raise ValueError("need bits >= 1 and operands >= 2")
    levels = max(1, math.ceil(math.log2(operands / 2 + 1)))
    csa_ge = 5 * bits * (operands - 2)
    final = adder(bits)
    return Block(
        name,
        csa_ge + final.gate_equivalents,
        2 * levels + final.path_gates,
        activity=1.1,
    )


def array_multiplier(n: int, m: int | None = None, name: str = "multiplier") -> Block:
    """n x m array multiplier (partial products + CSA array + final CPA)."""
    m = n if m is None else m
    if n < 1 or m < 1:
        raise ValueError("multiplier dimensions must be >= 1")
    # Array multipliers glitch: high effective activity.
    return Block(name, 7 * n * m, n + m, activity=1.55)


def truncated_array_multiplier(n: int, m: int, truncated_columns: int,
                               name: str = "trunc_multiplier") -> Block:
    """Array multiplier with the ``truncated_columns`` LSB columns removed."""
    if truncated_columns < 0 or truncated_columns > n + m:
        raise ValueError("truncated_columns out of range")
    full = 7 * n * m
    # Removing the k LSB columns removes ~k^2/2 of the n*m partial products
    # (for k <= min(n, m)); beyond that the saving saturates linearly.
    k = truncated_columns
    removed_pp = min(k * (k + 1) / 2, n * m * 0.9)
    ge = max(full - 7 * removed_pp, 7 * max(n + m - k, 2))
    return Block(name, ge, max(n + m - k, 6), activity=1.55)


def barrel_shifter(bits: int, name: str = "barrel_shifter") -> Block:
    """Full barrel shifter (log-depth mux stages)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    stages = _log2ceil(bits)
    return Block(name, 3 * bits * stages, stages + 1, activity=0.7)


def priority_encoder(bits: int, name: str = "priority_encoder") -> Block:
    """Priority encoder (the low-power LOD replacement in Figure 7)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return Block(name, 2 * bits, _log2ceil(bits) + 2, activity=0.5)


def leading_one_detector(bits: int, name: str = "lod") -> Block:
    """Classic LOD tree (Figure 6)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return Block(name, 3 * bits, _log2ceil(bits) + 3, activity=0.5)


def decoder(bits: int, name: str = "decoder") -> Block:
    """Log-to-binary decode stage of the Mitchell datapath."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return Block(name, 2 * bits, _log2ceil(bits), activity=0.5)


def rounding_unit(bits: int, name: str = "rounding") -> Block:
    """IEEE-754 rounding: 4 modes, guard/round/sticky, increment, renorm.

    Sized so rounding is ~17% of the DW FP multiplier's power, matching the
    paper's "up to 18%" citation.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return Block(name, 40 * bits, 8, activity=1.35)


def mux(bits: int, ways: int = 2, name: str = "mux") -> Block:
    """``ways``-to-1 multiplexer over a ``bits``-wide bus."""
    if bits < 1 or ways < 2:
        raise ValueError("need bits >= 1 and ways >= 2")
    return Block(name, 1.4 * bits * (ways - 1), _log2ceil(ways), activity=0.7)


def constant_multiplier(bits: int, digits: int = 4, name: str = "const_mult") -> Block:
    """Multiplication by a fixed coefficient (CSD shift-add network).

    ``digits`` is the number of non-zero signed digits of the coefficient —
    each contributes one shifted addend to a small adder tree (the linear
    SFU coefficients 1.882 / 1.1911 / 0.9846 need 4-5 digits).
    """
    if bits < 1 or digits < 1:
        raise ValueError("need bits >= 1 and digits >= 1")
    tree = carry_save_adder(bits + digits, operands=digits + 1)
    return Block(name, tree.gate_equivalents, tree.path_gates, activity=1.0)


def logic(gate_equivalents: float, path_gates: float = 2,
          activity: float = 0.5, name: str = "logic") -> Block:
    """Free-form control / flag / exception logic."""
    if gate_equivalents < 0:
        raise ValueError("gate_equivalents must be non-negative")
    return Block(name, gate_equivalents, path_gates, activity)
