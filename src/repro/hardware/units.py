"""Structural PPA models of every DWIP baseline and IHW unit.

Each function assembles a :class:`UnitDesign` from the block primitives in
:mod:`repro.hardware.blocks` — the reproduction's stand-in for the paper's
VHDL + Design Compiler + HSIM flow (Figure 11).  Power is the sum of block
powers (idle blocks burn leakage only, modeling the Figure-7 input muxing);
latency is the sum of delays along the critical chain; area is total GE.

The model's three process constants are calibrated once against Table 3
(see :mod:`repro.hardware.gates`); everything else follows from structure.
The test suite checks the resulting IHW/DWIP *ratios* against Table 2 bands
and the truncation sweeps against the Figure-14 shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MultiplierConfig

from . import blocks as B
from .paper_data import UnitMetrics

__all__ = [
    "UnitDesign",
    "dw_fp_adder",
    "ihw_fp_adder",
    "dw_fp_multiplier",
    "ihw_fp_multiplier_table1",
    "mitchell_fp_multiplier",
    "quadratic_sfu",
    "dual_mode_fp_multiplier",
    "bt_fp_multiplier",
    "dw_fp_divider",
    "dw_reciprocal",
    "dw_rsqrt",
    "dw_sqrt",
    "dw_log2",
    "dw_fma",
    "ihw_reciprocal",
    "ihw_rsqrt",
    "ihw_sqrt",
    "ihw_log2",
    "ihw_fp_divider",
    "ihw_fma",
    "mantissa_bits_for",
]


def mantissa_bits_for(bits: int) -> int:
    """Mantissa width including the implicit one (11/24/53 for fp16/32/64)."""
    if bits == 16:
        return 11
    if bits == 32:
        return 24
    if bits == 64:
        return 53
    raise ValueError(f"bits must be 16, 32, or 64, got {bits}")


def _exp_bits_for(bits: int) -> int:
    return {16: 5, 32: 8, 64: 11}[bits]


@dataclass(frozen=True)
class UnitDesign:
    """A unit as a bag of blocks plus its critical chain."""

    name: str
    blocks: tuple
    critical_chain: tuple  # block names whose delays sum to the latency

    def _block_map(self) -> dict:
        # The instance is frozen, so the name->block view is computed once
        # and stashed outside the declared (hashed/compared) fields.
        cached = self.__dict__.get("_by_name")
        if cached is None:
            cached = {blk.name: blk for blk in self.blocks}
            object.__setattr__(self, "_by_name", cached)
        return cached

    def block(self, name: str) -> B.Block:
        try:
            return self._block_map()[name]
        except KeyError:
            raise KeyError(f"{self.name} has no block named {name!r}") from None

    @property
    def power_mw(self) -> float:
        return sum(blk.power_mw for blk in self.blocks)

    @property
    def latency_ns(self) -> float:
        cached = self.__dict__.get("_latency_ns")
        if cached is not None:
            return cached
        by_name = self._block_map()
        missing = [n for n in self.critical_chain if n not in by_name]
        if missing:
            raise KeyError(f"{self.name}: critical chain references {missing}")
        latency = sum(by_name[n].delay_ns for n in self.critical_chain)
        object.__setattr__(self, "_latency_ns", latency)
        return latency

    @property
    def area_um2(self) -> float:
        return sum(blk.area_um2 for blk in self.blocks)

    def metrics(self) -> UnitMetrics:
        """Power/latency/area plus derived energy and EDP."""
        return UnitMetrics(
            power_mw=self.power_mw,
            latency_ns=self.latency_ns,
            area=self.area_um2,
        ).derived()


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------
def dw_fp_adder(bits: int = 32) -> UnitDesign:
    """IEEE-754 compliant FP adder (27-bit alignment path for fp32)."""
    p = mantissa_bits_for(bits)
    wide = p + 3  # guard/round/sticky
    parts = (
        B.logic(14 * _exp_bits_for(bits), path_gates=6, name="swap_compare"),
        B.barrel_shifter(wide, name="align_shifter"),
        B.adder(wide, name="mantissa_adder"),
        B.leading_one_detector(wide, name="norm_lod"),
        B.barrel_shifter(wide, name="norm_shifter"),
        B.rounding_unit(p // 2, name="rounding"),
        B.logic(80, name="flags"),
    )
    chain = ("swap_compare", "align_shifter", "mantissa_adder", "norm_lod",
             "norm_shifter", "rounding")
    return UnitDesign(f"DW_fp_add_{bits}", parts, chain)


def ihw_fp_adder(bits: int = 32, threshold: int = 8) -> UnitDesign:
    """Imprecise threshold adder: TH-bit shifter, (TH+1)-bit adder, no rounding."""
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    p = mantissa_bits_for(bits)
    th = threshold
    parts = (
        B.logic(14 * _exp_bits_for(bits), path_gates=6, name="swap_compare"),
        B.barrel_shifter(th, name="align_shifter"),
        B.adder(min(th + 1 + p // 4, p + 1), name="mantissa_adder"),
        B.leading_one_detector(th + 2, name="norm_lod"),
        B.mux(p, 2, name="norm_mux"),
        B.logic(60, name="flags"),
    )
    chain = ("swap_compare", "align_shifter", "mantissa_adder", "norm_lod", "norm_mux")
    return UnitDesign(f"ifpadd_{bits}_th{th}", parts, chain)


# ----------------------------------------------------------------------
# Multipliers
# ----------------------------------------------------------------------
def dw_fp_multiplier(bits: int = 32) -> UnitDesign:
    """IEEE-754 compliant FP multiplier with full mantissa array + rounding."""
    p = mantissa_bits_for(bits)
    parts = (
        B.array_multiplier(p, p, name="mantissa_multiplier"),
        B.adder(_exp_bits_for(bits) + 2, name="exponent_adder"),
        B.rounding_unit(p, name="rounding"),
        B.mux(p, 2, name="norm_mux"),
        B.logic(150, name="flags"),
    )
    chain = ("mantissa_multiplier", "rounding", "norm_mux")
    return UnitDesign(f"DW_fp_mult_{bits}", parts, chain)


def ihw_fp_multiplier_table1(bits: int = 32) -> UnitDesign:
    """Table-1 multiplier: the mantissa array becomes a (p+1)-bit adder."""
    p = mantissa_bits_for(bits)
    parts = (
        B.adder(p + 1, name="mantissa_adder"),
        B.adder(_exp_bits_for(bits) + 2, name="exponent_adder"),
        B.mux(p, 2, name="norm_mux"),
        B.logic(100, name="flags"),
    )
    chain = ("mantissa_adder", "norm_mux")
    return UnitDesign(f"ifpmul_{bits}", parts, chain)


def mitchell_fp_multiplier(
    bits: int = 32, config: MultiplierConfig = MultiplierConfig()
) -> UnitDesign:
    """Figure-7 accuracy-configurable multiplier at one configuration.

    Truncation narrows the entire MA datapath (encoders, adders, decoder)
    to ``w = p - truncation`` bits.  In log-path mode Add1 and Add3 idle
    (inputs muxed to 0: leakage only); in full-path mode all three adders
    switch.
    """
    p = mantissa_bits_for(bits)
    if config.truncation >= p:
        raise ValueError(f"truncation {config.truncation} leaves no datapath")
    w = p - config.truncation

    add1 = B.adder(w + 1, name="add1")
    add3 = B.adder(w + 2, name="add3")
    if config.path == "log":
        add1 = add1.idled()
        add3 = add3.idled()
    parts = (
        B.priority_encoder(w, name="encoder_a"),
        B.priority_encoder(w, name="encoder_b"),
        B.mux(w, 2, name="operand_mux"),
        add1,
        B.adder(w + 1, name="add2"),  # the MA log-domain adder
        B.decoder(w, name="decoder"),
        add3,
        B.adder(_exp_bits_for(bits) + 2, name="exponent_adder"),
        B.mux(p, 2, name="norm_mux"),
        B.logic(100, name="flags"),
    )
    if config.path == "log":
        chain = ("encoder_a", "operand_mux", "add2", "decoder", "norm_mux")
    else:
        chain = ("encoder_a", "operand_mux", "add2", "decoder", "add3", "norm_mux")
    return UnitDesign(f"mitchell_{bits}_{config.name}", parts, chain)


def bt_fp_multiplier(bits: int = 32, truncation: int = 0) -> UnitDesign:
    """Intuitive bit truncation baseline: smaller array, IEEE shell kept."""
    p = mantissa_bits_for(bits)
    if not 0 <= truncation < p:
        raise ValueError(f"truncation out of range: {truncation}")
    w = p - truncation
    parts = (
        B.array_multiplier(w, w, name="mantissa_multiplier"),
        B.adder(_exp_bits_for(bits) + 2, name="exponent_adder"),
        B.rounding_unit(p, name="rounding"),
        B.mux(p, 2, name="norm_mux"),
        B.logic(150, name="flags"),
    )
    chain = ("mantissa_multiplier", "rounding", "norm_mux")
    return UnitDesign(f"bt_mult_{bits}_tr{truncation}", parts, chain)


# ----------------------------------------------------------------------
# Special function units — DWIP baselines (Newton-Raphson / table driven)
# ----------------------------------------------------------------------
def _nr_iteration(p: int, index: int) -> tuple:
    """One Newton-Raphson iteration: a mantissa multiply and a subtract."""
    return (
        B.array_multiplier(p + 2, p + 2, name=f"nr_mult_{index}"),
        B.adder(p + 2, name=f"nr_add_{index}"),
    )


def dw_fp_divider(bits: int = 32) -> UnitDesign:
    """NR-based divider: table seed, two iterations, final multiply, round."""
    p = mantissa_bits_for(bits)
    parts = (
        B.logic(900, path_gates=4, activity=0.6, name="seed_table"),
        *_nr_iteration(p, 0),
        *_nr_iteration(p, 1),
        B.array_multiplier(p, p, name="final_multiplier"),
        B.rounding_unit(p, name="rounding"),
        B.logic(150, name="flags"),
    )
    chain = ("seed_table", "nr_mult_0", "nr_add_0", "nr_mult_1", "nr_add_1",
             "final_multiplier", "rounding")
    return UnitDesign(f"DW_fp_div_{bits}", parts, chain)


def dw_reciprocal(bits: int = 32) -> UnitDesign:
    """NR reciprocal: table seed plus two iterations."""
    p = mantissa_bits_for(bits)
    parts = (
        B.logic(900, path_gates=4, activity=0.6, name="seed_table"),
        *_nr_iteration(p, 0),
        *_nr_iteration(p, 1),
        B.rounding_unit(p, name="rounding"),
        B.logic(120, name="flags"),
    )
    chain = ("seed_table", "nr_mult_0", "nr_add_0", "nr_mult_1", "nr_add_1", "rounding")
    return UnitDesign(f"DW_rcp_{bits}", parts, chain)


def dw_rsqrt(bits: int = 32) -> UnitDesign:
    """NR inverse square root: seed plus two (heavier) iterations."""
    p = mantissa_bits_for(bits)
    parts = (
        B.logic(1100, path_gates=4, activity=0.6, name="seed_table"),
        *_nr_iteration(p, 0),
        *_nr_iteration(p, 1),
        B.rounding_unit(p, name="rounding"),
        B.logic(120, name="flags"),
    )
    chain = ("seed_table", "nr_mult_0", "nr_add_0", "nr_mult_1", "nr_add_1", "rounding")
    return UnitDesign(f"DW_rsqrt_{bits}", parts, chain)


def dw_sqrt(bits: int = 32) -> UnitDesign:
    """Square root: seed plus a single NR iteration and a back-multiply."""
    p = mantissa_bits_for(bits)
    parts = (
        B.logic(900, path_gates=4, activity=0.6, name="seed_table"),
        *_nr_iteration(p, 0),
        B.rounding_unit(p, name="rounding"),
        B.logic(120, name="flags"),
    )
    chain = ("seed_table", "nr_mult_0", "nr_add_0", "rounding")
    return UnitDesign(f"DW_sqrt_{bits}", parts, chain)


def dw_log2(bits: int = 32) -> UnitDesign:
    """Table-driven log2 (Tang-style): tables plus polynomial multiplies."""
    p = mantissa_bits_for(bits)
    parts = (
        B.logic(1400, path_gates=5, activity=0.6, name="tables"),
        B.array_multiplier(p, p // 2, name="poly_mult_0"),
        B.array_multiplier(p, p // 2, name="poly_mult_1"),
        B.adder(p + 2, name="poly_add"),
        B.rounding_unit(p, name="rounding"),
    )
    chain = ("tables", "poly_mult_0", "poly_add", "rounding")
    return UnitDesign(f"DW_log2_{bits}", parts, chain)


def dw_fma(bits: int = 32) -> UnitDesign:
    """Fused multiply-add: multiplier array + wide aligned adder + round."""
    p = mantissa_bits_for(bits)
    parts = (
        B.array_multiplier(p, p, name="mantissa_multiplier"),
        B.barrel_shifter(2 * p + 3, name="align_shifter"),
        B.adder(2 * p + 3, name="sum_adder"),
        B.leading_one_detector(2 * p + 3, name="norm_lod"),
        B.barrel_shifter(2 * p + 3, name="norm_shifter"),
        B.rounding_unit(p, name="rounding"),
        B.logic(180, name="flags"),
    )
    chain = ("mantissa_multiplier", "sum_adder", "norm_lod", "norm_shifter", "rounding")
    return UnitDesign(f"DW_fma_{bits}", parts, chain)


# ----------------------------------------------------------------------
# Special function units — IHW linear approximations (Table 1)
# ----------------------------------------------------------------------
def _linear_sfu(bits: int, name: str, extra: tuple = (), chain_extra: tuple = ()) -> UnitDesign:
    """Shared shape of the linear SFUs: constant multiply + add, no rounding."""
    p = mantissa_bits_for(bits)
    parts = (
        B.constant_multiplier(p, digits=5, name="coeff_mult"),
        B.adder(p + 2, name="intercept_add"),
        B.logic(60, name="range_reduction"),  # exponent rewrite + alignment
        B.logic(80, name="flags"),
        *extra,
    )
    chain = ("range_reduction", "coeff_mult", "intercept_add", *chain_extra)
    return UnitDesign(name, parts, chain)


def ihw_reciprocal(bits: int = 32) -> UnitDesign:
    """y = 2.823 - 1.882 x on [0.5, 1)."""
    return _linear_sfu(bits, f"ircp_{bits}")


def ihw_rsqrt(bits: int = 32) -> UnitDesign:
    """y = 2.08 - 1.1911 x with parity-muxed coefficients."""
    p = mantissa_bits_for(bits)
    return _linear_sfu(
        bits, f"irsqrt_{bits}", extra=(B.mux(p, 2, name="parity_mux"),)
    )


def ihw_sqrt(bits: int = 32) -> UnitDesign:
    """y = x (2.08 - 1.1911 x): the linear stage feeds a full multiply.

    The extra mantissa multiplier is why Table 2 reports isqrt at ~1.16x the
    DWIP power (slightly worse) but far better latency and EDP.
    """
    p = mantissa_bits_for(bits)
    return _linear_sfu(
        bits,
        f"isqrt_{bits}",
        extra=(B.array_multiplier(p, p, name="back_multiplier"),),
        chain_extra=("back_multiplier",),
    )


def ihw_log2(bits: int = 32) -> UnitDesign:
    """y = exp + 0.9846 m - 0.9196: linear stage plus exponent splice."""
    p = mantissa_bits_for(bits)
    return _linear_sfu(
        bits, f"ilog2_{bits}",
        extra=(B.adder(p // 2, name="exponent_splice"),),
        chain_extra=("exponent_splice",),
    )


def ihw_fp_divider(bits: int = 32) -> UnitDesign:
    """a * lin_rcp(b): the linear reciprocal feeding a mantissa multiplier."""
    p = mantissa_bits_for(bits)
    return _linear_sfu(
        bits,
        f"ifpdiv_{bits}",
        extra=(B.array_multiplier(p, p, name="product_multiplier"),),
        chain_extra=("product_multiplier",),
    )


def quadratic_sfu(bits: int = 32, name: str = "quadratic_sfu") -> UnitDesign:
    """Quadratic-approximation SFU (the extension accuracy point).

    Evaluates ``c0 + x (c1 + c2 x)`` in Horner form: two constant
    multipliers and two adders plus the shared range-reduction logic —
    roughly twice the linear SFU's power, still far below the NR-iteration
    DWIP units.
    """
    p = mantissa_bits_for(bits)
    parts = (
        B.constant_multiplier(p, digits=5, name="coeff_mult_1"),
        B.constant_multiplier(p, digits=5, name="coeff_mult_2"),
        B.adder(p + 2, name="horner_add_1"),
        B.adder(p + 2, name="horner_add_2"),
        B.logic(60, name="range_reduction"),
        B.logic(80, name="flags"),
    )
    chain = ("range_reduction", "coeff_mult_1", "horner_add_1",
             "coeff_mult_2", "horner_add_2")
    return UnitDesign(f"{name}_{bits}", parts, chain)


def dual_mode_fp_multiplier(
    bits: int = 32, config: MultiplierConfig = MultiplierConfig()
) -> UnitDesign:
    """Dual-mode multiplier: IEEE array + Mitchell datapath, mode-muxed.

    The future-work integration of a precise mode (Chapter 6).  Both
    datapaths are resident; this design reports the *precise-mode* power
    (array switching, Mitchell idle), the worst of the two duty points —
    blend with :meth:`repro.core.DualModeMultiplier.average_power_mw`.
    """
    p = mantissa_bits_for(bits)
    w = p - config.truncation
    mitchell = (
        B.priority_encoder(w, name="encoder_a").idled(),
        B.priority_encoder(w, name="encoder_b").idled(),
        B.adder(w + 1, name="add1").idled(),
        B.adder(w + 1, name="add2").idled(),
        B.adder(w + 2, name="add3").idled(),
        B.decoder(w, name="decoder").idled(),
    )
    parts = (
        B.array_multiplier(p, p, name="mantissa_multiplier"),
        *mitchell,
        B.adder(_exp_bits_for(bits) + 2, name="exponent_adder"),
        B.rounding_unit(p, name="rounding"),
        B.mux(p, 3, name="mode_mux"),
        B.logic(150, name="flags"),
    )
    chain = ("mantissa_multiplier", "rounding", "mode_mux")
    return UnitDesign(f"dualmode_{bits}_{config.name}", parts, chain)


def ihw_fma(bits: int = 32, threshold: int = 8) -> UnitDesign:
    """Imprecise FMA: the Table-1 multiplier feeding the threshold adder."""
    p = mantissa_bits_for(bits)
    th = threshold
    parts = (
        B.adder(p + 1, name="mantissa_adder"),  # the imprecise multiply
        B.adder(_exp_bits_for(bits) + 2, name="exponent_adder"),
        B.barrel_shifter(th, name="align_shifter"),
        B.adder(min(th + 1 + p // 4, p + 1), name="sum_adder"),
        B.leading_one_detector(th + 2, name="norm_lod"),
        B.mux(p, 2, name="norm_mux"),
        B.logic(120, name="flags"),
    )
    chain = ("mantissa_adder", "align_shifter", "sum_adder", "norm_lod", "norm_mux")
    return UnitDesign(f"ifma_{bits}_th{th}", parts, chain)
