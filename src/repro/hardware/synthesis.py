"""Synthesis-flow facade: the Figure-11 Design Compiler step as an API.

The paper's top-down flow synthesizes each unit against a timing target,
reports power/area/slack, and stores the results in a matrix for the
system-level power evaluation.  :func:`synthesize` reproduces that report
for any :class:`~repro.hardware.units.UnitDesign`: timing closure against a
clock target (with an optional pipelining transform that splits the
critical chain into stages), the per-block power breakdown, and the
pass/fail slack — the artifacts a designer reads off a DC run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .paper_data import UnitMetrics
from .units import UnitDesign

__all__ = ["SynthesisReport", "synthesize", "pipeline_stages_required"]


@dataclass(frozen=True)
class SynthesisReport:
    """One unit's synthesis outcome against a clock target."""

    design: str
    clock_ns: float
    latency_ns: float
    slack_ns: float
    pipeline_stages: int
    power_mw: float
    area_um2: float
    block_power: tuple  # ((block name, mW), ...) sorted descending

    @property
    def timing_met(self) -> bool:
        return self.slack_ns >= 0

    @property
    def metrics(self) -> UnitMetrics:
        return UnitMetrics(
            power_mw=self.power_mw,
            latency_ns=self.pipeline_stages * self.clock_ns,
            area=self.area_um2,
        ).derived()

    def format_report(self) -> str:
        status = "MET" if self.timing_met else "VIOLATED"
        lines = [
            f"design {self.design}: clock {self.clock_ns:.3f} ns, "
            f"{self.pipeline_stages} stage(s), slack {self.slack_ns:+.3f} ns [{status}]",
            f"  power {self.power_mw:.3f} mW, area {self.area_um2:.0f} um^2",
        ]
        for name, mw in self.block_power[:8]:
            lines.append(f"    {name:22s} {mw:8.3f} mW ({mw / self.power_mw:5.1%})")
        return "\n".join(lines)


def pipeline_stages_required(design: UnitDesign, clock_ns: float) -> int:
    """Stages needed to close timing (balanced cuts of the critical chain)."""
    if clock_ns <= 0:
        raise ValueError(f"clock_ns must be positive, got {clock_ns}")
    return max(1, math.ceil(design.latency_ns / clock_ns))


#: Per-stage register overhead as a fraction of combinational power.
_REGISTER_POWER_FRACTION = 0.06


def synthesize(design: UnitDesign, clock_ns: float = 1.43) -> SynthesisReport:
    """Synthesize ``design`` against ``clock_ns`` (default: 700 MHz).

    Single-stage designs whose critical chain fits the clock report
    positive slack; longer chains are pipelined (each added stage costs
    register power).  The block power breakdown mirrors a DC power report.
    """
    stages = pipeline_stages_required(design, clock_ns)
    per_stage = design.latency_ns / stages
    slack = clock_ns - per_stage

    register_overhead = design.power_mw * _REGISTER_POWER_FRACTION * (stages - 1)
    power = design.power_mw + register_overhead

    blocks = sorted(
        ((blk.name, blk.power_mw) for blk in design.blocks),
        key=lambda item: item[1],
        reverse=True,
    )
    if stages > 1:
        blocks = [("pipeline_registers", register_overhead)] + blocks
        blocks.sort(key=lambda item: item[1], reverse=True)

    return SynthesisReport(
        design=design.name,
        clock_ns=clock_ns,
        latency_ns=design.latency_ns,
        slack_ns=slack,
        pipeline_stages=stages,
        power_mw=power,
        area_um2=design.area_um2,
        block_power=tuple(blocks),
    )
