"""The paper's reported synthesis/SPICE measurements (Tables 2-7).

These values are the published post-layout HSIM measurements in a 45 nm
FreePDK process.  They substitute for the proprietary Synopsys DesignWare +
Design Compiler + HSIM flow this reproduction cannot run: the power-quality
framework consumes per-op (power, latency) pairs, and these are exactly the
pairs the authors measured.

Two synthesis contexts appear in the thesis (the DAC-2014 unit set was
synthesized per-unit at minimum latency; the ICCD-2014 multiplier study at
the DesignWare multiplier's latency), which is why Table 2's implied
absolute DWIP multiplier power differs from Table 4's.  Both are kept.

The analytic gate-level model in :mod:`repro.hardware.blocks` /
:mod:`repro.hardware.units` independently reproduces these ratios from
structural descriptions; the tests cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "UnitMetrics",
    "TABLE2_NORMALIZED",
    "TABLE3_INTEGER_UNITS",
    "TABLE4_FP_MULTIPLIER",
    "TABLE5_SYSTEM_SAVINGS",
    "TABLE6_BENCHMARKS",
    "TABLE7_SPHINX",
    "TABLE1_MAX_ERRORS",
    "DWIP_ABSOLUTE",
]


@dataclass(frozen=True)
class UnitMetrics:
    """Non-functional metrics of one hardware unit."""

    power_mw: float
    latency_ns: float
    area: float = 0.0  # gate equivalents or um^2 depending on context
    energy_pj: float = 0.0
    edp: float = 0.0  # pJ * ns

    def derived(self) -> "UnitMetrics":
        """Fill energy (power x latency) and EDP (energy x latency)."""
        energy = self.power_mw * self.latency_ns  # mW * ns = pJ
        return UnitMetrics(
            power_mw=self.power_mw,
            latency_ns=self.latency_ns,
            area=self.area,
            energy_pj=energy,
            edp=energy * self.latency_ns,
        )


#: Table 2 — 32-bit IHW metrics normalized against DWIP counterparts
#: (power, latency, area, energy, EDP; lower is better).
TABLE2_NORMALIZED = {
    "ifpadd": UnitMetrics(0.31, 0.74, 0.39, 0.23, 0.17),
    "ifpmul": UnitMetrics(0.040, 0.218, 0.103, 0.009, 0.002),
    "ifpdiv": UnitMetrics(0.84, 0.85, 0.64, 0.71, 0.60),
    "ircp": UnitMetrics(0.20, 0.34, 0.25, 0.07, 0.02),
    "isqrt": UnitMetrics(1.16, 0.33, 1.04, 0.39, 0.13),
    "ilog2": UnitMetrics(0.30, 0.79, 0.36, 0.24, 0.19),
    "ifma": UnitMetrics(0.08, 0.70, 0.14, 0.05, 0.04),
    "irsqrt": UnitMetrics(0.061, 0.109, 0.087, 0.007, 0.001),
}

#: Table 3 — the mantissa-datapath swap at the heart of the multiplier:
#: a 25-bit adder vs a 24x24-bit multiplier (absolute mW / ns).
TABLE3_INTEGER_UNITS = {
    "add25": UnitMetrics(0.24, 0.31),
    "mult24": UnitMetrics(8.50, 0.93),
}

#: Table 4 — absolute PPA of the accuracy-configurable FP multiplier
#: (power mW, latency ns, area um^2).  `same_latency` keeps the DWIP delay;
#: `min_latency` is the fastest timing closure.
TABLE4_FP_MULTIPLIER = {
    "DW_fp_mult_32": UnitMetrics(36.63, 1.7, 19551.5),
    "ifpmul32_same_latency": UnitMetrics(17.93, 1.7, 7671.2),
    "ifpmul32_min_latency": UnitMetrics(18.59, 1.4, 9209.6),
    "DW_fp_mult_64": UnitMetrics(119.9, 2.0, 66817.5),
    "ifpmul64_same_latency": UnitMetrics(38.17, 2.0, 28447.1),
    "ifpmul64_min_latency": UnitMetrics(39.65, 1.8, 32784.4),
}

#: Table 5 — system-level power savings (holistic %, arithmetic %).
TABLE5_SYSTEM_SAVINGS = {
    "hotspot": (32.06, 91.54),
    "srad": (24.23, 90.68),
    "ray_rcp_add_sqrt": (10.24, 36.14),
    "ray_rcp_add_sqrt_rsqrt": (11.50, 40.59),
    "ray_rcp_add_sqrt_fpmul_fp": (13.56, 47.86),
}

#: Table 6 — benchmark summary: (platform, precision, FP-mul count,
#: fraction routed through the configurable multiplier, quality metric).
TABLE6_BENCHMARKS = {
    "hotspot": ("GPU", "single", 3.7e6, 1.00, "MAE,WED"),
    "cp": ("GPU", "single", 32.9e6, 0.80, "MAE,WED"),
    "raytracing": ("GPU", "single", 12.4e6, 0.36, "SSIM"),
    "179.art": ("CPU", "double", 3.17e9, 0.89, "vigilance"),
    "435.gromacs": ("CPU", "double", 5.9e9, 1.00, "err%"),
    "482.sphinx": ("CPU", "double", 15.6e9, 1.00, "accuracy"),
}

#: Table 7 — 482.sphinx3 words recognized out of 25 per configuration.
TABLE7_SPHINX = {
    "bt_44": 24, "bt_45": 24, "bt_46": 24, "bt_47": 25, "bt_48": 25, "bt_49": 22,
    "fp_tr0": 25, "fp_tr44": 24, "fp_tr45": 24, "fp_tr46": 24, "fp_tr47": 25,
    "fp_tr48": 24,
    "lp_tr0": 25, "lp_tr44": 21, "lp_tr45": 21, "lp_tr46": 21, "lp_tr47": 23,
    "lp_tr48": 24,
}

#: Table 1 — maximum error magnitudes of the imprecise functions
#: (None = unbounded relative error).
TABLE1_MAX_ERRORS = {
    "rcp": 0.0588,
    "rsqrt": 0.1111,
    "sqrt": 0.1111,
    "log2": None,
    "div": 0.0588,
    "mul": 0.25,
    "add": None,
    "fma": None,
}

#: Absolute DWIP per-op baselines in the Table-2 (minimum-latency) context.
#: The fp multiplier value is implied by Table 3 plus the IEEE overhead
#: (mantissa multiplier 8.50 mW is ~81% of the unit per the Table-2 ratio
#: algebra); the others follow the same composition logic and are the
#: anchors the analytic model in `units.py` is validated against.
DWIP_ABSOLUTE = {
    "add": UnitMetrics(1.30, 0.42),
    "sub": UnitMetrics(1.30, 0.42),
    "mul": UnitMetrics(10.5, 1.35),
    "fma": UnitMetrics(12.4, 1.55),
    "div": UnitMetrics(21.0, 2.60),
    "rcp": UnitMetrics(18.5, 2.30),
    "rsqrt": UnitMetrics(19.5, 2.40),
    "sqrt": UnitMetrics(8.2, 2.10),
    "log2": UnitMetrics(9.0, 1.90),
}
