"""45 nm process constants for the analytic gate-level PPA model.

The model measures circuits in NAND2-equivalent gates (GE).  Three process
constants convert structure to physics; they are calibrated once against the
paper's Table 3 anchor points (a 25-bit adder at 0.24 mW / 0.31 ns and a
24x24-bit array multiplier at 8.50 mW / 0.93 ns in 45 nm FreePDK) and never
re-tuned per unit:

- ``GATE_POWER_MW`` — average switching power per GE at unit activity under
  a continuous random-vector workload (the HSIM measurement condition),
- ``GATE_DELAY_NS`` — one NAND2 delay,
- ``GATE_AREA_UM2`` — NAND2 footprint.

Calibration algebra: the multiplier model is ``7 * n * m`` GE at activity
1.55 (array multipliers glitch heavily), so
``GATE_POWER_MW = 8.50 / (7 * 24 * 24 * 1.55)``; the adder model is ``7n``
GE at activity 1.0, predicting ``0.238`` mW for 25 bits — matching the
measured 0.24.  The adder's ``2*ceil(log2 n) + 6`` gate critical path at
0.31 ns gives ``GATE_DELAY_NS ~= 0.0194``; the multiplier's ``n + m`` path
then predicts 0.93 ns exactly.
"""

from __future__ import annotations

__all__ = ["GATE_POWER_MW", "GATE_DELAY_NS", "GATE_AREA_UM2", "LEAKAGE_FRACTION"]

#: Dynamic power per gate equivalent at unit activity (mW).
GATE_POWER_MW = 8.50 / (7 * 24 * 24 * 1.55)

#: Single NAND2-equivalent gate delay (ns).
GATE_DELAY_NS = 0.31 / 16  # 25-bit CLA: 2*ceil(log2 25) + 6 = 16 gate levels

#: NAND2-equivalent area (um^2), typical 45 nm standard cell.
GATE_AREA_UM2 = 0.8

#: Leakage as a fraction of a block's unit-activity dynamic power; idle
#: (power-gated or input-muxed-to-zero) blocks still burn this share.
LEAKAGE_FRACTION = 0.05
