"""Automatic multiplier-configuration tuner — the paper's second
future-work item ("developing an automatic quality tuning model").

Given an application and a quality constraint, finds the lowest-power
accuracy configuration of the Mitchell multiplier that still satisfies the
constraint: for each datapath (full, then log — ordered by decreasing
accuracy), binary-search the deepest acceptable truncation, then pick the
configuration with the smallest modeled power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import telemetry
from repro.core import IHWConfig, MultiplierConfig
from repro.hardware import HardwareLibrary

__all__ = ["AutoTuneResult", "MultiplierAutoTuner"]


@dataclass(frozen=True)
class AutoTuneResult:
    """Outcome of an automatic multiplier tuning run."""

    config: IHWConfig
    multiplier: MultiplierConfig | None  # None: no imprecise point satisfied
    quality: float
    power_mw: float
    evaluations: int

    @property
    def satisfied(self) -> bool:
        return self.multiplier is not None


class MultiplierAutoTuner:
    """Search the multiplier design space for the cheapest acceptable point.

    Parameters
    ----------
    evaluate:
        ``evaluate(config) -> quality``.  May be None when ``runner`` and
        ``spec`` are given.
    constraint:
        ``constraint(quality) -> bool``.
    base_config:
        Units other than the multiplier (default: only the multiplier
        imprecise); the tuner swaps the multiplier configuration in.
    library:
        Power source for ranking configurations (default paper library).
    max_truncation:
        Deepest truncation probed (defaults to 22 for fp32-scale mantissas;
        pass 51 for double precision studies).
    runner, spec:
        Optional :class:`~repro.runtime.ExperimentRunner` +
        :class:`~repro.runtime.ExperimentSpec` pair.  Probes then go
        through the shared cached execution path, so repeated tuning runs
        (and any sweep that touched the same configurations) reuse
        results, and the initial per-path probes are dispatched as one
        parallel batch.
    """

    def __init__(
        self,
        evaluate: Callable[[IHWConfig], float] | None,
        constraint: Callable[[float], bool],
        base_config: IHWConfig | None = None,
        library: HardwareLibrary | None = None,
        max_truncation: int = 22,
        runner=None,
        spec=None,
    ):
        if max_truncation < 0:
            raise ValueError(f"max_truncation must be >= 0, got {max_truncation}")
        if evaluate is None and (runner is None or spec is None):
            raise ValueError("evaluate may only be None with runner and spec")
        if runner is not None and spec is None:
            raise ValueError("runner requires a spec to address the cache")
        self._evaluate = evaluate
        self._constraint = constraint
        self._base = base_config if base_config is not None else IHWConfig.precise()
        self._library = library or HardwareLibrary.paper_45nm()
        self._max_truncation = max_truncation
        self._runner = runner
        self._spec = spec
        self._evaluations = 0

    def _quality(self, config: IHWConfig) -> float:
        self._evaluations += 1
        if self._runner is not None:
            return float(self._runner.evaluate(self._spec, config).quality)
        return float(self._evaluate(config))

    def _probe(self, mult: MultiplierConfig) -> tuple:
        config = self._base.with_multiplier("mitchell", config=mult)
        with telemetry.span("autotune.probe", path=mult.path,
                            truncation=mult.truncation):
            quality = self._quality(config)
        ok = bool(self._constraint(quality))
        telemetry.counter_inc("repro_autotune_probes_total", path=mult.path,
                              outcome="pass" if ok else "fail")
        return config, quality, ok

    def _warm_initial_probes(self) -> None:
        """Batch the tr=0 probes of both paths through the parallel runner.

        The binary searches then start from cache hits; with one worker
        this is simply a cached sequential pass.
        """
        seeds = {
            path: self._base.with_multiplier(
                "mitchell", config=MultiplierConfig(path, 0)
            )
            for path in ("full", "log")
        }
        self._runner.sweep(self._spec, seeds)

    def _deepest_acceptable(self, path: str):
        """Largest acceptable truncation on ``path`` via binary search.

        Quality is treated as monotone in truncation (the characterization
        shows mean error grows with truncation); the search returns the
        deepest passing configuration, or None if even tr=0 fails.
        """
        base = MultiplierConfig(path, 0)
        config, quality, ok = self._probe(base)
        if not ok:
            return None
        best = (base, config, quality)
        lo, hi = 0, self._max_truncation
        while lo < hi:
            mid = (lo + hi + 1) // 2
            mult = MultiplierConfig(path, mid)
            config, quality, ok = self._probe(mult)
            if ok:
                best = (mult, config, quality)
                lo = mid
            else:
                hi = mid - 1
        return best

    def tune(self) -> AutoTuneResult:
        """Find the lowest-power acceptable configuration across both paths."""
        with telemetry.span("autotune", max_truncation=self._max_truncation):
            result = self._tune()
        telemetry.counter_inc(
            "repro_autotune_runs_total",
            outcome="satisfied" if result.satisfied else "unsatisfied",
        )
        telemetry.counter_inc("repro_autotune_evaluations_total",
                              result.evaluations)
        return result

    def _tune(self) -> AutoTuneResult:
        if self._runner is not None:
            self._warm_initial_probes()
        candidates = []
        for path in ("full", "log"):
            found = self._deepest_acceptable(path)
            if found is not None:
                mult, config, quality = found
                power = self._library.multiplier_metrics(mult).power_mw
                candidates.append((power, mult, config, quality))

        if not candidates:
            precise = self._base.without_units("mul")
            quality = self._quality(precise)
            return AutoTuneResult(
                config=precise,
                multiplier=None,
                quality=quality,
                power_mw=self._library.dwip("mul").power_mw,
                evaluations=self._evaluations,
            )

        power, mult, config, quality = min(candidates, key=lambda c: c[0])
        return AutoTuneResult(
            config=config,
            multiplier=mult,
            quality=quality,
            power_mw=power,
            evaluations=self._evaluations,
        )
