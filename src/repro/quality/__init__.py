"""Application-level quality metrics and the Figure-10 tuning loop."""

from .metrics import (
    error_percent,
    mae,
    mse,
    pratt_fom,
    psnr,
    rmse,
    ssim,
    wed,
    word_accuracy,
)
from .autotuner import AutoTuneResult, MultiplierAutoTuner
from .pareto import (
    DesignPoint,
    dominates,
    family_dominates,
    pareto_front,
    sweep_design_points,
)
from .tuning import QualityTuner, TuningResult, TuningStep

__all__ = [
    "AutoTuneResult",
    "DesignPoint",
    "MultiplierAutoTuner",
    "QualityTuner",
    "TuningResult",
    "TuningStep",
    "dominates",
    "error_percent",
    "family_dominates",
    "mae",
    "mse",
    "pareto_front",
    "pratt_fom",
    "psnr",
    "rmse",
    "ssim",
    "sweep_design_points",
    "wed",
    "word_accuracy",
]
