"""Pareto-front utilities for the power-quality design space.

Figure 14 (and the application studies built on it) are Pareto arguments:
the Mitchell multiplier's configurations dominate intuitive truncation —
at every error level they reduce power more.  These helpers make that
structure first-class: collect (cost, quality-loss) design points, extract
the non-dominated front, and test whether one family dominates another.

Conventions: both axes are "lower is better" (power in mW or any cost, and
quality *loss* such as eps_max, MAE, or 1 - SSIM).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DesignPoint",
    "pareto_front",
    "dominates",
    "family_dominates",
    "sweep_design_points",
]


@dataclass(frozen=True)
class DesignPoint:
    """One configuration in a two-objective (cost, loss) space."""

    name: str
    cost: float
    loss: float

    def __post_init__(self):
        if self.cost < 0 or self.loss < 0:
            raise ValueError(
                f"cost and loss must be non-negative: {self.name} "
                f"({self.cost}, {self.loss})"
            )


def dominates(a: DesignPoint, b: DesignPoint, tolerance: float = 0.0) -> bool:
    """Whether ``a`` is at least as good as ``b`` on both axes and better on one.

    ``tolerance`` is an absolute slack on each axis (useful when losses are
    statistical estimates).
    """
    no_worse = a.cost <= b.cost + tolerance and a.loss <= b.loss + tolerance
    better = a.cost < b.cost - tolerance or a.loss < b.loss - tolerance
    return no_worse and better


def pareto_front(points) -> list:
    """The non-dominated subset, sorted by increasing cost.

    Ties on both axes keep the first-listed point.
    """
    points = list(points)
    if not points:
        return []
    front = []
    for candidate in points:
        if any(dominates(other, candidate) for other in points):
            continue
        if any(f.cost == candidate.cost and f.loss == candidate.loss for f in front):
            continue
        front.append(candidate)
    return sorted(front, key=lambda p: (p.cost, p.loss))


def sweep_design_points(spec, configs, runner=None, cost=None, loss=None,
                        batch: bool = True) -> list:
    """Evaluate configurations into :class:`DesignPoint`\\ s (both axes clamped at 0).

    The application sweep behind a Figure-14-style Pareto study, routed
    through the shared parallel + cached execution path.

    Parameters
    ----------
    spec:
        :class:`~repro.runtime.ExperimentSpec` naming the application.
    configs:
        ``{name: IHWConfig}``.
    runner:
        :class:`~repro.runtime.ExperimentRunner`; default is a sequential
        runner with environment-controlled caching.
    cost:
        ``cost(evaluation) -> float`` (lower is better).  Default: the
        residual system power fraction ``1 - system_savings``.
    loss:
        ``loss(evaluation) -> float`` (lower is better).  Default: the
        raw quality value — correct for lower-is-better metrics such as
        MAE; pass e.g. ``lambda ev: 1 - ev.quality`` for SSIM.
    batch:
        Group batch-compatible configurations into homogeneous runner
        chunks (default on).  A Figure-14-style family sweep — many
        truncation levels of one multiplier mode — is exactly the shape
        batching likes; results are identical either way.
    """
    from repro.runtime import ExperimentRunner

    if runner is None:
        runner = ExperimentRunner(max_workers=1)
    cost = cost or (lambda ev: 1.0 - ev.savings.system_savings)
    loss = loss or (lambda ev: ev.quality)
    evaluations = runner.sweep(spec, configs, batch=batch)
    return [
        DesignPoint(
            name=name,
            cost=max(0.0, float(cost(ev))),
            loss=max(0.0, float(loss(ev))),
        )
        for name, ev in evaluations.items()
    ]


def family_dominates(winners, losers, tolerance: float = 0.0) -> bool:
    """Whether every point in ``losers`` is dominated by some ``winners`` point.

    The Figure-14 claim shape: "the proposed multiplier dominates intuitive
    truncation across the design space".
    """
    winners = list(winners)
    losers = list(losers)
    if not winners or not losers:
        raise ValueError("both families must be non-empty")
    return all(
        any(dominates(w, loser, tolerance) for w in winners) for loser in losers
    )
