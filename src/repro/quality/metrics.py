"""Application-specific quality metrics used in the evaluation.

Each benchmark in Chapter 5 is scored with its own figure of merit:

- HotSpot / CP: mean absolute error (MAE) and worst error distance (WED)
- SRAD: Pratt's figure of merit over binary edge maps
- RayTracing: structural similarity (SSIM, Wang et al. 2004)
- 179.art: vigilance (confidence of match)
- 435.gromacs: output error percentage against the reference
- 482.sphinx3: number of words correctly recognized
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "mae",
    "mse",
    "rmse",
    "wed",
    "psnr",
    "error_percent",
    "ssim",
    "pratt_fom",
    "word_accuracy",
]


def _pair(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def mae(result, reference) -> float:
    """Mean absolute error (HotSpot's figure of merit, in Kelvin there)."""
    a, b = _pair(result, reference)
    return float(np.abs(a - b).mean())


def mse(result, reference) -> float:
    """Mean squared error."""
    a, b = _pair(result, reference)
    return float(((a - b) ** 2).mean())


def rmse(result, reference) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(result, reference)))


def wed(result, reference) -> float:
    """Worst error distance: the maximum absolute deviation."""
    a, b = _pair(result, reference)
    return float(np.abs(a - b).max())


def psnr(result, reference, data_range: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB."""
    a, b = _pair(result, reference)
    err = mse(a, b)
    if err == 0:
        return float("inf")
    if data_range is None:
        data_range = float(b.max() - b.min()) or 1.0
    return float(10.0 * np.log10(data_range**2 / err))


def error_percent(result, reference) -> float:
    """Relative error of scalar outputs in percent (the gromacs metric)."""
    reference = float(np.asarray(reference))
    if reference == 0:
        raise ValueError("reference output is zero; error percent undefined")
    return abs(float(np.asarray(result)) - reference) / abs(reference) * 100.0


def ssim(
    result,
    reference,
    data_range: float | None = None,
    window: int = 8,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean structural similarity index over uniform local windows.

    Follows Wang et al. (2004) with a ``window x window`` uniform filter —
    the metric the RayTracing study uses (1.0 = identical structure).
    """
    a, b = _pair(result, reference)
    if a.ndim != 2:
        raise ValueError(f"SSIM expects 2-D images, got shape {a.shape}")
    if window < 2 or window > min(a.shape):
        raise ValueError(f"window {window} invalid for image of shape {a.shape}")
    if data_range is None:
        data_range = float(max(b.max() - b.min(), 1e-12))

    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    size = (window, window)
    mu_a = ndimage.uniform_filter(a, size)
    mu_b = ndimage.uniform_filter(b, size)
    mu_aa = ndimage.uniform_filter(a * a, size)
    mu_bb = ndimage.uniform_filter(b * b, size)
    mu_ab = ndimage.uniform_filter(a * b, size)

    var_a = mu_aa - mu_a * mu_a
    var_b = mu_bb - mu_b * mu_b
    cov = mu_ab - mu_a * mu_b

    numerator = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    denominator = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    # Crop the half-window border where the uniform filter wraps content.
    h = window // 2
    ssim_map = numerator[h:-h, h:-h] / denominator[h:-h, h:-h]
    return float(ssim_map.mean())


def pratt_fom(detected_edges, ideal_edges, alpha: float = 1.0 / 9.0) -> float:
    """Pratt's figure of merit between binary edge maps (0 to 1, 1 = ideal).

    ``FOM = (1 / max(Nd, Ni)) * sum_i 1 / (1 + alpha * d_i^2)`` where ``d_i``
    is each detected edge pixel's distance to the nearest ideal edge pixel —
    the SRAD study's segmentation quality metric.
    """
    detected = np.asarray(detected_edges, dtype=bool)
    ideal = np.asarray(ideal_edges, dtype=bool)
    if detected.shape != ideal.shape:
        raise ValueError(f"shape mismatch: {detected.shape} vs {ideal.shape}")
    n_detected = int(detected.sum())
    n_ideal = int(ideal.sum())
    if n_ideal == 0:
        raise ValueError("ideal edge map is empty")
    if n_detected == 0:
        return 0.0
    # Distance from every pixel to the nearest ideal edge pixel.
    distance = ndimage.distance_transform_edt(~ideal)
    scores = 1.0 / (1.0 + alpha * distance[detected] ** 2)
    return float(scores.sum() / max(n_detected, n_ideal))


def word_accuracy(recognized, reference) -> tuple:
    """Words correctly recognized: returns ``(correct, total)`` (sphinx metric)."""
    recognized = list(recognized)
    reference = list(reference)
    if len(recognized) != len(reference):
        raise ValueError(
            f"transcript length mismatch: {len(recognized)} vs {len(reference)}"
        )
    correct = sum(1 for r, t in zip(recognized, reference) if r == t)
    return correct, len(reference)
