"""Iterative quality tuning — the feedback loop of Figure 10.

The methodology: run the application imprecisely, compare against the
precise reference with the application-specific quality metric, and if the
fidelity constraint is not met, disable imprecise components (in order of
application-specific error sensitivity, guided by the characterization) or
tighten structural parameters, then re-evaluate.  The loop completes once
the constraint is satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import IHWConfig

__all__ = ["TuningResult", "TuningStep", "QualityTuner"]


@dataclass(frozen=True)
class TuningStep:
    """One evaluated configuration in the tuning trajectory."""

    config: IHWConfig
    quality: float
    satisfied: bool


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    config: IHWConfig
    quality: float
    satisfied: bool
    steps: list = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.steps)


class QualityTuner:
    """Searches the IHW configuration space until quality is acceptable.

    Parameters
    ----------
    evaluate:
        ``evaluate(config) -> float`` runs the application under ``config``
        against the precise reference and returns the quality score.
    constraint:
        ``constraint(quality) -> bool`` — the fidelity predicate (e.g.
        ``lambda ssim: ssim >= 0.9``).
    sensitivity_order:
        Unit names most-error-sensitive first — the order in which imprecise
        units are disabled when the constraint fails.  Defaults to the
        paper's observed ordering (multiplication errors compound worst in
        the studied kernels, the adder least).
    """

    DEFAULT_SENSITIVITY = ("mul", "fma", "rsqrt", "div", "log2", "sqrt", "rcp", "add")

    def __init__(
        self,
        evaluate: Callable[[IHWConfig], float],
        constraint: Callable[[float], bool],
        sensitivity_order: tuple = DEFAULT_SENSITIVITY,
    ):
        unknown = set(sensitivity_order) - set(IHWConfig.all_imprecise().enabled)
        if unknown:
            raise ValueError(f"unknown units in sensitivity order: {sorted(unknown)}")
        self._evaluate = evaluate
        self._constraint = constraint
        self._sensitivity = tuple(sensitivity_order)

    def tune(self, start: IHWConfig | None = None, max_iterations: int = 16) -> TuningResult:
        """Run the Figure-10 loop from ``start`` (default: all units on).

        Each failing iteration disables the next most-sensitive enabled
        unit.  Returns the first satisfying configuration, or the precise
        fallback if every imprecise unit had to be disabled.
        """
        config = start if start is not None else IHWConfig.all_imprecise()
        steps = []
        for _ in range(max_iterations):
            quality = self._evaluate(config)
            ok = bool(self._constraint(quality))
            steps.append(TuningStep(config=config, quality=quality, satisfied=ok))
            if ok:
                return TuningResult(config=config, quality=quality, satisfied=True, steps=steps)
            disabled = self._disable_next(config)
            if disabled is None:
                return TuningResult(config=config, quality=quality, satisfied=False, steps=steps)
            config = disabled
        last = steps[-1]
        return TuningResult(
            config=last.config, quality=last.quality, satisfied=last.satisfied, steps=steps
        )

    def _disable_next(self, config: IHWConfig) -> IHWConfig | None:
        for unit in self._sensitivity:
            if config.is_enabled(unit):
                return config.without_units(unit)
        return None
