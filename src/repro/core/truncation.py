"""Intuitive bit-truncation baseline multiplier (``bt_N`` configurations).

The conventional low-power technique for FP multipliers truncates low-order
bits of the mantissa multiplication, keeping the multiplier otherwise exact
(Wires et al.; Gupta et al. — Chapter 2).  The paper uses this as the
baseline against which the Mitchell-based configurable multiplier is
compared (Figures 14, 19-21, Table 7): intuitive truncation loses accuracy
quickly while saving comparatively little power, because the exponent /
normalization / rounding overhead of the IEEE datapath remains.

``truncated_multiply`` reduces each operand mantissa to its top
``mantissa_bits - truncation`` fraction bits, multiplies exactly, and
truncates the result mantissa (subnormals flushed).  By default the operand
reduction uses round-to-nearest, modeling the variable-correction constants
of truncated-multiplier designs (Wires et al.); ``rounding=False`` selects
plain magnitude truncation.  With rounding, the worst-case relative error at
``bt_21`` (2 fraction bits kept, binary32) is ~21%, matching Figure 14.
"""

from __future__ import annotations

import numpy as np

from .floatops import flush_subnormals, format_for_dtype, truncate_mantissa

__all__ = ["truncated_multiply", "round_mantissa", "truncation_max_error"]


def round_mantissa(x, keep_bits: int, fmt=None) -> np.ndarray:
    """Round ``x`` to ``keep_bits`` mantissa fraction bits (half away from zero).

    Exploits the monotonicity of IEEE bit patterns: adding half a ULP of the
    kept precision to the raw bits and masking the dropped bits implements
    round-half-up in magnitude, with mantissa-to-exponent carries handled by
    the binary representation itself.  NaN/inf are passed through.
    """
    x = np.asarray(x)
    if fmt is None:
        fmt = format_for_dtype(x.dtype)
    if not 0 <= keep_bits <= fmt.mantissa_bits:
        raise ValueError(f"keep_bits must be in [0, {fmt.mantissa_bits}], got {keep_bits}")
    if keep_bits == fmt.mantissa_bits:
        return x.astype(fmt.dtype, copy=False)
    drop = fmt.mantissa_bits - keep_bits
    bits = x.astype(fmt.dtype, copy=False).view(fmt.uint)
    half = np.array(1 << (drop - 1), dtype=fmt.uint)
    mask = np.array(~((1 << drop) - 1) & ((1 << (fmt.sign_shift + 1)) - 1), dtype=fmt.uint)
    rounded = (bits + half) & mask
    exponent = (bits >> np.array(fmt.mantissa_bits, dtype=fmt.uint)) & np.array(
        fmt.exponent_mask, dtype=fmt.uint
    )
    special = exponent == fmt.exponent_mask
    return np.where(special, bits, rounded).view(fmt.dtype)


def truncated_multiply(
    a, b, truncation: int = 0, dtype=np.float32, rounding: bool = True
) -> np.ndarray:
    """Multiply ``a * b`` with the bit-truncation baseline (``bt_N``).

    Parameters
    ----------
    a, b:
        Array-like operands; converted to ``dtype``.
    truncation:
        Number of low-order mantissa-fraction bits removed from each operand
        (0 = IEEE-accurate apart from final truncation instead of rounding).
    dtype:
        ``numpy.float32`` or ``numpy.float64``.
    rounding:
        Round (variable-correction style, default) vs truncate the operand
        reduction.
    """
    fmt = format_for_dtype(dtype)
    if not 0 <= truncation <= fmt.mantissa_bits:
        raise ValueError(
            f"truncation must be in [0, {fmt.mantissa_bits}], got {truncation}"
        )
    a = np.asarray(a, dtype=fmt.dtype)
    b = np.asarray(b, dtype=fmt.dtype)
    keep = fmt.mantissa_bits - truncation
    reduce = round_mantissa if rounding else truncate_mantissa
    a_t = reduce(flush_subnormals(a, fmt), keep, fmt)
    b_t = reduce(flush_subnormals(b, fmt), keep, fmt)
    # The exact product of the reduced operands, then result truncation.
    # For binary32 the float64 product is exact; for binary64 the float64
    # rounding is far below the truncation error being modeled.
    product = a_t.astype(np.float64) * b_t.astype(np.float64)
    product = product.astype(fmt.dtype)
    product = truncate_mantissa(product, fmt.mantissa_bits, fmt)
    return flush_subnormals(product, fmt)


def truncation_max_error(truncation: int, dtype=np.float32, rounding: bool = True) -> float:
    """Analytic worst-case relative error of the ``bt_N`` scheme.

    Each operand's mantissa reduction changes it by at most ``delta``
    relative to a mantissa of 1.0 — ``2^-(keep+1)`` when rounding,
    ``(2^t - 1) * 2^-p`` when truncating — and the product error compounds
    two operand errors: ``(1+delta)^2 - 1``.
    """
    fmt = format_for_dtype(dtype)
    keep = fmt.mantissa_bits - truncation
    if rounding:
        delta = 2.0 ** -(keep + 1)
    else:
        delta = ((1 << truncation) - 1) / float(fmt.implicit_one)
    return 2.0 * delta + delta * delta
