"""Table-1 imprecise floating point multiplier.

The imprecise multiplication approximates the mantissa product

    (1 + Ma) * (1 + Mb)  ~=  1 + Ma + Mb              (Ma + Mb <  1)
                             (1 + Ma + Mb) / 2, e+1   (Ma + Mb >= 1)

i.e. the cross term ``Ma * Mb`` is dropped, which replaces the 24x24-bit
mantissa multiplier with a 25-bit adder (Chapter 3.1, equations (1)-(6)).
The maximum relative error is ``Ma*Mb / ((1+Ma)(1+Mb)) -> 25%`` as both
mantissa fractions approach 1.

Properties carried over from the hardware design:

- no rounding unit: the result mantissa is truncated,
- subnormal inputs and outputs are flushed to zero,
- infinities and NaNs are still handled,
- the sign is the XOR of operand signs and the exponents add exactly.

The mantissa datapath is emulated with integer arithmetic, so this model is
bit-exact against the RTL it stands in for.
"""

from __future__ import annotations

import numpy as np

from .floatops import FloatFormat, compose, decompose, format_for_dtype

__all__ = ["imprecise_multiply", "IMPRECISE_MULTIPLY_MAX_ERROR"]

#: Analytic maximum relative error magnitude of the Table-1 multiplier.
IMPRECISE_MULTIPLY_MAX_ERROR = 0.25


def _special_results(a, b, sign_z, fmt: FloatFormat):
    """IEEE special-case results (NaN/inf/zero) for a multiplication."""
    nan = np.isnan(a) | np.isnan(b)
    inf = np.isinf(a) | np.isinf(b)
    zero = (a == 0) | (b == 0)
    # inf * 0 is NaN.
    nan = nan | (inf & zero)
    inf = inf & ~nan
    zero = zero & ~nan & ~inf
    sign = sign_z.astype(bool)
    special = np.where(
        nan,
        np.array(np.nan, dtype=fmt.dtype),
        np.where(
            inf,
            np.where(sign, -np.inf, np.inf).astype(fmt.dtype),
            np.where(sign, np.array(-0.0, fmt.dtype), np.array(0.0, fmt.dtype)),
        ),
    )
    return nan | inf | zero, special.astype(fmt.dtype)


def imprecise_multiply(a, b, dtype=np.float32) -> np.ndarray:
    """Multiply ``a * b`` with the Table-1 imprecise FP multiplier.

    Parameters
    ----------
    a, b:
        Array-like operands; converted to ``dtype``.
    dtype:
        ``numpy.float32`` or ``numpy.float64``.

    Returns
    -------
    numpy.ndarray
        The approximated product, same shape as the broadcast operands.
    """
    fmt = format_for_dtype(dtype)
    a = np.asarray(a, dtype=fmt.dtype)
    b = np.asarray(b, dtype=fmt.dtype)
    a, b = np.broadcast_arrays(a, b)

    sign_a, exp_a, frac_a = decompose(a, fmt)
    sign_b, exp_b, frac_b = decompose(b, fmt)
    sign_z = sign_a ^ sign_b

    # Subnormal inputs are treated as zero by the hardware.
    a_sub = (exp_a == 0) & (frac_a != 0)
    b_sub = (exp_b == 0) & (frac_b != 0)
    a_eff = np.where(a_sub, np.array(0.0, fmt.dtype), a)
    b_eff = np.where(b_sub, np.array(0.0, fmt.dtype), b)

    special_mask, special_vals = _special_results(a_eff, b_eff, sign_z, fmt)

    # Mantissa datapath: frac sum fits in mantissa_bits + 1 bits.
    frac_sum = frac_a.astype(np.uint64) + frac_b.astype(np.uint64)
    carry = frac_sum >> np.uint64(fmt.mantissa_bits)  # 1 iff Ma + Mb >= 1
    # (1 + Ma + Mb) normalized: when carry, shift right by one (truncate LSB).
    frac_z = np.where(
        carry.astype(bool),
        # fraction of (1+Ma+Mb)/2 in [1, 1.5): (Ma+Mb-1)/2, LSB truncated
        (frac_sum & np.uint64(fmt.mantissa_mask)) >> np.uint64(1),
        frac_sum,
    ) & np.uint64(fmt.mantissa_mask)

    exp_z = (
        exp_a.astype(np.int64)
        + exp_b.astype(np.int64)
        - np.int64(fmt.bias)
        + carry.astype(np.int64)
    )

    overflow = exp_z > fmt.max_exponent
    underflow = exp_z < 1  # subnormal results flush to zero

    result = compose(
        sign_z,
        np.clip(exp_z, 0, fmt.exponent_mask).astype(fmt.uint),
        frac_z.astype(fmt.uint),
        fmt,
    )
    result = np.where(
        overflow,
        np.where(sign_z.astype(bool), -np.inf, np.inf).astype(fmt.dtype),
        result,
    )
    result = np.where(
        underflow,
        np.where(sign_z.astype(bool), np.array(-0.0, fmt.dtype), np.array(0.0, fmt.dtype)),
        result,
    )
    result = np.where(special_mask, special_vals, result)
    return result.astype(fmt.dtype)
