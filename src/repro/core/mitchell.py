"""Mitchell's Algorithm (MA) for approximate fixed point multiplication.

Mitchell's algorithm (Chapter 3.2.1) approximates a product through the
logarithm domain using the piecewise-linear estimates

    log2(2^k * (1 + x)) ~= k + x          (binary-to-log)
    2^(k + x)           ~= 2^k * (1 + x)  (log-to-binary)

so that for ``D1 = 2^k1 (1 + x1)`` and ``D2 = 2^k2 (1 + x2)``:

    D1 * D2 ~= 2^(k1+k2)   * (1 + x1 + x2)   if x1 + x2 <  1     (eq. 12)
               2^(k1+k2+1) * (x1 + x2)       if x1 + x2 in [1,2)

The maximum relative error magnitude is 1/9 = 11.11% (Mitchell 1962) and the
approximation always under-estimates the true product.

Two entry points are provided:

- :func:`mitchell_multiply_int` — the hardware algorithm on unsigned
  integers (LOD + shift + add + decode), matching Figure 6 bit for bit;
- :func:`mitchell_mantissa_product` — MA applied to dyadic fractions in
  ``[0, 2)`` as used inside the accuracy-configurable FP multiplier.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MITCHELL_MAX_ERROR",
    "POW2_RANGE",
    "mitchell_multiply_int",
    "mitchell_mantissa_product",
    "pow2",
    "pow2_table",
]

#: Analytic maximum relative error magnitude of Mitchell's algorithm.
MITCHELL_MAX_ERROR = 1.0 / 9.0

#: Half-width of the shared power-of-two table: index = exponent + POW2_RANGE.
POW2_RANGE = 1100

# Lazily-built shared table; read-only once published (no reset needed).
_POW2_TABLE = None


def pow2_table() -> np.ndarray:
    """Shared read-only table of ``2.0**k`` for ``k`` in ±:data:`POW2_RANGE`.

    The log-domain decode multiplies by exact powers of two (``2^{k1+k2}``
    and ``2^{-msb}``); batching evaluates them once per element *per
    config*, so a shared table turns every per-lane ``np.ldexp`` into an
    indexed gather.  Entries beyond float64's exponent range hold the same
    ``0.0`` / ``inf`` that ``np.ldexp`` produces, which makes clamped
    lookups (:func:`pow2`) exact for every int64 exponent.
    """
    global _POW2_TABLE
    if _POW2_TABLE is None:
        exponents = np.arange(-POW2_RANGE, POW2_RANGE + 1, dtype=np.int32)
        with np.errstate(under="ignore"):
            table = np.ldexp(1.0, exponents)
        table.setflags(write=False)
        _POW2_TABLE = table
    return _POW2_TABLE


def pow2(exponents) -> np.ndarray:
    """Exact ``2.0**exponents`` for integer exponents via the shared table."""
    idx = np.clip(np.asarray(exponents, dtype=np.int64) + POW2_RANGE,
                  0, 2 * POW2_RANGE)
    return pow2_table()[idx]


def _msb_index(values: np.ndarray) -> np.ndarray:
    """Exact leading-one (MSB) bit index of positive int64 values."""
    msb = (np.frexp(values.astype(np.float64))[1] - 1).astype(np.int64)
    # float64 conversion may round up across a power of two.
    return msb - ((values >> msb) == 0)


def mitchell_multiply_int(n1, n2) -> np.ndarray:
    """Approximate the product of unsigned integers with Mitchell's algorithm.

    Implements the Figure-6 datapath: leading-one detection, left-align of
    the fraction, addition in the log domain, and decode back to binary.
    Operands must be non-negative and below 2^31 so the exact log-domain sum
    fits in int64.  A zero operand yields zero (hardware detects it before
    the LOD).
    """
    n1 = np.asarray(n1, dtype=np.int64)
    n2 = np.asarray(n2, dtype=np.int64)
    if (n1 < 0).any() or (n2 < 0).any():
        raise ValueError("Mitchell multiplication is defined for non-negative integers")
    if (n1 >= 1 << 31).any() or (n2 >= 1 << 31).any():
        raise ValueError("operands must be below 2^31")
    n1, n2 = np.broadcast_arrays(n1, n2)

    zero = (n1 == 0) | (n2 == 0)
    s1 = np.where(zero, np.int64(1), n1)
    s2 = np.where(zero, np.int64(1), n2)

    k1 = _msb_index(s1)
    k2 = _msb_index(s2)
    # Fraction parts x = (n - 2^k) / 2^k, represented at a common scale of
    # 2^-62 ... instead keep exact: x1 + x2 = f1/2^k1 + f2/2^k2.  Align both
    # to scale 2^-(k1+k2): x_sum_scaled = f1 * 2^k2 + f2 * 2^k1.
    f1 = s1 - (np.int64(1) << k1)
    f2 = s2 - (np.int64(1) << k2)
    x_sum_scaled = (f1 << k2) + (f2 << k1)  # (x1 + x2) * 2^(k1+k2)
    unit = np.int64(1) << (k1 + k2)

    carry = x_sum_scaled >= unit
    # P = 2^(k1+k2) * (1 + x1 + x2)      -> unit + x_sum_scaled
    # P = 2^(k1+k2+1) * (x1 + x2)        -> 2 * x_sum_scaled
    product = np.where(carry, x_sum_scaled << np.int64(1), unit + x_sum_scaled)
    return np.where(zero, np.int64(0), product)


def mitchell_mantissa_product(m1: np.ndarray, m2: np.ndarray) -> np.ndarray:
    """Mitchell approximation of ``m1 * m2`` for dyadic fractions in (0, 2).

    ``m1`` and ``m2`` are float64 arrays holding exactly-representable
    mantissa values (e.g. ``1 + Ma`` in [1, 2) for the log path, or the
    fraction ``Ma`` in (0, 1) for the full path).  Zero operands yield zero.

    The computation mirrors the hardware: decompose each operand as
    ``2^k (1 + x)`` with ``x in [0, 1)``, add in the log domain, decode.
    All intermediate quantities are dyadic rationals representable in
    float64, so the model is exact w.r.t. the algorithm.
    """
    m1 = np.asarray(m1, dtype=np.float64)
    m2 = np.asarray(m2, dtype=np.float64)
    m1, m2 = np.broadcast_arrays(m1, m2)

    zero = (m1 == 0) | (m2 == 0)
    s1 = np.where(zero, 1.0, m1)
    s2 = np.where(zero, 1.0, m2)

    frac1, exp1 = np.frexp(s1)  # s = frac * 2^exp, frac in [0.5, 1)
    frac2, exp2 = np.frexp(s2)
    k1 = exp1 - 1
    k2 = exp2 - 1
    x1 = 2.0 * frac1 - 1.0  # in [0, 1)
    x2 = 2.0 * frac2 - 1.0

    x_sum = x1 + x2
    scale = pow2(k1 + k2)
    product = np.where(x_sum < 1.0, scale * (1.0 + x_sum), 2.0 * scale * x_sum)
    return np.where(zero, 0.0, product)
