"""IEEE-754 bit-level utilities shared by every imprecise unit.

The imprecise hardware units in this package are behavioral models of RTL
datapaths.  They operate on the sign / exponent / mantissa fields of IEEE-754
values directly, exactly as the hardware would, so the emulation is bit-exact
for the integer-datapath units (the Table-1 adder and multiplier) and within
one float64 ULP for the linear-approximation datapaths.

Two format descriptors are provided, ``BINARY32`` and ``BINARY64``.  All
functions are vectorized over NumPy arrays; scalars are accepted and returned
as 0-d arrays by NumPy's usual broadcasting rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "format_for_dtype",
    "decompose",
    "compose",
    "flush_subnormals",
    "truncate_mantissa",
    "is_special",
]


@dataclass(frozen=True)
class FloatFormat:
    """Static description of an IEEE-754 binary interchange format."""

    name: str
    dtype: np.dtype
    uint: np.dtype
    exponent_bits: int
    mantissa_bits: int

    @property
    def bias(self) -> int:
        """Exponent bias (127 for binary32, 1023 for binary64)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def exponent_mask(self) -> int:
        return (1 << self.exponent_bits) - 1

    @property
    def mantissa_mask(self) -> int:
        return (1 << self.mantissa_bits) - 1

    @property
    def implicit_one(self) -> int:
        """Integer weight of the implicit leading 1 of a normal mantissa."""
        return 1 << self.mantissa_bits

    @property
    def sign_shift(self) -> int:
        return self.exponent_bits + self.mantissa_bits

    @property
    def max_exponent(self) -> int:
        """Largest biased exponent of a *normal* number."""
        return self.exponent_mask - 1


BINARY16 = FloatFormat(
    name="binary16",
    dtype=np.dtype(np.float16),
    uint=np.dtype(np.uint16),
    exponent_bits=5,
    mantissa_bits=10,
)

BINARY32 = FloatFormat(
    name="binary32",
    dtype=np.dtype(np.float32),
    uint=np.dtype(np.uint32),
    exponent_bits=8,
    mantissa_bits=23,
)

BINARY64 = FloatFormat(
    name="binary64",
    dtype=np.dtype(np.float64),
    uint=np.dtype(np.uint64),
    exponent_bits=11,
    mantissa_bits=52,
)

_FORMATS = {
    BINARY16.dtype: BINARY16,
    BINARY32.dtype: BINARY32,
    BINARY64.dtype: BINARY64,
}


def format_for_dtype(dtype) -> FloatFormat:
    """Return the :class:`FloatFormat` for ``dtype`` (float32 or float64)."""
    dt = np.dtype(dtype)
    try:
        return _FORMATS[dt]
    except KeyError:
        raise TypeError(f"unsupported floating point dtype: {dt}") from None


def decompose(x: np.ndarray, fmt: FloatFormat):
    """Split ``x`` into (sign, biased exponent, mantissa fraction) fields.

    Returns integer arrays of the format's unsigned type.  ``sign`` is 0/1,
    ``exponent`` is the raw biased exponent field, and ``mantissa`` is the
    fraction field without the implicit leading one.
    """
    x = np.asarray(x, dtype=fmt.dtype)
    bits = x.view(fmt.uint)
    sign = bits >> np.array(fmt.sign_shift, dtype=fmt.uint)
    exponent = (bits >> np.array(fmt.mantissa_bits, dtype=fmt.uint)) & np.array(
        fmt.exponent_mask, dtype=fmt.uint
    )
    mantissa = bits & np.array(fmt.mantissa_mask, dtype=fmt.uint)
    return sign, exponent, mantissa


def compose(sign, exponent, mantissa, fmt: FloatFormat) -> np.ndarray:
    """Assemble IEEE-754 values from raw fields (inverse of :func:`decompose`)."""
    sign = np.asarray(sign, dtype=fmt.uint)
    exponent = np.asarray(exponent, dtype=fmt.uint)
    mantissa = np.asarray(mantissa, dtype=fmt.uint)
    bits = (
        (sign << np.array(fmt.sign_shift, dtype=fmt.uint))
        | (exponent << np.array(fmt.mantissa_bits, dtype=fmt.uint))
        | (mantissa & np.array(fmt.mantissa_mask, dtype=fmt.uint))
    )
    return bits.view(fmt.dtype)


def flush_subnormals(x: np.ndarray, fmt: FloatFormat | None = None) -> np.ndarray:
    """Flush subnormal values to (signed) zero.

    All imprecise units in the paper set subnormal numbers to zero so that the
    hardware for handling them can be removed.
    """
    x = np.asarray(x)
    if fmt is None:
        fmt = format_for_dtype(x.dtype)
    bits = x.astype(fmt.dtype, copy=False).view(fmt.uint)
    exponent = (bits >> np.array(fmt.mantissa_bits, dtype=fmt.uint)) & np.array(
        fmt.exponent_mask, dtype=fmt.uint
    )
    mantissa = bits & np.array(fmt.mantissa_mask, dtype=fmt.uint)
    subnormal = (exponent == 0) & (mantissa != 0)
    if not subnormal.any():
        return x.astype(fmt.dtype, copy=False)
    # Keep only the sign bit where subnormal: one pass, no intermediate copy.
    signs = bits & np.array(1 << fmt.sign_shift, dtype=fmt.uint)
    return np.where(subnormal, signs, bits).view(fmt.dtype)


def truncate_mantissa(x: np.ndarray, keep_bits: int, fmt: FloatFormat | None = None) -> np.ndarray:
    """Zero all mantissa bits below the top ``keep_bits`` fraction bits.

    This models hardware bit truncation of operand or result mantissas (no
    rounding; magnitude truncation toward zero).  ``keep_bits`` may range from
    0 (mantissa forced to the implicit 1) to ``fmt.mantissa_bits`` (identity).
    NaN and infinity payloads are preserved.
    """
    x = np.asarray(x)
    if fmt is None:
        fmt = format_for_dtype(x.dtype)
    if not 0 <= keep_bits <= fmt.mantissa_bits:
        raise ValueError(
            f"keep_bits must be in [0, {fmt.mantissa_bits}], got {keep_bits}"
        )
    if keep_bits == fmt.mantissa_bits:
        return x.astype(fmt.dtype, copy=False)
    drop = fmt.mantissa_bits - keep_bits
    bits = x.astype(fmt.dtype, copy=False).view(fmt.uint)
    mask = np.array(~((1 << drop) - 1) & ((1 << (fmt.sign_shift + 1)) - 1), dtype=fmt.uint)
    truncated = bits & mask
    # Reuse the raw view instead of re-running decompose on the source array.
    exponent = (bits >> np.array(fmt.mantissa_bits, dtype=fmt.uint)) & np.array(
        fmt.exponent_mask, dtype=fmt.uint
    )
    special = exponent == fmt.exponent_mask
    result = np.where(special, bits, truncated)
    return result.view(fmt.dtype)


def is_special(x: np.ndarray, fmt: FloatFormat | None = None) -> np.ndarray:
    """Boolean mask of NaN / infinity values (raw exponent all ones)."""
    x = np.asarray(x)
    if fmt is None:
        fmt = format_for_dtype(x.dtype)
    _, exponent, _ = decompose(x, fmt)
    return exponent == fmt.exponent_mask
