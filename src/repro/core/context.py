"""Instrumented arithmetic context: the kernels' window onto the hardware.

The paper runs CUDA kernels on GPGPU-Sim with a knob that switches each
arithmetic unit between the precise and the imprecise functional model, while
GPUWattch collects per-operation performance counters.  In this reproduction
every application kernel routes its floating point arithmetic through an
:class:`ArithmeticContext`, which

- dispatches each operation to the IEEE-precise NumPy implementation or the
  corresponding imprecise unit according to its :class:`~repro.core.config.IHWConfig`,
- counts scalar operations per operation type (the performance counters
  consumed by :mod:`repro.gpu.power` and :mod:`repro.gpu.savings`),
- lets a kernel pin individual operations to the precise datapath
  (``precise=True``), as the CP study does for coordinate computations.

Operations and their executing unit class:

========  =======  =====================================
op        unit     precise implementation
========  =======  =====================================
add, sub  FPU      ``numpy.add`` / ``numpy.subtract``
mul, fma  FPU      ``numpy.multiply`` / mul+add
div       SFU      ``numpy.divide``
rcp       SFU      ``1 / x``
rsqrt     SFU      ``1 / sqrt(x)``
sqrt      SFU      ``numpy.sqrt``
log2      SFU      ``numpy.log2``
========  =======  =====================================
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from .backends import backend_accepts_threads, default_backend_name, \
    get_backend
from .config import IHWConfig, batch_compatible
from .quadratic import (
    quadratic_log2,
    quadratic_reciprocal,
    quadratic_rsqrt,
    quadratic_sqrt,
)
from .floatops import flush_subnormals

__all__ = [
    "ArithmeticContext",
    "ContextBatch",
    "OP_UNIT_CLASS",
    "FPU_OPS",
    "SFU_OPS",
]

#: Unit class executing each counted operation.
OP_UNIT_CLASS = {
    "add": "FPU",
    "sub": "FPU",
    "mul": "FPU",
    "fma": "FPU",
    "div": "SFU",
    "rcp": "SFU",
    "rsqrt": "SFU",
    "sqrt": "SFU",
    "log2": "SFU",
}

FPU_OPS = tuple(op for op, cls in OP_UNIT_CLASS.items() if cls == "FPU")
SFU_OPS = tuple(op for op, cls in OP_UNIT_CLASS.items() if cls == "SFU")

#: Which IHWConfig unit switch governs each operation.
_OP_UNIT_SWITCH = {
    "add": "add",
    "sub": "add",
    "mul": "mul",
    "fma": "fma",
    "div": "div",
    "rcp": "rcp",
    "rsqrt": "rsqrt",
    "sqrt": "sqrt",
    "log2": "log2",
}


def _config_backend(config: IHWConfig):
    """Construct the backend a configuration selects.

    ``config.backend_threads`` reaches the factory only when the resolved
    backend actually has a thread pool, so a thread count riding along
    with a serial backend (or the default) is ignored rather than fatal.
    """
    name = config.backend if config.backend is not None \
        else default_backend_name()
    threads = config.backend_threads if backend_accepts_threads(name) \
        else None
    return get_backend(name, threads=threads)


class ArithmeticContext:
    """Counted, configuration-dispatched floating point arithmetic.

    Parameters
    ----------
    config:
        Which units run imprecisely.  Defaults to fully precise.
    dtype:
        ``numpy.float32`` (GPU benchmarks), ``numpy.float64`` (the SPEC CPU
        studies), or ``numpy.float16`` (the half-precision extension).
    backend:
        Compute backend executing the imprecise unit operations: a name, a
        :class:`~repro.core.backends.base.ComputeBackend` instance, or
        ``None`` to use ``config.backend`` / the ``REPRO_BACKEND``
        environment variable.  Backends are bit-identical, so this only
        changes execution speed, never results.
    """

    def __init__(self, config: IHWConfig | None = None, dtype=np.float32,
                 backend=None):
        self.config = config if config is not None else IHWConfig.precise()
        self.dtype = np.dtype(dtype)
        if self.dtype not in (
            np.dtype(np.float16), np.dtype(np.float32), np.dtype(np.float64)
        ):
            raise TypeError(f"unsupported dtype: {self.dtype}")
        #: backend executing the imprecise unit operations (explicit argument
        #: wins over ``config.backend``, which wins over ``REPRO_BACKEND``);
        #: an explicit instance keeps its own thread count, otherwise
        #: ``config.backend_threads`` reaches the parallel factories
        if backend is not None:
            self.backend = get_backend(backend)
        else:
            self.backend = _config_backend(self.config)
        #: scalar-operation counts keyed by (op, "imprecise" | "precise")
        self.counts: Counter = Counter()
        #: optional :class:`~repro.telemetry.DriftProbe` observing imprecise
        #: results against their float64-exact value.  The probe never
        #: touches ``counts`` — the power model's inputs are identical with
        #: and without it.
        self.drift_probe = None
        #: optional :class:`~repro.telemetry.OpTimer` accumulating wall-clock
        #: time per imprecise operation.  Attached externally (like
        #: ``drift_probe``) so the core layer never imports telemetry.
        self.op_timer = None

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def _count(self, op: str, result, imprecise: bool):
        key = (op, "imprecise" if imprecise else "precise")
        # Innermost loop of every kernel: results are almost always ndarrays
        # already, so only wrap the rare scalar case.
        if isinstance(result, np.ndarray):
            self.counts[key] += result.size
        else:
            self.counts[key] += int(np.asarray(result).size)

    def reset_counts(self):
        """Clear the performance counters."""
        self.counts.clear()

    def op_counts(self) -> dict:
        """Total scalar operations per op name (precise + imprecise)."""
        totals: Counter = Counter()
        for (op, _), n in self.counts.items():
            totals[op] += n
        return dict(totals)

    def counts_by_class(self) -> dict:
        """Total scalar operations per unit class (``FPU`` / ``SFU``)."""
        totals: Counter = Counter()
        for (op, _), n in self.counts.items():
            totals[OP_UNIT_CLASS[op]] += n
        return dict(totals)

    def _use_imprecise(self, op: str, precise: bool) -> bool:
        return not precise and self.config.is_enabled(_OP_UNIT_SWITCH[op])

    def _timed(self, op: str, fn):
        """Run one imprecise unit op, feeding ``op_timer`` when attached."""
        timer = self.op_timer
        if timer is None:
            return fn()
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if isinstance(out, np.ndarray):
            size = out.size
        else:
            size = int(np.asarray(out).size)
        timer.record(op, elapsed, size)
        return out

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, a, b, precise: bool = False):
        """``a + b``; imprecise threshold adder when the ``add`` unit is on."""
        if self._use_imprecise("add", precise):
            out = self._timed("add", lambda: self.backend.imprecise_add(
                a, b, self.config.adder_threshold, dtype=self.dtype))
            self._count("add", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "add", out, lambda: np.add(a, b, dtype=np.float64)
                )
        else:
            out = np.add(a, b, dtype=self.dtype)
            self._count("add", out, False)
        return out

    def sub(self, a, b, precise: bool = False):
        """``a - b``; shares the imprecise adder datapath."""
        if self._use_imprecise("sub", precise):
            out = self._timed("sub", lambda: self.backend.imprecise_subtract(
                a, b, self.config.adder_threshold, dtype=self.dtype))
            self._count("sub", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "sub", out, lambda: np.subtract(a, b, dtype=np.float64)
                )
        else:
            out = np.subtract(a, b, dtype=self.dtype)
            self._count("sub", out, False)
        return out

    def _imprecise_mul(self, a, b):
        mode = self.config.multiplier_mode
        if mode == "table1":
            return self.backend.imprecise_multiply(a, b, dtype=self.dtype)
        if mode == "mitchell":
            return self.backend.configurable_multiply(
                a, b, self.config.multiplier_config, dtype=self.dtype
            )
        return self.backend.truncated_multiply(
            a,
            b,
            self.config.multiplier_truncation,
            dtype=self.dtype,
            rounding=self.config.multiplier_bt_rounding,
        )

    def mul(self, a, b, precise: bool = False):
        """``a * b``; dispatches to the configured imprecise multiplier."""
        if self._use_imprecise("mul", precise):
            out = self._timed("mul", lambda: self._imprecise_mul(a, b))
            self._count("mul", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "mul", out, lambda: np.multiply(a, b, dtype=np.float64)
                )
        else:
            out = np.multiply(a, b, dtype=self.dtype)
            self._count("mul", out, False)
        return out

    def fma(self, a, b, c, precise: bool = False):
        """``a * b + c`` on the FMA unit."""
        if self._use_imprecise("fma", precise):
            out = self._timed("fma", lambda: self.backend.imprecise_fma(
                a, b, c, self.config.adder_threshold, dtype=self.dtype))
            self._count("fma", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "fma",
                    out,
                    lambda: np.add(
                        np.multiply(a, b, dtype=np.float64), c, dtype=np.float64
                    ),
                )
        else:
            out = np.add(np.multiply(a, b, dtype=self.dtype), c, dtype=self.dtype)
            self._count("fma", out, False)
        return out

    def _quadratic_divide(self, a, b):
        """``a * quadratic_rcp(b)`` — the quadratic-mode divider."""
        a = flush_subnormals(np.asarray(a, dtype=self.dtype))
        rcp = quadratic_reciprocal(b, dtype=self.dtype)
        with np.errstate(invalid="ignore"):
            result = a.astype(np.float64) * rcp.astype(np.float64)
        return flush_subnormals(result.astype(self.dtype))

    def div(self, a, b, precise: bool = False):
        """``a / b`` on the SFU divider."""
        if self._use_imprecise("div", precise):
            if self.config.sfu_mode == "quadratic":
                out = self._timed("div", lambda: self._quadratic_divide(a, b))
            else:
                out = self._timed("div", lambda: self.backend.imprecise_divide(
                    a, b, dtype=self.dtype))
            self._count("div", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "div", out, lambda: np.divide(a, b, dtype=np.float64)
                )
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.divide(a, b, dtype=self.dtype)
            self._count("div", out, False)
        return out

    def rcp(self, x, precise: bool = False):
        """``1 / x`` on the SFU."""
        if self._use_imprecise("rcp", precise):
            if self.config.sfu_mode == "quadratic":
                out = self._timed("rcp", lambda: quadratic_reciprocal(
                    x, dtype=self.dtype))
            else:
                out = self._timed(
                    "rcp",
                    lambda: self.backend.imprecise_reciprocal(x, dtype=self.dtype),
                )
            self._count("rcp", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "rcp", out, lambda: 1.0 / np.asarray(x, dtype=np.float64)
                )
        else:
            with np.errstate(divide="ignore"):
                out = np.divide(np.array(1.0, self.dtype), x, dtype=self.dtype)
            self._count("rcp", out, False)
        return out

    def rsqrt(self, x, precise: bool = False):
        """``1 / sqrt(x)`` on the SFU."""
        if self._use_imprecise("rsqrt", precise):
            if self.config.sfu_mode == "quadratic":
                out = self._timed("rsqrt", lambda: quadratic_rsqrt(
                    x, dtype=self.dtype))
            else:
                out = self._timed(
                    "rsqrt",
                    lambda: self.backend.imprecise_rsqrt(x, dtype=self.dtype),
                )
            self._count("rsqrt", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "rsqrt",
                    out,
                    lambda: 1.0 / np.sqrt(np.asarray(x, dtype=np.float64)),
                )
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.divide(
                    np.array(1.0, self.dtype), np.sqrt(x, dtype=self.dtype), dtype=self.dtype
                )
            self._count("rsqrt", out, False)
        return out

    def sqrt(self, x, precise: bool = False):
        """``sqrt(x)`` on the SFU."""
        if self._use_imprecise("sqrt", precise):
            if self.config.sfu_mode == "quadratic":
                out = self._timed("sqrt", lambda: quadratic_sqrt(
                    x, dtype=self.dtype))
            else:
                out = self._timed(
                    "sqrt",
                    lambda: self.backend.imprecise_sqrt(x, dtype=self.dtype),
                )
            self._count("sqrt", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "sqrt", out, lambda: np.sqrt(np.asarray(x, dtype=np.float64))
                )
        else:
            with np.errstate(invalid="ignore"):
                out = np.sqrt(x, dtype=self.dtype)
            self._count("sqrt", out, False)
        return out

    def log2(self, x, precise: bool = False):
        """``log2(x)`` on the SFU."""
        if self._use_imprecise("log2", precise):
            if self.config.sfu_mode == "quadratic":
                out = self._timed("log2", lambda: quadratic_log2(
                    x, dtype=self.dtype))
            else:
                out = self._timed(
                    "log2",
                    lambda: self.backend.imprecise_log2(x, dtype=self.dtype),
                )
            self._count("log2", out, True)
            if self.drift_probe is not None:
                self.drift_probe.observe(
                    "log2", out, lambda: np.log2(np.asarray(x, dtype=np.float64))
                )
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.log2(x, dtype=self.dtype)
            self._count("log2", out, False)
        return out

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def array(self, values):
        """Convert ``values`` to this context's dtype (not counted)."""
        return np.asarray(values, dtype=self.dtype)

    def dot3(self, ax, ay, az, bx, by, bz, precise: bool = False):
        """3-component dot product (3 muls + 2 adds), as ray tracers use."""
        return self.add(
            self.add(self.mul(ax, bx, precise), self.mul(ay, by, precise), precise),
            self.mul(az, bz, precise),
            precise,
        )


class ContextBatch:
    """One shared operand stream evaluated under N configurations at once.

    The batched mirror of :class:`ArithmeticContext`: every operation takes
    the *same* operands for all lanes and returns a list with one result
    per lane, in ``configs`` order.  Operations whose structural parameter
    varies across the batch (the threshold adder/FMA, the Mitchell and
    ``bt_N`` multipliers) dispatch to the backend's batched entry points —
    one sign/exponent/fraction decomposition feeding N cheap integer-domain
    fixups — while configuration-invariant operations (the Table-1
    multiplier, the SFUs, every precise path) run once and every lane
    shares the result.  Each lane's result is contractually bit-identical
    to evaluating that configuration through its own
    :class:`ArithmeticContext`; batching is purely an execution-speed
    choice, so result-cache keys are unaffected.

    The configurations must agree on
    :meth:`~repro.core.config.IHWConfig.batch_signature` (same enabled
    units, multiplier mode, SFU mode) — check candidates with
    :func:`~repro.core.config.batch_compatible` or partition them with
    :func:`~repro.core.config.batch_groups`.

    Lane *divergence* is deliberately out of scope: after one imprecise
    operation the N outputs differ, so downstream work on per-lane operands
    cannot share a decomposition.  Kernels needing per-lane state use
    ``lanes[i]`` — full :class:`ArithmeticContext` instances sharing this
    batch's backend (and thus one scratch pool) — whose counters this class
    also feeds.
    """

    def __init__(self, configs, dtype=np.float32, backend=None):
        configs = list(configs)
        if not configs:
            raise ValueError("ContextBatch needs at least one configuration")
        if not batch_compatible(configs):
            raise ValueError(
                "configurations are not batch-compatible: a batch must "
                "share enabled units, multiplier_mode, and sfu_mode "
                "(thresholds and multiplier parameters may vary per lane)"
            )
        self.configs = configs
        if backend is not None:
            shared = get_backend(backend)
        else:
            shared = _config_backend(configs[0])
        #: one full ArithmeticContext per configuration, all sharing a
        #: single backend instance; per-lane performance counters live here
        self.lanes = [
            ArithmeticContext(cfg, dtype=dtype, backend=shared)
            for cfg in configs
        ]
        self.backend = shared
        self.dtype = self.lanes[0].dtype
        #: shared switches (enabled units, sfu_mode, multiplier_mode); the
        #: compatibility check above guarantees these agree across lanes
        self.config = configs[0]

    def __len__(self) -> int:
        return len(self.lanes)

    # ------------------------------------------------------------------
    # Counting (delegates to the per-lane contexts)
    # ------------------------------------------------------------------
    def _count_all(self, op: str, outs, imprecise: bool):
        for lane, out in zip(self.lanes, outs):
            lane._count(op, out, imprecise)

    def reset_counts(self):
        """Clear every lane's performance counters."""
        for lane in self.lanes:
            lane.reset_counts()

    def op_counts(self) -> list:
        """Per-lane totals, one dict per configuration."""
        return [lane.op_counts() for lane in self.lanes]

    def _use_imprecise(self, op: str, precise: bool) -> bool:
        # Unit switches are part of the batch signature, so lane 0 speaks
        # for the whole batch.
        return self.lanes[0]._use_imprecise(op, precise)

    def _replicate(self, out) -> list:
        return [out] * len(self.lanes)

    # ------------------------------------------------------------------
    # Batched FPU operations (structural parameter varies per lane)
    # ------------------------------------------------------------------
    def add(self, a, b, precise: bool = False) -> list:
        """``a + b`` per lane; one decompose, per-lane threshold fixups."""
        if self._use_imprecise("add", precise):
            outs = self.backend.imprecise_add_batch(
                a, b, [c.adder_threshold for c in self.configs],
                dtype=self.dtype)
            self._count_all("add", outs, True)
        else:
            outs = self._replicate(np.add(a, b, dtype=self.dtype))
            self._count_all("add", outs, False)
        return outs

    def sub(self, a, b, precise: bool = False) -> list:
        """``a - b`` per lane; shares the batched adder datapath."""
        if self._use_imprecise("sub", precise):
            outs = self.backend.imprecise_subtract_batch(
                a, b, [c.adder_threshold for c in self.configs],
                dtype=self.dtype)
            self._count_all("sub", outs, True)
        else:
            outs = self._replicate(np.subtract(a, b, dtype=self.dtype))
            self._count_all("sub", outs, False)
        return outs

    def fma(self, a, b, c, precise: bool = False) -> list:
        """``a * b + c`` per lane; the product is computed once."""
        if self._use_imprecise("fma", precise):
            outs = self.backend.imprecise_fma_batch(
                a, b, c, [cfg.adder_threshold for cfg in self.configs],
                dtype=self.dtype)
            self._count_all("fma", outs, True)
        else:
            outs = self._replicate(
                np.add(np.multiply(a, b, dtype=self.dtype), c,
                       dtype=self.dtype)
            )
            self._count_all("fma", outs, False)
        return outs

    def mul(self, a, b, precise: bool = False) -> list:
        """``a * b`` per lane under the configured multiplier mode."""
        if self._use_imprecise("mul", precise):
            mode = self.config.multiplier_mode
            if mode == "mitchell":
                outs = self.backend.configurable_multiply_batch(
                    a, b, [c.multiplier_config for c in self.configs],
                    dtype=self.dtype)
            elif mode == "truncated":
                outs = self.backend.truncated_multiply_batch(
                    a, b, [c.multiplier_truncation for c in self.configs],
                    dtype=self.dtype,
                    rounding=[c.multiplier_bt_rounding
                              for c in self.configs])
            else:
                # Table-1 multiplier has no structural parameter: one
                # evaluation serves every lane.
                outs = self._replicate(
                    self.backend.imprecise_multiply(a, b, dtype=self.dtype)
                )
            self._count_all("mul", outs, True)
        else:
            outs = self._replicate(np.multiply(a, b, dtype=self.dtype))
            self._count_all("mul", outs, False)
        return outs

    # ------------------------------------------------------------------
    # SFU operations (configuration-invariant across a batch: sfu_mode is
    # part of the batch signature and the linear/quadratic SFUs have no
    # per-config structural parameter, so one evaluation serves all lanes)
    # ------------------------------------------------------------------
    def _sfu(self, op: str, imprecise_fn, precise_fn, precise: bool) -> list:
        if self._use_imprecise(op, precise):
            outs = self._replicate(imprecise_fn())
            self._count_all(op, outs, True)
        else:
            outs = self._replicate(precise_fn())
            self._count_all(op, outs, False)
        return outs

    def div(self, a, b, precise: bool = False) -> list:
        """``a / b`` per lane on the SFU divider."""
        if self.config.sfu_mode == "quadratic":
            imprecise = lambda: self.lanes[0]._quadratic_divide(a, b)
        else:
            imprecise = lambda: self.backend.imprecise_divide(
                a, b, dtype=self.dtype)

        def precise_fn():
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.divide(a, b, dtype=self.dtype)

        return self._sfu("div", imprecise, precise_fn, precise)

    def rcp(self, x, precise: bool = False) -> list:
        """``1 / x`` per lane on the SFU."""
        if self.config.sfu_mode == "quadratic":
            imprecise = lambda: quadratic_reciprocal(x, dtype=self.dtype)
        else:
            imprecise = lambda: self.backend.imprecise_reciprocal(
                x, dtype=self.dtype)

        def precise_fn():
            with np.errstate(divide="ignore"):
                return np.divide(np.array(1.0, self.dtype), x,
                                 dtype=self.dtype)

        return self._sfu("rcp", imprecise, precise_fn, precise)

    def rsqrt(self, x, precise: bool = False) -> list:
        """``1 / sqrt(x)`` per lane on the SFU."""
        if self.config.sfu_mode == "quadratic":
            imprecise = lambda: quadratic_rsqrt(x, dtype=self.dtype)
        else:
            imprecise = lambda: self.backend.imprecise_rsqrt(
                x, dtype=self.dtype)

        def precise_fn():
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.divide(
                    np.array(1.0, self.dtype),
                    np.sqrt(x, dtype=self.dtype),
                    dtype=self.dtype,
                )

        return self._sfu("rsqrt", imprecise, precise_fn, precise)

    def sqrt(self, x, precise: bool = False) -> list:
        """``sqrt(x)`` per lane on the SFU."""
        if self.config.sfu_mode == "quadratic":
            imprecise = lambda: quadratic_sqrt(x, dtype=self.dtype)
        else:
            imprecise = lambda: self.backend.imprecise_sqrt(
                x, dtype=self.dtype)

        def precise_fn():
            with np.errstate(invalid="ignore"):
                return np.sqrt(x, dtype=self.dtype)

        return self._sfu("sqrt", imprecise, precise_fn, precise)

    def log2(self, x, precise: bool = False) -> list:
        """``log2(x)`` per lane on the SFU."""
        if self.config.sfu_mode == "quadratic":
            imprecise = lambda: quadratic_log2(x, dtype=self.dtype)
        else:
            imprecise = lambda: self.backend.imprecise_log2(
                x, dtype=self.dtype)

        def precise_fn():
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.log2(x, dtype=self.dtype)

        return self._sfu("log2", imprecise, precise_fn, precise)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def array(self, values):
        """Convert ``values`` to this batch's dtype (not counted)."""
        return np.asarray(values, dtype=self.dtype)
