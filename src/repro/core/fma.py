"""Imprecise fused multiply-add: imprecise multiply feeding imprecise add.

Table 1 lists ``y = a * b +/- c`` built from the imprecise multiplier and
adder, so the error is the composition of both units (unbounded relative
error in the near-cancellation subtraction case, like the adder).
"""

from __future__ import annotations

import numpy as np

from .adder import DEFAULT_THRESHOLD, imprecise_add
from .multiplier import imprecise_multiply

__all__ = ["imprecise_fma"]


def imprecise_fma(a, b, c, threshold: int = DEFAULT_THRESHOLD, dtype=np.float32) -> np.ndarray:
    """Compute ``a * b + c`` with the Table-1 imprecise multiplier and adder.

    Parameters
    ----------
    a, b, c:
        Array-like operands; converted to ``dtype``.
    threshold:
        The adder's structural parameter ``TH``.
    dtype:
        ``numpy.float32`` or ``numpy.float64``.
    """
    product = imprecise_multiply(a, b, dtype=dtype)
    return imprecise_add(product, c, threshold=threshold, dtype=dtype)
