"""Imprecise special function units: linear approximation + range reduction.

Table 1 proposes one-shot linear approximations for the elementary functions
normally computed by the GPU's special function units (SFU):

=============  ==========================================  ==============
function       imprecise function                          eps_max
=============  ==========================================  ==============
1/x            y = 2.823 - 1.882 x     on x in [0.5, 1]    5.88%
1/sqrt(x)      y = 2.08 - 1.1911 x     on x in [0.5, 1]    11.11%
sqrt(x)        y = x (2.08 - 1.1911 x) on x in [0.25, 1]   11.11%
log2(x)        y = exp + 0.9846 x - 0.9196, x in [1, 2)    unbounded
a / b          y = a (2.823 - 1.882 b), b in [0.5, 1]      5.88%
=============  ==========================================  ==============

Range reduction exploits the IEEE-754 representation: the operand's mantissa
``1.M in [1, 2)`` is mapped into the approximation interval by replacing the
exponent (a right shift by one for [0.5, 1)), the linear polynomial is
evaluated, and the exponent is reconstructed.  For the square roots the
exponent parity is absorbed into a second coefficient set scaled by
``1/sqrt(2)`` (hardware muxes the constants on the exponent's LSB).

Subnormal inputs/outputs flush to zero, rounding circuits are removed, and
IEEE special cases (0, inf, NaN, negative operands) are handled.
"""

from __future__ import annotations

import math

import numpy as np

from .floatops import decompose, flush_subnormals, format_for_dtype

__all__ = [
    "imprecise_reciprocal",
    "imprecise_rsqrt",
    "imprecise_sqrt",
    "imprecise_log2",
    "imprecise_divide",
    "RECIPROCAL_COEFFS",
    "RSQRT_COEFFS",
    "LOG2_COEFFS",
    "RECIPROCAL_MAX_ERROR",
    "RSQRT_MAX_ERROR",
    "SQRT_MAX_ERROR",
]

#: (intercept, slope) of the reciprocal approximation on [0.5, 1].
RECIPROCAL_COEFFS = (2.823, -1.882)
#: (intercept, slope) of the inverse-square-root approximation on [0.5, 1].
RSQRT_COEFFS = (2.08, -1.1911)
#: (intercept, slope) applied to the mantissa for log2 on [1, 2).
LOG2_COEFFS = (-0.9196, 0.9846)

# The paper quotes 5.88% for the reciprocal; the exact endpoint error of the
# published coefficients is (2 - 1.882/... ) = 0.0590, so we carry the exact
# bound and note the paper's rounded figure.
RECIPROCAL_MAX_ERROR = 0.0590
RSQRT_MAX_ERROR = 0.1112
SQRT_MAX_ERROR = 0.1112

_SQRT1_2 = 1.0 / math.sqrt(2.0)


def _mantissa_and_exponent(x, fmt):
    """Decompose positive normal values into (1+M in [1,2), unbiased exp)."""
    _, exp, frac = decompose(x, fmt)
    mant = 1.0 + frac.astype(np.float64) / float(fmt.implicit_one)
    e = exp.astype(np.int64) - np.int64(fmt.bias)
    return mant, e


def _quantize(values: np.ndarray, fmt) -> np.ndarray:
    """Cast the float64 datapath result to the target format, flush subnormals."""
    out = values.astype(fmt.dtype)
    return flush_subnormals(out, fmt)


def imprecise_reciprocal(x, dtype=np.float32) -> np.ndarray:
    """Approximate ``1 / x`` with the Table-1 linear SFU.

    Range reduction: ``|x| = m * 2^e`` with ``m in [1, 2)`` gives
    ``|x| = (m/2) * 2^(e+1)`` and ``1/|x| = lin(m/2) * 2^-(e+1)``.
    """
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)
    ax = np.abs(x)

    mant, e = _mantissa_and_exponent(ax, fmt)
    xr = 0.5 * mant  # in [0.5, 1)
    c0, c1 = RECIPROCAL_COEFFS
    approx = (c0 + c1 * xr) * np.exp2(-(e + 1).astype(np.float64))
    result = np.where(np.signbit(x), -approx, approx)

    with np.errstate(divide="ignore"):
        result = np.where(x == 0, np.where(np.signbit(x), -np.inf, np.inf), result)
    result = np.where(np.isinf(x), np.where(np.signbit(x), -0.0, 0.0), result)
    result = np.where(np.isnan(x), np.nan, result)
    return _quantize(result, fmt)


def imprecise_rsqrt(x, dtype=np.float32) -> np.ndarray:
    """Approximate ``1 / sqrt(x)`` with the Table-1 linear SFU.

    For ``x = m * 2^e``: write ``x = xr * 2^(e+1)`` with ``xr = m/2`` in
    [0.5, 1).  When ``e+1`` is even the result is ``lin(xr) * 2^-(e+1)/2``;
    odd parity multiplies the coefficients by ``1/sqrt(2)``.
    """
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)

    mant, e = _mantissa_and_exponent(np.abs(x), fmt)
    xr = 0.5 * mant
    c0, c1 = RSQRT_COEFFS
    lin = c0 + c1 * xr
    e1 = e + 1
    # e1 = 2q + r: result = lin * 2^-q / sqrt(2)^r
    q = np.floor_divide(e1, 2)
    r = e1 - 2 * q
    approx = lin * np.exp2(-q.astype(np.float64)) * np.where(r == 1, _SQRT1_2, 1.0)

    with np.errstate(divide="ignore", invalid="ignore"):
        approx = np.where(x == 0, np.inf, approx)
        approx = np.where(np.isposinf(x), 0.0, approx)
        approx = np.where((x < 0) | np.isnan(x), np.nan, approx)
    return _quantize(approx, fmt)


def imprecise_sqrt(x, dtype=np.float32) -> np.ndarray:
    """Approximate ``sqrt(x)`` as ``x_r * lin(x_r)`` (Table 1).

    Range reduction maps ``x = xr * 4^q`` with ``xr in [0.25, 1)`` so that
    ``sqrt(x) = 2^q * xr * (2.08 - 1.1911 xr)``.
    """
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)

    mant, e = _mantissa_and_exponent(np.abs(x), fmt)
    # x = mant * 2^e = (mant * 2^r / 4) * 4^(q+... ): choose q so xr in [0.25,1).
    # e = 2q + r with r in {0, 1}: x = (mant * 2^r) * 4^q, mant*2^r in [1, 4),
    # xr = mant * 2^r / 4 in [0.25, 1) and sqrt(x) = 2^(q+1) * sqrt(xr).
    q = np.floor_divide(e, 2)
    r = e - 2 * q
    xr = mant * np.exp2(r.astype(np.float64)) * 0.25
    c0, c1 = RSQRT_COEFFS
    approx = xr * (c0 + c1 * xr) * np.exp2((q + 1).astype(np.float64))

    with np.errstate(invalid="ignore"):
        approx = np.where(x == 0, 0.0, approx)
        approx = np.where(np.isposinf(x), np.inf, approx)
        approx = np.where((x < 0) | np.isnan(x), np.nan, approx)
    return _quantize(approx, fmt)


def imprecise_log2(x, dtype=np.float32) -> np.ndarray:
    """Approximate ``log2(x)`` as ``e + 0.9846 m - 0.9196`` for mantissa m.

    The relative error is unbounded near ``x = 1`` where the true logarithm
    crosses zero (Table 1), but the absolute error stays below ~0.0155.
    """
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)

    mant, e = _mantissa_and_exponent(np.abs(x), fmt)
    c0, c1 = LOG2_COEFFS
    approx = e.astype(np.float64) + c1 * mant + c0

    with np.errstate(divide="ignore", invalid="ignore"):
        approx = np.where(x == 0, -np.inf, approx)
        approx = np.where(np.isposinf(x), np.inf, approx)
        approx = np.where((x < 0) | np.isnan(x), np.nan, approx)
    return _quantize(approx, fmt)


def imprecise_divide(a, b, dtype=np.float32) -> np.ndarray:
    """Approximate ``a / b`` as ``a * lin_rcp(b)`` (Table 1).

    The reciprocal of ``b`` is produced by the linear SFU and multiplied by
    ``a`` exactly (the divider's product stage), so the worst-case error is
    the reciprocal's 5.88%.
    """
    fmt = format_for_dtype(dtype)
    a = flush_subnormals(np.asarray(a, dtype=fmt.dtype), fmt)
    b = np.asarray(b, dtype=fmt.dtype)
    rcp = imprecise_reciprocal(b, dtype=dtype)
    with np.errstate(invalid="ignore"):
        result = a.astype(np.float64) * rcp.astype(np.float64)
        # 0 * inf and inf * 0 from the reciprocal stage are NaN, matching
        # IEEE division semantics for 0/0 and inf/inf.
    return _quantize(result, fmt)
