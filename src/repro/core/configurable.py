"""Low-power accuracy-configurable FP multiplier based on Mitchell's algorithm.

The multiplier (Chapter 3.2.2, Figure 7) replaces the mantissa multiplier of
an IEEE-754 FP multiplier with a Mitchell-algorithm (MA) unit plus adders and
supports two datapaths:

- **log path** (``lp``): MA applied to the whole mantissa product
  ``(1 + Ma) * (1 + Mb)``; equivalent to the intuitive replacement of the
  mantissa multiplier by an MA multiplier.  Maximum error 11.11%.
- **full path** (``fp``): the algebraic expansion
  ``1 + Ma + Mb + MA(Ma, Mb)`` where only the small cross term ``Ma * Mb``
  is approximated.  Maximum error 2.04% (Chapter 4.1.2).

On top of either path, ``truncation`` low-order bits of each operand
mantissa fraction feeding the MA unit are cut, widening the power-accuracy
design space (configurations named ``lp_trN`` / ``fp_trN`` in the paper).

As in the other imprecise units there is no rounding circuit (results are
truncated) and subnormals flush to zero; infinities and NaNs are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .floatops import compose, decompose, format_for_dtype
from .mitchell import mitchell_mantissa_product
from .multiplier import _special_results

__all__ = [
    "MultiplierConfig",
    "configurable_multiply",
    "FULL_PATH_MAX_ERROR",
    "LOG_PATH_MAX_ERROR",
]

#: Analytic maximum relative error of the full path (Chapter 4.1.2).
FULL_PATH_MAX_ERROR = 1.0 / 49.0
#: Analytic maximum relative error of the log path (Mitchell's bound).
LOG_PATH_MAX_ERROR = 1.0 / 9.0

_PATH_NAMES = {"lp": "log", "fp": "full", "log": "log", "full": "full"}


@dataclass(frozen=True)
class MultiplierConfig:
    """One accuracy configuration of the configurable FP multiplier.

    Attributes
    ----------
    path:
        ``"log"`` or ``"full"``.
    truncation:
        Number of low-order mantissa-fraction bits cut from each operand
        before the MA unit (0 = full bit width).
    """

    path: str = "full"
    truncation: int = 0

    def __post_init__(self):
        if self.path not in ("log", "full"):
            raise ValueError(f"path must be 'log' or 'full', got {self.path!r}")
        if self.truncation < 0:
            raise ValueError(f"truncation must be >= 0, got {self.truncation}")

    @classmethod
    def from_name(cls, name: str) -> "MultiplierConfig":
        """Parse a paper-style configuration name such as ``lp_tr19``.

        ``lp_trN``/``log_trN`` select the log path, ``fp_trN``/``full_trN``
        the full path; ``N`` is the truncation bit count.
        """
        try:
            path_part, tr_part = name.split("_tr")
            path = _PATH_NAMES[path_part]
            truncation = int(tr_part)
        except (ValueError, KeyError):
            raise ValueError(
                f"cannot parse multiplier configuration name {name!r}; "
                "expected e.g. 'lp_tr19' or 'fp_tr0'"
            ) from None
        return cls(path=path, truncation=truncation)

    @property
    def name(self) -> str:
        """Paper-style configuration name (``lp_trN`` / ``fp_trN``)."""
        prefix = "lp" if self.path == "log" else "fp"
        return f"{prefix}_tr{self.truncation}"


def configurable_multiply(
    a, b, config: MultiplierConfig = MultiplierConfig(), dtype=np.float32
) -> np.ndarray:
    """Multiply ``a * b`` with the accuracy-configurable FP multiplier.

    Parameters
    ----------
    a, b:
        Array-like operands; converted to ``dtype``.
    config:
        Datapath and truncation selection.
    dtype:
        ``numpy.float32`` or ``numpy.float64``.
    """
    fmt = format_for_dtype(dtype)
    if config.truncation > fmt.mantissa_bits:
        raise ValueError(
            f"truncation {config.truncation} exceeds the {fmt.mantissa_bits}-bit "
            f"mantissa of {fmt.name}"
        )
    a = np.asarray(a, dtype=fmt.dtype)
    b = np.asarray(b, dtype=fmt.dtype)
    a, b = np.broadcast_arrays(a, b)

    sign_a, exp_a, frac_a = decompose(a, fmt)
    sign_b, exp_b, frac_b = decompose(b, fmt)
    sign_z = sign_a ^ sign_b

    a_sub = (exp_a == 0) & (frac_a != 0)
    b_sub = (exp_b == 0) & (frac_b != 0)
    a_eff = np.where(a_sub, np.array(0.0, fmt.dtype), a)
    b_eff = np.where(b_sub, np.array(0.0, fmt.dtype), b)
    special_mask, special_vals = _special_results(a_eff, b_eff, sign_z, fmt)

    # Operand truncation before the MA datapath.
    if config.truncation:
        cut = np.array(~((1 << config.truncation) - 1) & fmt.mantissa_mask, fmt.uint)
        frac_a = frac_a & cut
        frac_b = frac_b & cut

    # Exact dyadic mantissa fractions in float64.
    scale = float(fmt.implicit_one)
    ma = frac_a.astype(np.float64) / scale
    mb = frac_b.astype(np.float64) / scale

    if config.path == "log":
        mant_product = mitchell_mantissa_product(1.0 + ma, 1.0 + mb)
    else:
        mant_product = 1.0 + ma + mb + mitchell_mantissa_product(ma, mb)

    carry = mant_product >= 2.0
    mant_norm = np.where(carry, mant_product * 0.5, mant_product)
    frac_z = np.floor((mant_norm - 1.0) * scale).astype(np.int64)
    frac_z = np.clip(frac_z, 0, fmt.mantissa_mask)

    exp_z = (
        exp_a.astype(np.int64)
        + exp_b.astype(np.int64)
        - np.int64(fmt.bias)
        + carry.astype(np.int64)
    )
    overflow = exp_z > fmt.max_exponent
    underflow = exp_z < 1

    result = compose(
        sign_z,
        np.clip(exp_z, 0, fmt.exponent_mask).astype(fmt.uint),
        frac_z.astype(fmt.uint),
        fmt,
    )
    result = np.where(
        overflow,
        np.where(sign_z.astype(bool), -np.inf, np.inf).astype(fmt.dtype),
        result,
    )
    result = np.where(
        underflow,
        np.where(sign_z.astype(bool), np.array(-0.0, fmt.dtype), np.array(0.0, fmt.dtype)),
        result,
    )
    result = np.where(special_mask, special_vals, result)
    return result.astype(fmt.dtype)
