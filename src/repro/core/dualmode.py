"""Dual-mode multiplier: the paper's first future-work item.

Chapter 6: *"One limitation of the proposed floating point multiplier is
that it is inherently imprecise.  Therefore, for applications that are
partially error tolerant such as RayTracing, a 'precise' floating point
multiplier may be required ... Some future work include integrating the
'precise' mode into the floating point multiplier."*

:class:`DualModeMultiplier` models that integration: one unit that carries
both the IEEE mantissa array and the Mitchell datapath, with a per-call
mode select.  The hardware cost model (see
:func:`repro.hardware.units.dual_mode_fp_multiplier`) keeps both datapaths
resident — the idle one burns leakage — so the unit's average power is a
duty-cycle blend, which is exactly the quantity the power framework needs
for partially error-tolerant kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .configurable import MultiplierConfig, configurable_multiply
from .floatops import format_for_dtype

__all__ = ["DualModeMultiplier"]


@dataclass
class DualModeMultiplier:
    """A multiplier with runtime-selectable precise / imprecise modes.

    Attributes
    ----------
    config:
        The Mitchell configuration used in imprecise mode.
    dtype:
        ``numpy.float32`` or ``numpy.float64``.

    The instance counts per-mode operations so the duty cycle (fraction of
    operations run imprecisely) is available for power estimation.
    """

    config: MultiplierConfig = field(default_factory=MultiplierConfig)
    dtype: type = np.float32

    def __post_init__(self):
        self._fmt = format_for_dtype(self.dtype)
        self.precise_ops = 0
        self.imprecise_ops = 0

    def multiply(self, a, b, precise: bool = False) -> np.ndarray:
        """Multiply in the selected mode (imprecise by default)."""
        a = np.asarray(a, dtype=self._fmt.dtype)
        b = np.asarray(b, dtype=self._fmt.dtype)
        n = int(np.broadcast(a, b).size)
        if precise:
            self.precise_ops += n
            return np.multiply(a, b, dtype=self._fmt.dtype)
        self.imprecise_ops += n
        return configurable_multiply(a, b, self.config, dtype=self._fmt.dtype)

    def multiply_where(self, a, b, imprecise_mask) -> np.ndarray:
        """Element-wise mode selection: imprecise where ``imprecise_mask``.

        Models the per-warp mode flag a GPU integration would carry in the
        instruction encoding.
        """
        a = np.asarray(a, dtype=self._fmt.dtype)
        b = np.asarray(b, dtype=self._fmt.dtype)
        mask = np.broadcast_to(np.asarray(imprecise_mask, dtype=bool),
                               np.broadcast(a, b).shape)
        imprecise = configurable_multiply(a, b, self.config, dtype=self._fmt.dtype)
        precise = np.multiply(a, b, dtype=self._fmt.dtype)
        self.imprecise_ops += int(mask.sum())
        self.precise_ops += int(mask.size - mask.sum())
        return np.where(mask, imprecise, precise).astype(self._fmt.dtype)

    @property
    def total_ops(self) -> int:
        return self.precise_ops + self.imprecise_ops

    @property
    def duty_cycle(self) -> float:
        """Fraction of operations executed on the imprecise datapath."""
        if self.total_ops == 0:
            return 0.0
        return self.imprecise_ops / self.total_ops

    def reset(self):
        self.precise_ops = 0
        self.imprecise_ops = 0

    def average_power_mw(self, precise_power_mw: float, imprecise_power_mw: float,
                         idle_leakage_fraction: float = 0.05) -> float:
        """Duty-cycle-blended average power of the dual-mode unit.

        While one datapath computes, the other burns
        ``idle_leakage_fraction`` of its active power (the Figure-7 input
        gating).
        """
        if not 0 <= idle_leakage_fraction <= 1:
            raise ValueError(
                f"idle_leakage_fraction must be in [0, 1], got {idle_leakage_fraction}"
            )
        d = self.duty_cycle
        active = d * imprecise_power_mw + (1 - d) * precise_power_mw
        idle = (
            d * precise_power_mw + (1 - d) * imprecise_power_mw
        ) * idle_leakage_fraction
        return active + idle
