"""Configuration of which imprecise hardware units are enabled.

The evaluation framework (Figure 10) enables or disables each imprecise
unit individually and exposes the tunable structural parameters: the
adder threshold ``TH``, and the configurable multiplier's datapath and
truncation.  :class:`IHWConfig` captures one such configuration.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from .adder import DEFAULT_THRESHOLD
from .backends import backend_names
from .configurable import MultiplierConfig

__all__ = [
    "IHWConfig",
    "UNIT_NAMES",
    "MULTIPLIER_MODES",
    "SFU_MODES",
    "batch_signature",
    "batch_compatible",
    "batch_groups",
]

#: Individually switchable imprecise units.
UNIT_NAMES = ("add", "mul", "div", "rcp", "rsqrt", "sqrt", "log2", "fma")

#: Selectable implementations of the imprecise multiplier:
#: - ``table1``: the 1+Ma+Mb multiplier of Table 1 (25% eps_max),
#: - ``mitchell``: the accuracy-configurable Mitchell multiplier
#:   (``multiplier_config`` selects path and truncation),
#: - ``truncated``: the intuitive bit-truncation baseline ``bt_N``
#:   (``multiplier_truncation`` selects N).
MULTIPLIER_MODES = ("table1", "mitchell", "truncated")

#: Approximation order of the imprecise special function units.
SFU_MODES = ("linear", "quadratic")


@dataclass(frozen=True)
class IHWConfig:
    """One point in the imprecise hardware configuration space.

    Attributes
    ----------
    enabled:
        The set of unit names (from :data:`UNIT_NAMES`) replaced by their
        imprecise implementation; everything else stays IEEE-precise.
    adder_threshold:
        Structural parameter ``TH`` of the imprecise adder.
    multiplier_mode:
        Which imprecise multiplier implements the ``mul`` unit
        (see :data:`MULTIPLIER_MODES`).
    multiplier_config:
        Path/truncation of the Mitchell multiplier (``mitchell`` mode).
    multiplier_truncation:
        Truncated bits of the ``bt_N`` baseline (``truncated`` mode).
    multiplier_bt_rounding:
        Whether the ``bt_N`` baseline rounds (variable-correction style) or
        plainly truncates the operand reduction.  The paper's "intuitive bit
        truncation" is plain truncation (default False), whose systematic
        bias is what makes the baseline degrade abruptly in the application
        studies.
    sfu_mode:
        Approximation order of the imprecise SFUs: ``"linear"`` (Table 1,
        default) or ``"quadratic"`` (the higher-accuracy extension point).
    backend:
        Compute backend executing the unit operations (``"reference"``,
        ``"fused"``, ``"numba"``), or ``None`` to defer to the
        ``REPRO_BACKEND`` environment variable.  Backends are contractually
        bit-identical, so this is a pure execution-speed knob: it does not
        participate in :meth:`canonical` or :meth:`cache_key`, and cached
        results are shared across backends.
    """

    enabled: frozenset = field(default_factory=frozenset)
    adder_threshold: int = DEFAULT_THRESHOLD
    multiplier_mode: str = "table1"
    multiplier_config: MultiplierConfig = field(default_factory=MultiplierConfig)
    multiplier_truncation: int = 0
    multiplier_bt_rounding: bool = False
    sfu_mode: str = "linear"
    backend: str | None = None

    #: Fields deliberately excluded from :meth:`canonical` / :meth:`cache_key`.
    #: ``backend`` never changes results (parity-enforced bit equality), so
    #: keying on it would only fragment the cache.
    _CACHE_KEY_EXEMPT = ("backend",)

    def __post_init__(self):
        enabled = frozenset(self.enabled)
        unknown = enabled - set(UNIT_NAMES)
        if unknown:
            raise ValueError(f"unknown unit names: {sorted(unknown)}")
        object.__setattr__(self, "enabled", enabled)
        if self.multiplier_mode not in MULTIPLIER_MODES:
            raise ValueError(
                f"multiplier_mode must be one of {MULTIPLIER_MODES}, "
                f"got {self.multiplier_mode!r}"
            )
        if self.sfu_mode not in SFU_MODES:
            raise ValueError(
                f"sfu_mode must be one of {SFU_MODES}, got {self.sfu_mode!r}"
            )
        if self.backend is not None and self.backend not in backend_names():
            raise ValueError(
                f"backend must be one of {backend_names()} or None, "
                f"got {self.backend!r}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def precise(cls) -> "IHWConfig":
        """The reference configuration: every unit IEEE-precise."""
        return cls()

    @classmethod
    def all_imprecise(cls, adder_threshold: int = DEFAULT_THRESHOLD) -> "IHWConfig":
        """All Table-1 units enabled (the HotSpot / SRAD study setting)."""
        return cls(enabled=frozenset(UNIT_NAMES), adder_threshold=adder_threshold)

    @classmethod
    def units(cls, *names: str, **kwargs) -> "IHWConfig":
        """Enable just the named units, e.g. ``IHWConfig.units("rcp", "add", "sqrt")``."""
        return cls(enabled=frozenset(names), **kwargs)

    # ------------------------------------------------------------------
    # Queries and functional updates
    # ------------------------------------------------------------------
    def is_enabled(self, unit: str) -> bool:
        """Whether ``unit`` runs on imprecise hardware in this configuration."""
        if unit not in UNIT_NAMES:
            raise ValueError(f"unknown unit name: {unit!r}")
        return unit in self.enabled

    def with_units(self, *names: str) -> "IHWConfig":
        """A copy with the named units additionally enabled."""
        return dataclasses.replace(self, enabled=self.enabled | set(names))

    def without_units(self, *names: str) -> "IHWConfig":
        """A copy with the named units disabled (quality-tuning step)."""
        return dataclasses.replace(self, enabled=self.enabled - set(names))

    def with_multiplier(self, mode: str, **kwargs) -> "IHWConfig":
        """A copy using multiplier ``mode`` and enabling the ``mul`` unit.

        Keyword arguments: ``config`` (:class:`MultiplierConfig` or a
        paper-style name such as ``"fp_tr0"``) for ``mitchell`` mode,
        ``truncation`` for ``truncated`` mode.
        """
        updates = {"multiplier_mode": mode, "enabled": self.enabled | {"mul"}}
        if "config" in kwargs:
            cfg = kwargs.pop("config")
            if isinstance(cfg, str):
                cfg = MultiplierConfig.from_name(cfg)
            updates["multiplier_config"] = cfg
        if "truncation" in kwargs:
            updates["multiplier_truncation"] = kwargs.pop("truncation")
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        return dataclasses.replace(self, **updates)

    def with_sfu_mode(self, mode: str) -> "IHWConfig":
        """A copy using the given SFU approximation order."""
        return dataclasses.replace(self, sfu_mode=mode)

    def with_backend(self, name: str | None) -> "IHWConfig":
        """A copy pinned to the given compute backend (``None`` = default)."""
        return dataclasses.replace(self, backend=name)

    def canonical(self) -> dict:
        """Order-independent JSON-able form covering every switch.

        Two configurations produce the same document iff they compare
        equal; this is what :meth:`cache_key` hashes and what the result
        cache stores for debugging.
        """
        return {
            "enabled": sorted(self.enabled),
            "adder_threshold": int(self.adder_threshold),
            "multiplier_mode": self.multiplier_mode,
            "multiplier_path": self.multiplier_config.path,
            "multiplier_path_truncation": int(self.multiplier_config.truncation),
            "multiplier_bt_truncation": int(self.multiplier_truncation),
            "multiplier_bt_rounding": bool(self.multiplier_bt_rounding),
            "sfu_mode": self.sfu_mode,
        }

    def cache_key(self) -> str:
        """Stable content hash of the configuration (hex SHA-256).

        The key is derived from :meth:`canonical`, so it is independent of
        unit-name ordering and construction path: equal configurations
        always agree and distinct configurations never collide (up to
        SHA-256).  Used by :mod:`repro.runtime` to address cached results.
        """
        payload = json.dumps(self.canonical(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def batch_signature(self) -> tuple:
        """Hashable identity of everything a batched evaluation must share.

        Configurations with equal signatures differ only in the *structural
        parameters* the batched backend entry points vary per lane — the
        adder threshold and the multiplier's path/truncation/rounding — so
        one operand decomposition can serve all of them.  The unit switches,
        SFU mode, and multiplier mode select *which* datapath runs and must
        match across a batch.
        """
        return (
            tuple(sorted(self.enabled)),
            self.multiplier_mode,
            self.sfu_mode,
        )

    def describe(self) -> str:
        """Human-readable summary, e.g. for experiment logs."""
        if not self.enabled:
            return "precise"
        parts = [",".join(sorted(self.enabled))]
        if self.sfu_mode != "linear" and self.enabled & {
            "rcp", "rsqrt", "sqrt", "log2", "div"
        }:
            parts.append(f"sfu={self.sfu_mode}")
        if "add" in self.enabled or "fma" in self.enabled:
            parts.append(f"TH={self.adder_threshold}")
        if "mul" in self.enabled or "fma" in self.enabled:
            if self.multiplier_mode == "mitchell":
                parts.append(self.multiplier_config.name)
            elif self.multiplier_mode == "truncated":
                parts.append(f"bt_{self.multiplier_truncation}")
            else:
                parts.append("table1")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        return " ".join(parts)


def batch_signature(config: IHWConfig) -> tuple:
    """Module-level alias of :meth:`IHWConfig.batch_signature`."""
    return config.batch_signature()


def batch_compatible(configs) -> bool:
    """Whether every configuration can share one batched evaluation.

    True iff all configurations agree on :meth:`IHWConfig.batch_signature`
    (enabled units, multiplier mode, SFU mode); an empty sequence is not
    batchable.  The remaining knobs — adder threshold, Mitchell path and
    truncation, ``bt_N`` truncation and rounding — vary freely per lane.
    """
    configs = list(configs)
    if not configs:
        return False
    first = configs[0].batch_signature()
    return all(c.batch_signature() == first for c in configs[1:])


def batch_groups(named_configs: dict) -> list:
    """Partition ``{name: config}`` into batch-compatible groups.

    Returns a list of dicts, each a maximal batch-compatible subset, with
    both group order and within-group order following first appearance in
    ``named_configs`` — so regrouping never reorders results presented to
    the user.
    """
    groups: dict = {}
    for name, cfg in named_configs.items():
        groups.setdefault(cfg.batch_signature(), {})[name] = cfg
    return list(groups.values())
