"""Configuration of which imprecise hardware units are enabled.

The evaluation framework (Figure 10) enables or disables each imprecise
unit individually and exposes the tunable structural parameters: the
adder threshold ``TH``, and the configurable multiplier's datapath and
truncation.  :class:`IHWConfig` captures one such configuration.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from .adder import DEFAULT_THRESHOLD
from .backends import backend_names
from .configurable import MultiplierConfig

__all__ = [
    "IHWConfig",
    "UNIT_NAMES",
    "MULTIPLIER_MODES",
    "SFU_MODES",
    "batch_signature",
    "batch_compatible",
    "batch_groups",
    "parse_config_spec",
    "config_family",
    "CONFIG_FAMILIES",
]

#: Families :func:`config_family` can expand (the ``repro sweep``
#: ``--family`` choices and the sweep-service grid names).
CONFIG_FAMILIES = ("units", "threshold", "multiplier")

#: Individually switchable imprecise units.
UNIT_NAMES = ("add", "mul", "div", "rcp", "rsqrt", "sqrt", "log2", "fma")

#: Selectable implementations of the imprecise multiplier:
#: - ``table1``: the 1+Ma+Mb multiplier of Table 1 (25% eps_max),
#: - ``mitchell``: the accuracy-configurable Mitchell multiplier
#:   (``multiplier_config`` selects path and truncation),
#: - ``truncated``: the intuitive bit-truncation baseline ``bt_N``
#:   (``multiplier_truncation`` selects N).
MULTIPLIER_MODES = ("table1", "mitchell", "truncated")

#: Approximation order of the imprecise special function units.
SFU_MODES = ("linear", "quadratic")


@dataclass(frozen=True)
class IHWConfig:
    """One point in the imprecise hardware configuration space.

    Attributes
    ----------
    enabled:
        The set of unit names (from :data:`UNIT_NAMES`) replaced by their
        imprecise implementation; everything else stays IEEE-precise.
    adder_threshold:
        Structural parameter ``TH`` of the imprecise adder.
    multiplier_mode:
        Which imprecise multiplier implements the ``mul`` unit
        (see :data:`MULTIPLIER_MODES`).
    multiplier_config:
        Path/truncation of the Mitchell multiplier (``mitchell`` mode).
    multiplier_truncation:
        Truncated bits of the ``bt_N`` baseline (``truncated`` mode).
    multiplier_bt_rounding:
        Whether the ``bt_N`` baseline rounds (variable-correction style) or
        plainly truncates the operand reduction.  The paper's "intuitive bit
        truncation" is plain truncation (default False), whose systematic
        bias is what makes the baseline degrade abruptly in the application
        studies.
    sfu_mode:
        Approximation order of the imprecise SFUs: ``"linear"`` (Table 1,
        default) or ``"quadratic"`` (the higher-accuracy extension point).
    backend:
        Compute backend executing the unit operations (``"reference"``,
        ``"fused"``, ``"threaded"``, ``"numba"``, ``"numba-parallel"``), or
        ``None`` to defer to the ``REPRO_BACKEND`` environment variable.
        Backends are contractually bit-identical, so this is a pure
        execution-speed knob: it does not participate in :meth:`canonical`
        or :meth:`cache_key`, and cached results are shared across
        backends.
    backend_threads:
        Thread count for the parallel backends, or ``None`` to defer to
        the resolution chain in :mod:`repro.core.backends.threads` (worker
        pin, ``REPRO_THREADS``, CPU count).  Like ``backend``, it cannot
        change results and is excluded from the cache key.
    """

    enabled: frozenset = field(default_factory=frozenset)
    adder_threshold: int = DEFAULT_THRESHOLD
    multiplier_mode: str = "table1"
    multiplier_config: MultiplierConfig = field(default_factory=MultiplierConfig)
    multiplier_truncation: int = 0
    multiplier_bt_rounding: bool = False
    sfu_mode: str = "linear"
    backend: str | None = None
    backend_threads: int | None = None

    #: Fields deliberately excluded from :meth:`canonical` / :meth:`cache_key`.
    #: ``backend`` and ``backend_threads`` never change results
    #: (parity-enforced bit equality), so keying on them would only
    #: fragment the cache.
    _CACHE_KEY_EXEMPT = ("backend", "backend_threads")

    def __post_init__(self):
        enabled = frozenset(self.enabled)
        unknown = enabled - set(UNIT_NAMES)
        if unknown:
            raise ValueError(f"unknown unit names: {sorted(unknown)}")
        object.__setattr__(self, "enabled", enabled)
        if self.multiplier_mode not in MULTIPLIER_MODES:
            raise ValueError(
                f"multiplier_mode must be one of {MULTIPLIER_MODES}, "
                f"got {self.multiplier_mode!r}"
            )
        if self.sfu_mode not in SFU_MODES:
            raise ValueError(
                f"sfu_mode must be one of {SFU_MODES}, got {self.sfu_mode!r}"
            )
        if self.backend is not None and self.backend not in backend_names():
            raise ValueError(
                f"backend must be one of {backend_names()} or None, "
                f"got {self.backend!r}"
            )
        if self.backend_threads is not None and self.backend_threads < 1:
            raise ValueError(
                f"backend_threads must be >= 1 or None, "
                f"got {self.backend_threads!r}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def precise(cls) -> "IHWConfig":
        """The reference configuration: every unit IEEE-precise."""
        return cls()

    @classmethod
    def all_imprecise(cls, adder_threshold: int = DEFAULT_THRESHOLD) -> "IHWConfig":
        """All Table-1 units enabled (the HotSpot / SRAD study setting)."""
        return cls(enabled=frozenset(UNIT_NAMES), adder_threshold=adder_threshold)

    @classmethod
    def units(cls, *names: str, **kwargs) -> "IHWConfig":
        """Enable just the named units, e.g. ``IHWConfig.units("rcp", "add", "sqrt")``."""
        return cls(enabled=frozenset(names), **kwargs)

    @classmethod
    def from_canonical(cls, doc: dict) -> "IHWConfig":
        """Reconstruct a configuration from its :meth:`canonical` document.

        The inverse of :meth:`canonical` — round-trips exactly, including
        the cache key — used wherever configurations cross a serialization
        boundary (cached entry documents, sweep-service requests).  Raises
        :class:`ValueError`/:class:`KeyError`/:class:`TypeError` on
        malformed documents; callers at trust boundaries should catch all
        three.
        """
        known = {
            "enabled", "adder_threshold", "multiplier_mode",
            "multiplier_path", "multiplier_path_truncation",
            "multiplier_bt_truncation", "multiplier_bt_rounding", "sfu_mode",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        return cls(
            enabled=frozenset(doc.get("enabled", ())),
            adder_threshold=int(doc.get("adder_threshold", DEFAULT_THRESHOLD)),
            multiplier_mode=doc.get("multiplier_mode", "table1"),
            multiplier_config=MultiplierConfig(
                path=doc.get("multiplier_path", "full"),
                truncation=int(doc.get("multiplier_path_truncation", 0)),
            ),
            multiplier_truncation=int(doc.get("multiplier_bt_truncation", 0)),
            multiplier_bt_rounding=bool(doc.get("multiplier_bt_rounding", False)),
            sfu_mode=doc.get("sfu_mode", "linear"),
        )

    # ------------------------------------------------------------------
    # Queries and functional updates
    # ------------------------------------------------------------------
    def is_enabled(self, unit: str) -> bool:
        """Whether ``unit`` runs on imprecise hardware in this configuration."""
        if unit not in UNIT_NAMES:
            raise ValueError(f"unknown unit name: {unit!r}")
        return unit in self.enabled

    def with_units(self, *names: str) -> "IHWConfig":
        """A copy with the named units additionally enabled."""
        return dataclasses.replace(self, enabled=self.enabled | set(names))

    def without_units(self, *names: str) -> "IHWConfig":
        """A copy with the named units disabled (quality-tuning step)."""
        return dataclasses.replace(self, enabled=self.enabled - set(names))

    def with_multiplier(self, mode: str, **kwargs) -> "IHWConfig":
        """A copy using multiplier ``mode`` and enabling the ``mul`` unit.

        Keyword arguments: ``config`` (:class:`MultiplierConfig` or a
        paper-style name such as ``"fp_tr0"``) for ``mitchell`` mode,
        ``truncation`` for ``truncated`` mode.
        """
        updates = {"multiplier_mode": mode, "enabled": self.enabled | {"mul"}}
        if "config" in kwargs:
            cfg = kwargs.pop("config")
            if isinstance(cfg, str):
                cfg = MultiplierConfig.from_name(cfg)
            updates["multiplier_config"] = cfg
        if "truncation" in kwargs:
            updates["multiplier_truncation"] = kwargs.pop("truncation")
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        return dataclasses.replace(self, **updates)

    def with_sfu_mode(self, mode: str) -> "IHWConfig":
        """A copy using the given SFU approximation order."""
        return dataclasses.replace(self, sfu_mode=mode)

    def with_backend(self, name: str | None,
                     threads: int | None = None) -> "IHWConfig":
        """A copy pinned to the given compute backend (``None`` = default)."""
        return dataclasses.replace(self, backend=name,
                                   backend_threads=threads)

    def canonical(self) -> dict:
        """Order-independent JSON-able form covering every switch.

        Two configurations produce the same document iff they compare
        equal; this is what :meth:`cache_key` hashes and what the result
        cache stores for debugging.
        """
        return {
            "enabled": sorted(self.enabled),
            "adder_threshold": int(self.adder_threshold),
            "multiplier_mode": self.multiplier_mode,
            "multiplier_path": self.multiplier_config.path,
            "multiplier_path_truncation": int(self.multiplier_config.truncation),
            "multiplier_bt_truncation": int(self.multiplier_truncation),
            "multiplier_bt_rounding": bool(self.multiplier_bt_rounding),
            "sfu_mode": self.sfu_mode,
        }

    def cache_key(self) -> str:
        """Stable content hash of the configuration (hex SHA-256).

        The key is derived from :meth:`canonical`, so it is independent of
        unit-name ordering and construction path: equal configurations
        always agree and distinct configurations never collide (up to
        SHA-256).  Used by :mod:`repro.runtime` to address cached results.
        """
        payload = json.dumps(self.canonical(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def batch_signature(self) -> tuple:
        """Hashable identity of everything a batched evaluation must share.

        Configurations with equal signatures differ only in the *structural
        parameters* the batched backend entry points vary per lane — the
        adder threshold and the multiplier's path/truncation/rounding — so
        one operand decomposition can serve all of them.  The unit switches,
        SFU mode, and multiplier mode select *which* datapath runs and must
        match across a batch.
        """
        return (
            tuple(sorted(self.enabled)),
            self.multiplier_mode,
            self.sfu_mode,
        )

    def describe(self) -> str:
        """Human-readable summary, e.g. for experiment logs."""
        if not self.enabled:
            return "precise"
        parts = [",".join(sorted(self.enabled))]
        if self.sfu_mode != "linear" and self.enabled & {
            "rcp", "rsqrt", "sqrt", "log2", "div"
        }:
            parts.append(f"sfu={self.sfu_mode}")
        if "add" in self.enabled or "fma" in self.enabled:
            parts.append(f"TH={self.adder_threshold}")
        if "mul" in self.enabled or "fma" in self.enabled:
            if self.multiplier_mode == "mitchell":
                parts.append(self.multiplier_config.name)
            elif self.multiplier_mode == "truncated":
                parts.append(f"bt_{self.multiplier_truncation}")
            else:
                parts.append("table1")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.backend_threads is not None:
            parts.append(f"threads={self.backend_threads}")
        return " ".join(parts)


def batch_signature(config: IHWConfig) -> tuple:
    """Module-level alias of :meth:`IHWConfig.batch_signature`."""
    return config.batch_signature()


def batch_compatible(configs) -> bool:
    """Whether every configuration can share one batched evaluation.

    True iff all configurations agree on :meth:`IHWConfig.batch_signature`
    (enabled units, multiplier mode, SFU mode); an empty sequence is not
    batchable.  The remaining knobs — adder threshold, Mitchell path and
    truncation, ``bt_N`` truncation and rounding — vary freely per lane.
    """
    configs = list(configs)
    if not configs:
        return False
    first = configs[0].batch_signature()
    return all(c.batch_signature() == first for c in configs[1:])


def parse_config_spec(spec: str, threshold: int = DEFAULT_THRESHOLD,
                      multiplier: str | None = None,
                      sfu_mode: str = "linear") -> IHWConfig:
    """Build a configuration from the CLI/service shorthand.

    ``spec`` is ``"all"``, ``"precise"``, or a comma-separated unit list
    (``"add,mul"``); ``multiplier`` optionally selects ``bt_N`` (truncated)
    or a Mitchell configuration name such as ``"lp_tr8"``.  Shared by
    ``repro run``/``repro sweep``/``repro call`` and the sweep-service
    request parser, so every surface accepts the same vocabulary.
    """
    if spec == "all":
        config = IHWConfig.all_imprecise(adder_threshold=threshold)
    elif spec == "precise":
        config = IHWConfig.precise()
    else:
        units = tuple(u.strip() for u in spec.split(",") if u.strip())
        config = IHWConfig.units(*units, adder_threshold=threshold)
    if multiplier:
        if multiplier.startswith("bt_"):
            config = config.with_multiplier(
                "truncated", truncation=int(multiplier[3:])
            )
        else:
            config = config.with_multiplier("mitchell", config=multiplier)
    if sfu_mode != "linear":
        config = config.with_sfu_mode(sfu_mode)
    return config


def config_family(family: str, threshold: int = DEFAULT_THRESHOLD) -> dict:
    """Expand a named sweep family into ``{name: IHWConfig}``.

    Families (see :data:`CONFIG_FAMILIES`): ``units`` (precise + each unit
    solo + all), ``threshold`` (all-imprecise across TH), ``multiplier``
    (Mitchell paths/truncations + ``bt_N`` baselines).  Used by ``repro
    sweep --family`` and sweep-service grid requests.
    """
    if family == "units":
        configs = {"precise": IHWConfig.precise()}
        configs.update(
            {u: IHWConfig.units(u, adder_threshold=threshold)
             for u in UNIT_NAMES}
        )
        configs["all"] = IHWConfig.all_imprecise(adder_threshold=threshold)
        return configs
    if family == "threshold":
        return {
            f"th{th}": IHWConfig.all_imprecise(adder_threshold=th)
            for th in (2, 4, 6, 8, 10, 12)
        }
    if family == "multiplier":
        base = IHWConfig.units("mul")
        configs = {}
        for name in ("fp_tr0", "fp_tr8", "fp_tr16",
                     "lp_tr0", "lp_tr8", "lp_tr16"):
            configs[name] = base.with_multiplier("mitchell", config=name)
        for tr in (8, 16):
            configs[f"bt_{tr}"] = base.with_multiplier("truncated",
                                                       truncation=tr)
        return configs
    raise ValueError(
        f"unknown family {family!r}; expected one of {CONFIG_FAMILIES}"
    )


def batch_groups(named_configs: dict) -> list:
    """Partition ``{name: config}`` into batch-compatible groups.

    Returns a list of dicts, each a maximal batch-compatible subset, with
    both group order and within-group order following first appearance in
    ``named_configs`` — so regrouping never reorders results presented to
    the user.
    """
    groups: dict = {}
    for name, cfg in named_configs.items():
        groups.setdefault(cfg.batch_signature(), {})[name] = cfg
    return list(groups.values())
