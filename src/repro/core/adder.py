"""Imprecise floating point adder/subtractor with structural threshold ``TH``.

The IEEE-754 adder aligns the smaller operand's mantissa with a full-width
right shifter before the mantissa addition.  The imprecise adder replaces the
27-bit shifter and adder with a ``TH``-bit shifter and a ``(TH+1)``-bit adder
(Chapter 3.1):

- if the exponent difference ``d`` exceeds ``TH``, the smaller operand's
  mantissa is effectively zero and the result equals the larger operand;
- otherwise the shifted mantissa keeps only its top ``TH`` fraction bits at
  the scale of the larger exponent (equation (7): with ``TH = 3``, ``d = 1``,
  ``b = 1.x1 x2 x3 x4 x5`` aligns to ``b' = 0.1 x1 x2 000``).

Rounding circuits are removed (truncation) and subnormals flush to zero.
The worst-case relative error for effective additions with ``TH = 8`` is
below 0.785% (Chapter 4.1.1, cases a-c); effective subtractions of nearly
equal operands (case d) have unbounded *relative* error but tiny absolute
error.

The emulation is an exact integer-datapath model.  Working precision is
``mantissa_bits + TH`` bits in ``int64``, which supports the paper's full
``TH`` range of [1, 27] for binary32 and ``TH`` up to 8 for binary64.
"""

from __future__ import annotations

import numpy as np

from .floatops import FloatFormat, compose, decompose, format_for_dtype

__all__ = [
    "imprecise_add",
    "imprecise_subtract",
    "DEFAULT_THRESHOLD",
    "max_threshold",
]

#: The paper's reference configuration (eps_max < 0.785% for additions).
DEFAULT_THRESHOLD = 8


def max_threshold(dtype) -> int:
    """Largest supported ``TH`` for the given dtype in this emulation."""
    fmt = format_for_dtype(dtype)
    # int64 working mantissas: need mantissa_bits + TH + 2 bits of headroom,
    # which allows the paper's full [1, 27] range for binary32 and TH <= 8
    # for binary64.
    return min(27, 62 - fmt.mantissa_bits - 2)


def _special_add(a, b, fmt: FloatFormat):
    """Mask and values for NaN/inf special cases of an addition."""
    nan = np.isnan(a) | np.isnan(b)
    # inf + (-inf) is NaN.
    conflicting = np.isinf(a) & np.isinf(b) & (np.signbit(a) != np.signbit(b))
    nan = nan | conflicting
    inf = (np.isinf(a) | np.isinf(b)) & ~nan
    inf_sign = np.where(np.isinf(a), np.signbit(a), np.signbit(b))
    vals = np.where(
        nan,
        np.array(np.nan, fmt.dtype),
        np.where(inf_sign, -np.inf, np.inf).astype(fmt.dtype),
    )
    return nan | inf, vals.astype(fmt.dtype)


def imprecise_add(a, b, threshold: int = DEFAULT_THRESHOLD, dtype=np.float32) -> np.ndarray:
    """Compute ``a + b`` with the imprecise threshold adder.

    Parameters
    ----------
    a, b:
        Array-like operands; converted to ``dtype``.
    threshold:
        Structural parameter ``TH`` in ``[1, max_threshold(dtype)]``.
    dtype:
        ``numpy.float32`` or ``numpy.float64``.
    """
    fmt = format_for_dtype(dtype)
    if not 1 <= threshold <= max_threshold(dtype):
        raise ValueError(
            f"threshold must be in [1, {max_threshold(dtype)}] for {fmt.name}, "
            f"got {threshold}"
        )
    a = np.asarray(a, dtype=fmt.dtype)
    b = np.asarray(b, dtype=fmt.dtype)
    a, b = np.broadcast_arrays(a, b)

    sign_a, exp_a, frac_a = decompose(a, fmt)
    sign_b, exp_b, frac_b = decompose(b, fmt)

    # Subnormal inputs flush to zero.
    a_zero = exp_a == 0
    b_zero = exp_b == 0

    special_mask, special_vals = _special_add(a, b, fmt)

    # Swap so that operand "x" has the larger magnitude exponent (ties keep
    # larger mantissa in "x" so the effective subtraction result sign is the
    # sign of x).
    exp_ai = exp_a.astype(np.int64)
    exp_bi = exp_b.astype(np.int64)
    frac_ai = frac_a.astype(np.int64)
    frac_bi = frac_b.astype(np.int64)
    a_larger = (exp_ai > exp_bi) | ((exp_ai == exp_bi) & (frac_ai >= frac_bi))

    exp_x = np.where(a_larger, exp_ai, exp_bi)
    exp_y = np.where(a_larger, exp_bi, exp_ai)
    frac_x = np.where(a_larger, frac_ai, frac_bi)
    frac_y = np.where(a_larger, frac_bi, frac_ai)
    sign_x = np.where(a_larger, sign_a, sign_b)
    sign_y = np.where(a_larger, sign_b, sign_a)
    x_zero = np.where(a_larger, a_zero, b_zero)
    y_zero = np.where(a_larger, b_zero, a_zero)

    d = exp_x - exp_y

    guard = threshold  # extra fraction bits below the ULP, scale 2^-(p+guard)
    p = fmt.mantissa_bits
    mant_x = (np.int64(fmt.implicit_one) + frac_x) << np.int64(guard)
    mant_y = (np.int64(fmt.implicit_one) + frac_y) << np.int64(guard)

    # Align: shift y right by d, then the TH-bit shifter keeps only fraction
    # bits down to 2^-TH at the larger-exponent scale, i.e. zero everything
    # below working bit (p + guard - TH).
    shift = np.minimum(d, np.int64(p + guard + 1))
    mant_y_aligned = mant_y >> shift
    keep_cut = p + guard - threshold
    if keep_cut > 0:
        mant_y_aligned &= ~np.int64((1 << keep_cut) - 1)
    # Exponent difference beyond TH zeroes the smaller operand entirely.
    mant_y_aligned = np.where(d > threshold, np.int64(0), mant_y_aligned)

    mant_x = np.where(x_zero, np.int64(0), mant_x)
    mant_y_aligned = np.where(y_zero, np.int64(0), mant_y_aligned)

    effective_sub = sign_x != sign_y
    total = np.where(effective_sub, mant_x - mant_y_aligned, mant_x + mant_y_aligned)
    sign_z = sign_x
    # With |x| >= |y| the magnitude subtraction is non-negative except for the
    # equal-exponent equal-fraction case which yields exactly zero.
    total = np.abs(total)

    # Normalize: find MSB position of total.
    zero_total = total == 0
    safe_total = np.where(zero_total, np.int64(1), total)
    # MSB index via float64 exponent extraction; the float conversion can
    # round a dense mantissa up across a power of two, so correct overshoot.
    msb = (np.frexp(safe_total.astype(np.float64))[1] - 1).astype(np.int64)
    msb = msb - ((safe_total >> msb) == 0)
    # Normal position is p + guard (implicit one).
    norm_shift = msb - np.int64(p + guard)
    exp_z = exp_x + norm_shift

    # Shift mantissa so MSB lands at bit p + guard, then truncate guard bits.
    left = np.maximum(-norm_shift, 0).astype(np.int64)
    right = np.maximum(norm_shift, 0).astype(np.int64)
    mant_z = (safe_total << left) >> right
    frac_z = (mant_z >> np.int64(guard)) & np.int64(fmt.mantissa_mask)

    overflow = exp_z > fmt.max_exponent
    underflow = (exp_z < 1) | zero_total  # subnormal results flush to zero

    result = compose(
        sign_z,
        np.clip(exp_z, 0, fmt.exponent_mask).astype(fmt.uint),
        frac_z.astype(fmt.uint),
        fmt,
    )
    result = np.where(
        overflow,
        np.where(sign_z.astype(bool), -np.inf, np.inf).astype(fmt.dtype),
        result,
    )
    signed_zero = np.where(
        sign_z.astype(bool), np.array(-0.0, fmt.dtype), np.array(0.0, fmt.dtype)
    )
    result = np.where(underflow, signed_zero, result)
    # Exact cancellation yields +0 as in IEEE round-to-nearest.
    result = np.where(zero_total, np.array(0.0, fmt.dtype), result)
    result = np.where(special_mask, special_vals, result)
    return result.astype(fmt.dtype)


def imprecise_subtract(a, b, threshold: int = DEFAULT_THRESHOLD, dtype=np.float32) -> np.ndarray:
    """Compute ``a - b`` with the imprecise threshold adder."""
    fmt = format_for_dtype(dtype)
    b = np.asarray(b, dtype=fmt.dtype)
    return imprecise_add(a, -b, threshold=threshold, dtype=dtype)
