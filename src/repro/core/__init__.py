"""Imprecise floating point arithmetic units — the paper's core contribution.

This subpackage contains behavioral models of every unit in Table 1 plus the
accuracy-configurable Mitchell multiplier, the configuration object that
selects which units run imprecisely, and the instrumented
:class:`~repro.core.context.ArithmeticContext` the application kernels use.
"""

from .adder import DEFAULT_THRESHOLD, imprecise_add, imprecise_subtract, max_threshold
from .backends import (
    BackendUnavailableError,
    available_backend_names,
    backend_names,
    default_backend_name,
    get_backend,
)
from .backends.base import ComputeBackend
from .config import (
    CONFIG_FAMILIES,
    IHWConfig,
    MULTIPLIER_MODES,
    SFU_MODES,
    UNIT_NAMES,
    batch_compatible,
    batch_groups,
    batch_signature,
    config_family,
    parse_config_spec,
)
from .configurable import (
    FULL_PATH_MAX_ERROR,
    LOG_PATH_MAX_ERROR,
    MultiplierConfig,
    configurable_multiply,
)
from .context import ArithmeticContext, ContextBatch, FPU_OPS, OP_UNIT_CLASS, SFU_OPS
from .dualmode import DualModeMultiplier
from .floatops import (
    BINARY16,
    BINARY32,
    BINARY64,
    FloatFormat,
    compose,
    decompose,
    flush_subnormals,
    format_for_dtype,
    is_special,
    truncate_mantissa,
)
from .fma import imprecise_fma
from .mitchell import MITCHELL_MAX_ERROR, mitchell_mantissa_product, mitchell_multiply_int
from .multiplier import IMPRECISE_MULTIPLY_MAX_ERROR, imprecise_multiply
from .quadratic import (
    QUADRATIC_LOG2_COEFFS,
    QUADRATIC_LOG2_MAX_ABS_ERROR,
    QUADRATIC_RCP_COEFFS,
    QUADRATIC_RCP_MAX_ERROR,
    QUADRATIC_RSQRT_COEFFS,
    QUADRATIC_RSQRT_MAX_ERROR,
    quadratic_log2,
    quadratic_reciprocal,
    quadratic_rsqrt,
    quadratic_sqrt,
)
from .special import (
    LOG2_COEFFS,
    RECIPROCAL_COEFFS,
    RECIPROCAL_MAX_ERROR,
    RSQRT_COEFFS,
    RSQRT_MAX_ERROR,
    SQRT_MAX_ERROR,
    imprecise_divide,
    imprecise_log2,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
)
from .truncation import round_mantissa, truncated_multiply, truncation_max_error

__all__ = [
    "ArithmeticContext",
    "ContextBatch",
    "batch_compatible",
    "batch_groups",
    "batch_signature",
    "CONFIG_FAMILIES",
    "config_family",
    "parse_config_spec",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BackendUnavailableError",
    "ComputeBackend",
    "DEFAULT_THRESHOLD",
    "DualModeMultiplier",
    "FPU_OPS",
    "FULL_PATH_MAX_ERROR",
    "FloatFormat",
    "IHWConfig",
    "IMPRECISE_MULTIPLY_MAX_ERROR",
    "LOG2_COEFFS",
    "LOG_PATH_MAX_ERROR",
    "MITCHELL_MAX_ERROR",
    "MULTIPLIER_MODES",
    "MultiplierConfig",
    "OP_UNIT_CLASS",
    "QUADRATIC_LOG2_COEFFS",
    "QUADRATIC_LOG2_MAX_ABS_ERROR",
    "QUADRATIC_RCP_COEFFS",
    "QUADRATIC_RCP_MAX_ERROR",
    "QUADRATIC_RSQRT_COEFFS",
    "QUADRATIC_RSQRT_MAX_ERROR",
    "RECIPROCAL_COEFFS",
    "RECIPROCAL_MAX_ERROR",
    "RSQRT_COEFFS",
    "RSQRT_MAX_ERROR",
    "SFU_MODES",
    "SFU_OPS",
    "SQRT_MAX_ERROR",
    "UNIT_NAMES",
    "available_backend_names",
    "backend_names",
    "compose",
    "configurable_multiply",
    "decompose",
    "default_backend_name",
    "flush_subnormals",
    "format_for_dtype",
    "get_backend",
    "imprecise_add",
    "imprecise_divide",
    "imprecise_fma",
    "imprecise_log2",
    "imprecise_multiply",
    "imprecise_reciprocal",
    "imprecise_rsqrt",
    "imprecise_sqrt",
    "imprecise_subtract",
    "is_special",
    "max_threshold",
    "mitchell_mantissa_product",
    "mitchell_multiply_int",
    "quadratic_log2",
    "quadratic_reciprocal",
    "quadratic_rsqrt",
    "quadratic_sqrt",
    "round_mantissa",
    "truncate_mantissa",
    "truncated_multiply",
    "truncation_max_error",
]
