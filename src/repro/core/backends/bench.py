"""Backend micro-benchmarks behind the ``repro bench`` CLI subcommand.

Times the hot unit operations on large finite operand vectors for every
requested backend, best-of-``repeats``, and reports speedups relative to
``reference``.  Each backend must pass the parity harness before its
numbers are published — a fast-but-wrong backend is worse than useless
here, because the result cache deliberately ignores the backend choice.

The payload is plain JSON-serialisable data; the CLI handles all IO.
"""

from __future__ import annotations

import os
import platform
import sys
import time

import numpy as np

from ..adder import DEFAULT_THRESHOLD
from ..configurable import MultiplierConfig
from ..floatops import format_for_dtype
from . import (available_backend_names, backend_accepts_threads,
               backend_available, backend_names, get_backend)
from .parity import check_batch_parity, check_parity
from .threads import resolve_thread_count

__all__ = ["BENCH_OPS", "BATCH_SWEEP_THRESHOLDS", "PARALLEL_BACKENDS",
           "run_benchmarks", "run_batch_benchmarks",
           "run_parallel_benchmarks"]

#: Operations timed by :func:`run_benchmarks`.
BENCH_OPS = ("add", "mul", "fma", "rcp", "sqrt")

#: The 8-configuration adder-threshold sweep timed by the ``batch``
#: section: one batched call against eight per-config fused calls.
BATCH_SWEEP_THRESHOLDS = (1, 2, 4, 6, 8, 12, 16, 23)

#: Backends timed by the ``parallel`` section against the fused baseline.
PARALLEL_BACKENDS = ("threaded", "numba-parallel")

#: The Mitchell multiplier-configuration sweep shared by the ``batch``
#: and ``parallel`` sections (filtered to ``truncation <= mantissa_bits``).
_MITCHELL_SWEEP_NAMES = ("fp_tr0", "lp_tr0", "fp_tr4", "lp_tr4",
                         "fp_tr8", "lp_tr8", "fp_tr12", "lp_tr16")


def _mitchell_sweep(fmt) -> list:
    mbits = fmt.mantissa_bits
    return [
        MultiplierConfig.from_name(name)
        for name in _MITCHELL_SWEEP_NAMES
        if MultiplierConfig.from_name(name).truncation <= mbits
    ]


def _operands(size: int, dtype, seed: int = 11):
    """Large finite operand vectors (the steady-state kernel workload)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.25, 4.0, size=size).astype(dtype)
    b = rng.uniform(0.25, 4.0, size=size).astype(dtype)
    c = rng.uniform(0.25, 4.0, size=size).astype(dtype)
    sign = np.where(rng.integers(0, 2, size=size) == 1, -1.0, 1.0)
    a = (a * sign.astype(dtype)).astype(dtype)
    return a, b, c


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _machine_metadata(threads=None) -> dict:
    meta = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "numba_available": "numba" in available_backend_names(),
    }
    if threads is not None:
        meta["threads"] = int(threads)
    return meta


def _batch_section(size: int, repeats: int, fmt, parity_samples: int) -> dict:
    """Time multi-config sweeps: batched entry points vs per-config fused.

    Every sweep presents one operand pair to N configurations — the shape
    of a power–quality design sweep.  The baseline is the *fused* backend
    called once per configuration (the fastest pre-batch path); the
    candidate is the corresponding ``*_batch`` entry point sharing one
    field decomposition.  Timings are only published when the batched
    parity harness passes, mirroring the per-backend rule.
    """
    backend = get_backend("fused")
    section = {
        "backend": "fused",
        "n_configs": len(BATCH_SWEEP_THRESHOLDS),
        "thresholds": list(BATCH_SWEEP_THRESHOLDS),
        "parity_ok": None,
        "sweeps": {},
    }
    failures = check_batch_parity(backend, dtype=fmt.dtype,
                                  n_random=parity_samples)
    section["parity_ok"] = not failures
    if failures:
        section["parity_failures"] = failures
        return section

    a, b, c = _operands(size, fmt.dtype)
    thresholds = list(BATCH_SWEEP_THRESHOLDS)
    mbits = fmt.mantissa_bits
    mitchell = _mitchell_sweep(fmt)
    truncations = [t for t in (0, 2, 4, 6, 8, 10, 12, 16) if t <= mbits]
    dt = fmt.dtype
    sweeps = {
        "add": (
            lambda: [backend.imprecise_add(a, b, t, dtype=dt)
                     for t in thresholds],
            lambda: backend.imprecise_add_batch(a, b, thresholds, dtype=dt),
        ),
        "fma": (
            lambda: [backend.imprecise_fma(a, b, c, t, dtype=dt)
                     for t in thresholds],
            lambda: backend.imprecise_fma_batch(a, b, c, thresholds,
                                                dtype=dt),
        ),
        "mul_mitchell": (
            lambda: [backend.configurable_multiply(a, b, cfg, dtype=dt)
                     for cfg in mitchell],
            lambda: backend.configurable_multiply_batch(a, b, mitchell,
                                                        dtype=dt),
        ),
        "mul_truncated": (
            lambda: [backend.truncated_multiply(a, b, t, dtype=dt,
                                                rounding=False)
                     for t in truncations],
            lambda: backend.truncated_multiply_batch(a, b, truncations,
                                                     dtype=dt,
                                                     rounding=False),
        ),
    }
    total_per = total_batch = 0.0
    th_per = th_batch = 0.0
    for op, (per_config, batched) in sweeps.items():
        per_config()  # warm-up
        batched()
        per_seconds = _time_best(per_config, repeats)
        batch_seconds = _time_best(batched, repeats)
        total_per += per_seconds
        total_batch += batch_seconds
        if op in ("add", "fma"):
            th_per += per_seconds
            th_batch += batch_seconds
        record = {
            "per_config_seconds": per_seconds,
            "batch_seconds": batch_seconds,
        }
        if batch_seconds > 0:
            record["speedup"] = per_seconds / batch_seconds
        section["sweeps"][op] = record
    # The headline number: the 8-configuration adder-threshold sweep
    # (add + fma share the threshold parameter), where the whole datapath
    # after the one decompose is per-config-cheap integer masking.  The
    # multiplier sweeps are reported individually above; Mitchell's
    # per-config mantissa product bounds its batch gain, so it is kept
    # out of the headline aggregate rather than silently diluting it.
    section["threshold_sweep"] = {
        "per_config_seconds": th_per,
        "batch_seconds": th_batch,
    }
    if th_batch > 0:
        section["threshold_sweep"]["speedup"] = th_per / th_batch
    section["sweep"] = {
        "per_config_seconds": total_per,
        "batch_seconds": total_batch,
    }
    if total_batch > 0:
        section["sweep"]["speedup"] = total_per / total_batch
    return section


def _parallel_section(size: int, repeats: int, fmt, parity_samples: int,
                      threads=None) -> dict:
    """Time the multi-core backends against the single-core fused baseline.

    For each parallel backend (``threaded`` always, ``numba-parallel``
    when numba is installed) this times the scalar ``add``/``mul``/``fma``
    datapaths and the batched Mitchell configuration sweep on the same
    large operand vectors as the fused baseline, reporting per-op speedup
    vs fused.  Like every other section, a backend must pass both the
    scalar and the batched parity harness before its numbers are
    published.  JIT backends additionally report per-kernel one-time
    compile times (``compile_seconds``) so steady-state throughput is
    never conflated with warm-up cost.
    """
    threads = resolve_thread_count(threads)
    section = {
        "baseline": "fused",
        "threads": threads,
        "size": int(size),
        "backends": {},
    }
    dt = fmt.dtype
    a, b, c = _operands(size, dt)
    mitchell = _mitchell_sweep(fmt)
    runs = {
        "add": lambda be: be.imprecise_add(a, b, DEFAULT_THRESHOLD,
                                           dtype=dt),
        "mul": lambda be: be.imprecise_multiply(a, b, dtype=dt),
        "fma": lambda be: be.imprecise_fma(a, b, c, DEFAULT_THRESHOLD,
                                           dtype=dt),
        "mul_mitchell_batch": lambda be: be.configurable_multiply_batch(
            a, b, mitchell, dtype=dt),
    }

    fused = get_backend("fused")
    fused_times = {}
    for op, fn in runs.items():
        fn(fused)  # warm-up
        fused_times[op] = _time_best(lambda f=fn: f(fused), repeats)
    section["fused_seconds"] = fused_times

    for name in PARALLEL_BACKENDS:
        entry = {"available": backend_available(name), "parity_ok": None,
                 "ops": {}}
        section["backends"][name] = entry
        if not entry["available"]:
            entry["error"] = "missing optional dependency numba"
            continue
        try:
            backend = get_backend(name, threads=threads)
        except Exception as exc:
            entry["available"] = False
            entry["error"] = str(exc)
            continue
        compile_seconds = getattr(backend, "compile_seconds", None)
        if compile_seconds:
            entry["compile_seconds"] = dict(compile_seconds)
        failures = check_parity(backend, dtype=dt, n_random=parity_samples)
        failures = failures + check_batch_parity(backend, dtype=dt,
                                                 n_random=parity_samples)
        entry["parity_ok"] = not failures
        if failures:
            entry["parity_failures"] = failures
            continue
        for op, fn in runs.items():
            fn(backend)  # warm-up
            seconds = _time_best(lambda f=fn: f(backend), repeats)
            record = {"seconds": seconds}
            if seconds > 0:
                record["speedup_vs_fused"] = fused_times[op] / seconds
            entry["ops"][op] = record
    return section


def run_parallel_benchmarks(size: int = 1_000_000, repeats: int = 5,
                            dtype=np.float32, parity_samples: int = 4096,
                            threads=None) -> dict:
    """Just the ``parallel`` section of the payload.

    The standalone entry point behind ``benchmarks/test_parallel_backend.py``;
    equivalent to the ``parallel`` key that :func:`run_benchmarks` embeds.
    """
    return _parallel_section(size, repeats, format_for_dtype(dtype),
                             parity_samples, threads=threads)


def run_batch_benchmarks(size: int = 1_000_000, repeats: int = 5,
                         dtype=np.float32,
                         parity_samples: int = 4096) -> dict:
    """Just the batched multi-config sweep section of the payload.

    The standalone entry point behind ``benchmarks/test_batched_backend.py``
    and the CI bench smoke; equivalent to the ``batch`` key that
    :func:`run_benchmarks` embeds.
    """
    return _batch_section(size, repeats, format_for_dtype(dtype),
                          parity_samples)


def run_benchmarks(size: int = 1_000_000, repeats: int = 5,
                   dtype=np.float32, backends=None,
                   parity_samples: int = 4096, batch: bool = True,
                   parallel: bool = True, threads=None) -> dict:
    """Benchmark ``backends`` against ``reference`` on ``size`` elements.

    Returns a payload dict with machine metadata, per-backend parity
    status, and per-op timings in seconds plus speedup vs reference.
    Backends failing parity get no timings (``parity_failures`` lists the
    mismatches instead).

    With ``batch=True`` (default) the payload also carries a ``batch``
    section comparing the fused backend's batched entry points against
    eight per-config fused calls (see :func:`_batch_section`); pass
    ``batch=False`` to skip it (``repro bench --no-batch``).  With
    ``parallel=True`` (default) it carries a ``parallel`` section timing
    the multi-core backends against the fused baseline (see
    :func:`_parallel_section`).  ``threads`` caps the parallel backends'
    worker count (``repro bench --threads N``); ``None`` resolves via
    ``REPRO_THREADS`` / the machine core count.
    """
    fmt = format_for_dtype(dtype)
    if backends is None:
        backends = available_backend_names()
    unknown = [name for name in backends if name not in backend_names()]
    if unknown:
        raise ValueError(
            f"unknown backend(s) {unknown}; expected a subset of "
            f"{backend_names()}"
        )
    if "reference" not in backends:
        backends = ("reference",) + tuple(backends)
    resolved_threads = resolve_thread_count(threads)

    a, b, c = _operands(size, fmt.dtype)
    abs_a = np.abs(a)

    payload = {
        "schema": "repro-bench-core/3",
        "machine": _machine_metadata(threads=resolved_threads),
        "size": int(size),
        "repeats": int(repeats),
        "dtype": fmt.name,
        "threshold": DEFAULT_THRESHOLD,
        "backends": {},
    }
    if batch and "fused" in available_backend_names():
        payload["batch"] = _batch_section(size, repeats, fmt, parity_samples)
    if parallel and "fused" in available_backend_names():
        payload["parallel"] = _parallel_section(size, repeats, fmt,
                                                parity_samples,
                                                threads=resolved_threads)

    reference_times = {}
    for name in backends:
        entry = {"available": True, "parity_ok": None, "ops": {}}
        payload["backends"][name] = entry
        try:
            kwargs = ({"threads": resolved_threads}
                      if backend_accepts_threads(name) else {})
            backend = get_backend(name, **kwargs)
        except Exception as exc:  # registered but unavailable
            entry["available"] = False
            entry["error"] = str(exc)
            continue
        compile_seconds = getattr(backend, "compile_seconds", None)
        if compile_seconds:
            entry["compile_seconds"] = dict(compile_seconds)
        if name == "reference":
            entry["parity_ok"] = True
        else:
            failures = check_parity(backend, dtype=fmt.dtype,
                                    n_random=parity_samples)
            entry["parity_ok"] = not failures
            if failures:
                entry["parity_failures"] = failures
                continue
        runs = {
            "add": lambda be=backend: be.imprecise_add(
                a, b, DEFAULT_THRESHOLD, dtype=fmt.dtype),
            "mul": lambda be=backend: be.imprecise_multiply(
                a, b, dtype=fmt.dtype),
            "fma": lambda be=backend: be.imprecise_fma(
                a, b, c, DEFAULT_THRESHOLD, dtype=fmt.dtype),
            "rcp": lambda be=backend: be.imprecise_reciprocal(
                a, dtype=fmt.dtype),
            "sqrt": lambda be=backend: be.imprecise_sqrt(
                abs_a, dtype=fmt.dtype),
        }
        for op in BENCH_OPS:
            fn = runs[op]
            fn()  # warm-up (also triggers any JIT compilation)
            seconds = _time_best(fn, repeats)
            record = {"seconds": seconds}
            if name == "reference":
                reference_times[op] = seconds
            elif op in reference_times and seconds > 0:
                record["speedup_vs_reference"] = reference_times[op] / seconds
            entry["ops"][op] = record
    return payload
