"""Backend micro-benchmarks behind the ``repro bench`` CLI subcommand.

Times the hot unit operations on large finite operand vectors for every
requested backend, best-of-``repeats``, and reports speedups relative to
``reference``.  Each backend must pass the parity harness before its
numbers are published — a fast-but-wrong backend is worse than useless
here, because the result cache deliberately ignores the backend choice.

The payload is plain JSON-serialisable data; the CLI handles all IO.
"""

from __future__ import annotations

import os
import platform
import sys
import time

import numpy as np

from ..adder import DEFAULT_THRESHOLD
from ..floatops import format_for_dtype
from . import available_backend_names, backend_names, get_backend
from .parity import check_parity

__all__ = ["BENCH_OPS", "run_benchmarks"]

#: Operations timed by :func:`run_benchmarks`.
BENCH_OPS = ("add", "mul", "fma", "rcp", "sqrt")


def _operands(size: int, dtype, seed: int = 11):
    """Large finite operand vectors (the steady-state kernel workload)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.25, 4.0, size=size).astype(dtype)
    b = rng.uniform(0.25, 4.0, size=size).astype(dtype)
    c = rng.uniform(0.25, 4.0, size=size).astype(dtype)
    sign = np.where(rng.integers(0, 2, size=size) == 1, -1.0, 1.0)
    a = (a * sign.astype(dtype)).astype(dtype)
    return a, b, c


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _machine_metadata() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "numba_available": "numba" in available_backend_names(),
    }


def run_benchmarks(size: int = 1_000_000, repeats: int = 5,
                   dtype=np.float32, backends=None,
                   parity_samples: int = 4096) -> dict:
    """Benchmark ``backends`` against ``reference`` on ``size`` elements.

    Returns a payload dict with machine metadata, per-backend parity
    status, and per-op timings in seconds plus speedup vs reference.
    Backends failing parity get no timings (``parity_failures`` lists the
    mismatches instead).
    """
    fmt = format_for_dtype(dtype)
    if backends is None:
        backends = available_backend_names()
    unknown = [name for name in backends if name not in backend_names()]
    if unknown:
        raise ValueError(
            f"unknown backend(s) {unknown}; expected a subset of "
            f"{backend_names()}"
        )
    if "reference" not in backends:
        backends = ("reference",) + tuple(backends)

    a, b, c = _operands(size, fmt.dtype)
    abs_a = np.abs(a)

    payload = {
        "schema": "repro-bench-core/1",
        "machine": _machine_metadata(),
        "size": int(size),
        "repeats": int(repeats),
        "dtype": fmt.name,
        "threshold": DEFAULT_THRESHOLD,
        "backends": {},
    }

    reference_times = {}
    for name in backends:
        entry = {"available": True, "parity_ok": None, "ops": {}}
        payload["backends"][name] = entry
        try:
            backend = get_backend(name)
        except Exception as exc:  # registered but unavailable
            entry["available"] = False
            entry["error"] = str(exc)
            continue
        if name == "reference":
            entry["parity_ok"] = True
        else:
            failures = check_parity(backend, dtype=fmt.dtype,
                                    n_random=parity_samples)
            entry["parity_ok"] = not failures
            if failures:
                entry["parity_failures"] = failures
                continue
        runs = {
            "add": lambda be=backend: be.imprecise_add(
                a, b, DEFAULT_THRESHOLD, dtype=fmt.dtype),
            "mul": lambda be=backend: be.imprecise_multiply(
                a, b, dtype=fmt.dtype),
            "fma": lambda be=backend: be.imprecise_fma(
                a, b, c, DEFAULT_THRESHOLD, dtype=fmt.dtype),
            "rcp": lambda be=backend: be.imprecise_reciprocal(
                a, dtype=fmt.dtype),
            "sqrt": lambda be=backend: be.imprecise_sqrt(
                abs_a, dtype=fmt.dtype),
        }
        for op in BENCH_OPS:
            fn = runs[op]
            fn()  # warm-up (also triggers any JIT compilation)
            seconds = _time_best(fn, repeats)
            record = {"seconds": seconds}
            if name == "reference":
                reference_times[op] = seconds
            elif op in reference_times and seconds > 0:
                record["speedup_vs_reference"] = reference_times[op] / seconds
            entry["ops"][op] = record
    return payload
